//! `EVJL` — the per-session event journal behind durability acks.
//!
//! A replica connection appends every *accepted* `EVENTS` frame to its
//! session's journal and fsyncs before acknowledging ([`crate::wire::WireFrame::Ack`]),
//! so an acked frame survives a replica crash by construction.  The file is
//! what makes two recoveries exact:
//!
//! * **Session resumption** — after a reconnect, [`Journal::recover`] yields
//!   the durable [`ResumeCursor`] the replica cross-checks against the
//!   client's resume hello (`service::session`).
//! * **Replica restart** — the supervisor replays the journaled frames
//!   through a fresh staged pipeline to bit-identical monitor state
//!   (`service::supervisor`).
//!
//! ## Format (see `docs/PROTOCOL.md` for the normative tables)
//!
//! An 18-byte header — magic `b"EVJL"`, format version `u16`, client `u32`,
//! session `u64` — then records, each starting with a kind byte:
//!
//! * `1` (events): `frame_seq u64 | payload_len u32 | payload | chain_after
//!   u64`, where `payload` is the frame's full wire encoding (length prefix
//!   included) and `chain_after` the chained stream fingerprint *after*
//!   folding this frame in.  The payload carries its own batch fingerprint,
//!   so corruption inside a record is detected by the wire codec; the chain
//!   links records to each other, so a record that decodes but belongs to a
//!   different history is detected too.
//! * `2` (shutdown): `events u64 | chain u64`, the client's end-of-stream
//!   totals, recorded so a restart after a completed stream still knows the
//!   stream completed.
//!
//! ## Torn-tail recovery
//!
//! A crash mid-append leaves a partial record at the tail.  [`Journal::recover`]
//! scans from the header, validates each record (structure, codec, chain
//! linkage) and truncates the file at the first bad byte — exactly the
//! checkpoint discipline of `sim::checkpoint`, but record-granular: every
//! fully-synced record survives, the torn tail vanishes, and the recovered
//! cursor equals what was last acked (acks happen only after fsync).

use crate::wire::{chain_fingerprint, decode_frame_with, ResumeCursor, WireFrame};
use evlin_spec::Invocation;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Journal-file magic: `b"EVJL"`.
pub const JOURNAL_MAGIC: [u8; 4] = *b"EVJL";
/// Current journal-format version.
pub const JOURNAL_VERSION: u16 = 1;
/// Header size in bytes (magic, version, client, session).
pub const JOURNAL_HEADER_BYTES: usize = 18;

/// Record kind byte: an accepted `EVENTS` frame.
pub const RECORD_EVENTS: u8 = 1;
/// Record kind byte: the client's shutdown totals.
pub const RECORD_SHUTDOWN: u8 = 2;

/// Journal failures; torn tails are *not* errors (recovery truncates them).
#[derive(Debug)]
pub enum JournalError {
    /// The underlying file I/O failed.
    Io(std::io::Error),
    /// The header is not an EVJL header (wrong file entirely).
    BadHeader(String),
    /// A version this code does not speak.
    UnsupportedVersion(u16),
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal I/O: {e}"),
            JournalError::BadHeader(why) => write!(f, "bad journal header: {why}"),
            JournalError::UnsupportedVersion(v) => {
                write!(f, "unsupported journal version {v}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

impl From<std::io::Error> for JournalError {
    fn from(e: std::io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// What a journal held when it was recovered.
#[derive(Debug)]
pub struct Recovered {
    /// The client the journal belongs to.
    pub client: u32,
    /// The session id from the header.
    pub session: u64,
    /// The durable cursor after the last intact record.
    pub cursor: ResumeCursor,
    /// The full wire encoding of every intact `EVENTS` frame, in order.
    pub frames: Vec<Vec<u8>>,
    /// The shutdown totals, if the stream completed before the crash.
    pub shutdown: Option<(u64, u64)>,
    /// Bytes of torn tail that were truncated away (0 for a clean file).
    pub torn_bytes: u64,
}

/// An open, append-positioned session journal.
pub struct Journal {
    file: File,
    path: PathBuf,
    client: u32,
    session: u64,
    cursor: ResumeCursor,
    shutdown: Option<(u64, u64)>,
    /// Reused append buffer: one `write_all` per record.
    scratch: Vec<u8>,
}

/// The canonical file name for a session's journal.
pub fn journal_file_name(client: u32, session: u64) -> String {
    format!("client-{client}-session-{session:016x}.evjl")
}

impl Journal {
    /// Creates a fresh journal at `path`, writing and syncing the header.
    /// Fails if the file already exists — a session id is never reused, so
    /// an existing file means [`Journal::recover`] was the right call.
    pub fn create(path: &Path, client: u32, session: u64) -> Result<Journal, JournalError> {
        let mut file = OpenOptions::new()
            .write(true)
            .read(true)
            .create_new(true)
            .open(path)?;
        let mut header = [0u8; JOURNAL_HEADER_BYTES];
        header[0..4].copy_from_slice(&JOURNAL_MAGIC);
        header[4..6].copy_from_slice(&JOURNAL_VERSION.to_le_bytes());
        header[6..10].copy_from_slice(&client.to_le_bytes());
        header[10..18].copy_from_slice(&session.to_le_bytes());
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(Journal {
            file,
            path: path.to_path_buf(),
            client,
            session,
            // The chain is seeded with the client id (as on the wire), so
            // journals for different clients never chain-collide.
            cursor: ResumeCursor {
                frames: 0,
                events: 0,
                chain: client as u64,
            },
            shutdown: None,
            scratch: Vec::new(),
        })
    }

    /// Opens an existing journal, validates every record, truncates any torn
    /// tail, and returns the journal (append-positioned) with everything it
    /// held.
    pub fn recover(path: &Path) -> Result<(Journal, Recovered), JournalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;
        if bytes.len() < JOURNAL_HEADER_BYTES {
            return Err(JournalError::BadHeader(format!(
                "{} bytes is smaller than the header",
                bytes.len()
            )));
        }
        if bytes[0..4] != JOURNAL_MAGIC {
            return Err(JournalError::BadHeader("wrong magic".into()));
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != JOURNAL_VERSION {
            return Err(JournalError::UnsupportedVersion(version));
        }
        let client = u32::from_le_bytes(bytes[6..10].try_into().unwrap());
        let session = u64::from_le_bytes(bytes[10..18].try_into().unwrap());

        let mut cursor = ResumeCursor {
            frames: 0,
            events: 0,
            chain: client as u64,
        };
        let mut frames = Vec::new();
        let mut shutdown = None;
        let mut interner: Vec<Invocation> = Vec::new();
        let mut at = JOURNAL_HEADER_BYTES;
        // `good` tracks the end of the last record that validated whole;
        // everything past it is torn tail.
        let mut good = at;
        while let Some(record) = read_record(&bytes, &mut at, &mut interner, &cursor) {
            match record {
                Record::Events {
                    payload,
                    events,
                    chain_after,
                } => {
                    cursor.frames += 1;
                    cursor.events += events;
                    cursor.chain = chain_after;
                    frames.push(payload);
                }
                Record::Shutdown { events, chain } => {
                    shutdown = Some((events, chain));
                }
            }
            good = at;
        }
        let torn_bytes = (bytes.len() - good) as u64;
        if torn_bytes > 0 {
            file.set_len(good as u64)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::End(0))?;
        let journal = Journal {
            file,
            path: path.to_path_buf(),
            client,
            session,
            cursor,
            shutdown,
            scratch: Vec::new(),
        };
        let recovered = Recovered {
            client,
            session,
            cursor,
            frames,
            shutdown,
            torn_bytes,
        };
        Ok((journal, recovered))
    }

    /// Appends one accepted `EVENTS` frame (its full wire encoding) and
    /// fsyncs, returning the new durable cursor — the value the replica may
    /// now ack.  `events` and `batch_fingerprint` come from the frame the
    /// caller already decoded.
    pub fn append_events(
        &mut self,
        payload: &[u8],
        events: u64,
        batch_fingerprint: u64,
    ) -> Result<ResumeCursor, JournalError> {
        let chain_after = chain_fingerprint(self.cursor.chain, batch_fingerprint);
        self.scratch.clear();
        self.scratch.push(RECORD_EVENTS);
        self.scratch
            .extend_from_slice(&self.cursor.frames.to_le_bytes());
        self.scratch
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.scratch.extend_from_slice(payload);
        self.scratch.extend_from_slice(&chain_after.to_le_bytes());
        self.file.write_all(&self.scratch)?;
        self.file.sync_data()?;
        self.cursor.frames += 1;
        self.cursor.events += events;
        self.cursor.chain = chain_after;
        Ok(self.cursor)
    }

    /// Records the client's shutdown totals and fsyncs.
    pub fn append_shutdown(&mut self, events: u64, chain: u64) -> Result<(), JournalError> {
        self.scratch.clear();
        self.scratch.push(RECORD_SHUTDOWN);
        self.scratch.extend_from_slice(&events.to_le_bytes());
        self.scratch.extend_from_slice(&chain.to_le_bytes());
        self.file.write_all(&self.scratch)?;
        self.file.sync_data()?;
        self.shutdown = Some((events, chain));
        Ok(())
    }

    /// Re-reads every journaled `EVENTS` payload through this journal's own
    /// handle, leaving the handle append-positioned again.
    ///
    /// This is the supervisor's replay source: restart snapshots the frames
    /// *while holding the session's slot lock*, so the read never races an
    /// append (a second handle on the same path could).  The records below
    /// the cursor were validated at recovery/append time; this pass only
    /// re-parses structure and stops at the cursor's frame count.
    pub fn read_back(&mut self) -> Result<Vec<Vec<u8>>, JournalError> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut bytes = Vec::new();
        self.file.read_to_end(&mut bytes)?;
        self.file.seek(SeekFrom::End(0))?;
        let mut frames = Vec::with_capacity(self.cursor.frames as usize);
        let mut at = JOURNAL_HEADER_BYTES;
        while (frames.len() as u64) < self.cursor.frames {
            match *bytes
                .get(at)
                .ok_or_else(|| JournalError::BadHeader("journal shrank below its cursor".into()))?
            {
                RECORD_EVENTS => {
                    let payload_len = read_u32(&bytes, at + 9)
                        .ok_or_else(|| JournalError::BadHeader("truncated record".into()))?
                        as usize;
                    let payload = bytes
                        .get(at + 13..at + 13 + payload_len)
                        .ok_or_else(|| JournalError::BadHeader("truncated payload".into()))?;
                    frames.push(payload.to_vec());
                    at += 13 + payload_len + 8;
                }
                RECORD_SHUTDOWN => at += 17,
                k => {
                    return Err(JournalError::BadHeader(format!(
                        "unknown record kind {k} below the cursor"
                    )))
                }
            }
        }
        Ok(frames)
    }

    /// The durable cursor: everything at or below it is fsynced.
    pub fn cursor(&self) -> ResumeCursor {
        self.cursor
    }

    /// The client this journal belongs to.
    pub fn client(&self) -> u32 {
        self.client
    }

    /// The session this journal belongs to.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The shutdown totals, if the stream has completed.
    pub fn shutdown(&self) -> Option<(u64, u64)> {
        self.shutdown
    }

    /// The journal's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

enum Record {
    Events {
        payload: Vec<u8>,
        events: u64,
        chain_after: u64,
    },
    Shutdown {
        events: u64,
        chain: u64,
    },
}

/// Reads and validates one record at `*at`, advancing it past the record.
/// `None` means the bytes from `*at` on are torn tail (truncated, corrupt,
/// mis-chained or unknown) — recovery stops here.
fn read_record(
    bytes: &[u8],
    at: &mut usize,
    interner: &mut Vec<Invocation>,
    cursor: &ResumeCursor,
) -> Option<Record> {
    let kind = *bytes.get(*at)?;
    match kind {
        RECORD_EVENTS => {
            let frame_seq = read_u64(bytes, *at + 1)?;
            let payload_len = read_u32(bytes, *at + 9)? as usize;
            let payload_start = *at + 13;
            let payload = bytes.get(payload_start..payload_start + payload_len)?;
            let chain_after = read_u64(bytes, payload_start + payload_len)?;
            // A record is only as good as its payload: decode through the
            // wire codec (structure + batch fingerprint)…
            let frame = decode_frame_with(payload, interner).ok()?;
            let WireFrame::Events {
                events,
                fingerprint,
                ..
            } = frame
            else {
                return None;
            };
            // …require the journal's own bookkeeping to agree (records are
            // appended in acceptance order, so seqs are dense)…
            if frame_seq != cursor.frames {
                return None;
            }
            // …and require the stored chain to link to the running one.
            if chain_fingerprint(cursor.chain, fingerprint) != chain_after {
                return None;
            }
            *at = payload_start + payload_len + 8;
            Some(Record::Events {
                payload: payload.to_vec(),
                events: events.len() as u64,
                chain_after,
            })
        }
        RECORD_SHUTDOWN => {
            let events = read_u64(bytes, *at + 1)?;
            let chain = read_u64(bytes, *at + 9)?;
            *at += 17;
            Some(Record::Shutdown { events, chain })
        }
        _ => None,
    }
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    Some(u32::from_le_bytes(bytes.get(at..at + 4)?.try_into().ok()?))
}

fn read_u64(bytes: &[u8], at: usize) -> Option<u64> {
    Some(u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::{encode_frame, event_batch_fingerprint};
    use evlin_history::{Event, ObjectId, ProcessId};
    use evlin_spec::FetchIncrement;

    fn events_frame(client: u32, frame_seq: u64, n: usize) -> (Vec<u8>, u64, u64) {
        let events: Vec<(u64, Event)> = (0..n as u64)
            .map(|i| {
                (
                    frame_seq * 100 + i,
                    Event::invoke(ProcessId(0), ObjectId(0), FetchIncrement::fetch_inc()),
                )
            })
            .collect();
        let fingerprint = event_batch_fingerprint(client, &events);
        let frame = WireFrame::Events {
            client,
            frame_seq,
            events,
            fingerprint,
        };
        (encode_frame(&frame), n as u64, fingerprint)
    }

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("evjl-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let unique = format!(
            "{name}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        );
        dir.join(unique)
    }

    #[test]
    fn append_then_recover_round_trips_cursor_and_frames() {
        let path = temp_path("roundtrip.evjl");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::create(&path, 3, 0xAA).unwrap();
        let mut expected_frames = Vec::new();
        let mut chain = 3u64;
        for seq in 0..5u64 {
            let (payload, n, fp) = events_frame(3, seq, 4);
            let cursor = journal.append_events(&payload, n, fp).unwrap();
            chain = chain_fingerprint(chain, fp);
            assert_eq!(cursor.frames, seq + 1);
            assert_eq!(cursor.events, (seq + 1) * 4);
            assert_eq!(cursor.chain, chain);
            expected_frames.push(payload);
        }
        journal.append_shutdown(20, chain).unwrap();
        let saved_cursor = journal.cursor();
        drop(journal);

        let (journal, recovered) = Journal::recover(&path).unwrap();
        assert_eq!(recovered.client, 3);
        assert_eq!(recovered.session, 0xAA);
        assert_eq!(recovered.cursor, saved_cursor);
        assert_eq!(recovered.frames, expected_frames);
        assert_eq!(recovered.shutdown, Some((20, chain)));
        assert_eq!(recovered.torn_bytes, 0);
        assert_eq!(journal.cursor(), saved_cursor);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_intact_prefix_survives() {
        let path = temp_path("torn.evjl");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::create(&path, 1, 7).unwrap();
        let (p0, n0, f0) = events_frame(1, 0, 3);
        let (p1, n1, f1) = events_frame(1, 1, 2);
        journal.append_events(&p0, n0, f0).unwrap();
        let full_cursor = journal.append_events(&p1, n1, f1).unwrap();
        drop(journal);
        // Tear the tail: chop bytes off the last record, simulating a crash
        // mid-append.  Every cut length must recover to the 1-frame prefix.
        let clean = std::fs::read(&path).unwrap();
        let second_record_len = clean.len() - (JOURNAL_HEADER_BYTES + 13 + p0.len() + 8);
        for cut in 1..second_record_len {
            std::fs::write(&path, &clean[..clean.len() - cut]).unwrap();
            let (journal, recovered) = Journal::recover(&path).unwrap();
            assert_eq!(recovered.cursor.frames, 1, "cut {cut}");
            assert_eq!(recovered.cursor.events, 3);
            assert_eq!(recovered.frames, vec![p0.clone()]);
            assert!(recovered.shutdown.is_none());
            drop(journal);
            // Recovery truncated: a second recovery sees a clean file.
            let (_, again) = Journal::recover(&path).unwrap();
            assert_eq!(again.torn_bytes, 0);
            assert_eq!(again.cursor, recovered.cursor);
        }
        // The untorn file still recovers whole.
        std::fs::write(&path, &clean).unwrap();
        let (_, recovered) = Journal::recover(&path).unwrap();
        assert_eq!(recovered.cursor, full_cursor);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appends_continue_after_recovery() {
        let path = temp_path("continue.evjl");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::create(&path, 2, 9).unwrap();
        let (p0, n0, f0) = events_frame(2, 0, 2);
        journal.append_events(&p0, n0, f0).unwrap();
        drop(journal);
        let (mut journal, _) = Journal::recover(&path).unwrap();
        let (p1, n1, f1) = events_frame(2, 1, 2);
        let cursor = journal.append_events(&p1, n1, f1).unwrap();
        assert_eq!(cursor.frames, 2);
        drop(journal);
        let (_, recovered) = Journal::recover(&path).unwrap();
        assert_eq!(recovered.cursor, cursor);
        assert_eq!(recovered.frames.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn read_back_returns_every_payload_and_stays_appendable() {
        let path = temp_path("readback.evjl");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::create(&path, 6, 2).unwrap();
        let (p0, n0, f0) = events_frame(6, 0, 2);
        let (p1, n1, f1) = events_frame(6, 1, 4);
        journal.append_events(&p0, n0, f0).unwrap();
        journal.append_shutdown(2, journal.cursor().chain).unwrap();
        // A shutdown record in the middle is skipped by the replay read.
        journal.append_events(&p1, n1, f1).unwrap();
        assert_eq!(journal.read_back().unwrap(), vec![p0.clone(), p1.clone()]);
        // The handle is back at the end: appending still works.
        let (p2, n2, f2) = events_frame(6, 2, 1);
        let cursor = journal.append_events(&p2, n2, f2).unwrap();
        assert_eq!(cursor.frames, 3);
        assert_eq!(journal.read_back().unwrap().len(), 3);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_payload_byte_ends_recovery_at_the_previous_record() {
        let path = temp_path("corrupt.evjl");
        let _ = std::fs::remove_file(&path);
        let mut journal = Journal::create(&path, 5, 11).unwrap();
        let (p0, n0, f0) = events_frame(5, 0, 3);
        let (p1, n1, f1) = events_frame(5, 1, 3);
        journal.append_events(&p0, n0, f0).unwrap();
        journal.append_events(&p1, n1, f1).unwrap();
        drop(journal);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte inside the *second* record's payload.
        let idx = JOURNAL_HEADER_BYTES + 13 + p0.len() + 8 + 13 + p1.len() / 2;
        bytes[idx] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        let (_, recovered) = Journal::recover(&path).unwrap();
        assert_eq!(recovered.cursor.frames, 1);
        assert_eq!(recovered.frames, vec![p0]);
        assert!(recovered.torn_bytes > 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn create_refuses_an_existing_file_and_recover_refuses_non_journals() {
        let path = temp_path("exists.evjl");
        let _ = std::fs::remove_file(&path);
        Journal::create(&path, 0, 1).unwrap();
        assert!(matches!(
            Journal::create(&path, 0, 1),
            Err(JournalError::Io(_))
        ));
        std::fs::write(&path, b"not a journal at all").unwrap();
        assert!(matches!(
            Journal::recover(&path),
            Err(JournalError::BadHeader(_))
        ));
        std::fs::remove_file(&path).unwrap();
    }
}
