//! Differential tests for the sharded, frame-batched pipeline: a history
//! pushed through [`RecorderShard`]s, the k-way [`FrameMerge`] and the split
//! monitor stages must yield exactly the offline kernel's verdict — for all
//! four consistency conditions, any producer count, and under frame-level
//! transport faults.
//!
//! The drive is deliberately single-threaded and seeded: events go into the
//! shards in history order (so the global sequence numbering is the history
//! order), the merge is drained in seed-sized gulps, and the ingest/check
//! stages are pulled with seed-dependent timing.  Every step is
//! deterministic, so a failure reproduces from its seed alone.
//!
//! Under a [`FaultPlan`] the transport loses, duplicates and reorders whole
//! frames; the monitor's verdict is then compared against the offline
//! kernel's verdict on the *post-fault* stream (the events the ingest stage
//! accepted), which is the exactness claim that matters: corruption changes
//! the stream, never the checking.
//!
//! The nightly fuzz job runs the `#[ignore]`d extended tests with
//! `EVLIN_DIFF_CASES` seeds for deep coverage.

use evlin_checker::kernel::{self, SearchLimits};
use evlin_checker::monitor::{stages, MonitorCondition, MonitorConfig, MonitorVerdict};
use evlin_checker::{eventual, linearizability, t_linearizability, weak_consistency};
use evlin_history::{Event, EventKind, History, HistoryBuilder, ObjectUniverse, ProcessId};
use evlin_runtime::sharded_recorder;
use evlin_runtime::FaultPlan;
use evlin_spec::{FetchIncrement, Register, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn universe() -> ObjectUniverse {
    let mut u = ObjectUniverse::new();
    u.add_object(Register::new(Value::from(0i64)));
    u.add_object(FetchIncrement::new());
    u
}

/// Random well-formed history over a register and a fetch&inc object — the
/// same shape as the checker's differential generator (noisy responses,
/// overlap, pending tails).
fn random_history(seed: u64, max_ops: usize) -> History {
    let mut rng = StdRng::seed_from_u64(seed);
    let r = evlin_history::ObjectId(0);
    let x = evlin_history::ObjectId(1);
    let processes = rng.gen_range(2..4usize);
    let total_ops = rng.gen_range(2..=max_ops);
    let mut plans: Vec<Vec<evlin_spec::Invocation>> = vec![Vec::new(); processes];
    for _ in 0..total_ops {
        let p = rng.gen_range(0..processes);
        let inv = match rng.gen_range(0..3u32) {
            0 => Register::write(Value::from(rng.gen_range(1..4i64))),
            1 => Register::read(),
            _ => FetchIncrement::fetch_inc(),
        };
        plans[p].push(inv);
    }
    let mut b = HistoryBuilder::new();
    let mut next_op: Vec<usize> = vec![0; processes];
    let mut pending: Vec<Option<evlin_spec::Invocation>> = vec![None; processes];
    let object_of = |inv: &evlin_spec::Invocation| if inv.method() == "fetch_inc" { x } else { r };
    for _ in 0..total_ops * 8 {
        let p = rng.gen_range(0..processes);
        if let Some(inv) = pending[p].clone() {
            if rng.gen_bool(0.7) {
                let response = if inv.method() == "write" {
                    Value::Unit
                } else {
                    Value::from(rng.gen_range(0..4i64))
                };
                b = b.respond(ProcessId(p), object_of(&inv), response);
                pending[p] = None;
            }
        } else if next_op[p] < plans[p].len() {
            let inv = plans[p][next_op[p]].clone();
            next_op[p] += 1;
            b = b.invoke(ProcessId(p), object_of(&inv), inv.clone());
            pending[p] = Some(inv);
        }
    }
    b.build()
}

/// Pushes `history` through `producers` recorder shards (events of a process
/// always go to the same shard — the shard contract) and drains the merge,
/// returning the globally ordered post-transport event stream.
fn pipeline_stream(
    history: &History,
    producers: usize,
    seed: u64,
    plan: Option<FaultPlan>,
) -> Vec<Event> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x0f1e_2d3c);
    let frame_capacity = rng.gen_range(1..5usize);
    // Rings sized so the single-threaded drive never blocks on a full ring,
    // even when the fault plan duplicates every frame (at capacity 1 that is
    // up to two delivered frames per event).
    let ring_frames = 2 * history.len() + 4;
    let (mut shards, mut merge) = sharded_recorder(producers, frame_capacity, ring_frames, plan);
    for event in history.events() {
        let shard = &mut shards[event.process.0 % producers];
        match &event.kind {
            EventKind::Invoke(inv) => shard.invoke(event.process, event.object, inv.clone()),
            EventKind::Respond(v) => shard.respond(event.process, event.object, v.clone()),
        }
    }
    let dropped: usize = shards
        .into_iter()
        .map(|s| s.finish().dropped_malformed)
        .sum();
    assert_eq!(dropped, 0, "well-formed histories pass the shard filters");
    let mut out = Vec::new();
    loop {
        let gulp = rng.gen_range(1..32usize);
        if merge.recv_sorted(&mut out, gulp) == 0 {
            break;
        }
    }
    assert_eq!(merge.stats().fingerprint_mismatches, 0);
    if plan.is_none() {
        // A clean transport reconstructs the exact global numbering…
        let seqs: Vec<u64> = out.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (0..history.len() as u64).collect::<Vec<_>>());
        assert_eq!(merge.stats().misordered_frames, 0);
    }
    out.into_iter().map(|(_, e)| e).collect()
}

/// Drives `stream` through the split monitor stages with seed-dependent
/// batch-pull timing; returns the verdict and the history of the events the
/// ingest stage *accepted* (its post-filter stream — on a clean transport,
/// the input itself).
fn staged_verdict_on(
    stream: &[Event],
    condition: MonitorCondition,
    seed: u64,
) -> (MonitorVerdict, History) {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57a6_ed01);
    let config = MonitorConfig {
        condition,
        min_segment_events: rng.gen_range(1..5usize),
        segment_batch: rng.gen_range(1..4usize),
        ..MonitorConfig::default()
    };
    let (mut ingest, mut check) = stages(universe(), config);
    let mut accepted = Vec::with_capacity(stream.len());
    for event in stream.iter().cloned() {
        // A faulted transport can orphan responses or duplicate invocations;
        // the ingest stage rejects those, and the offline comparison runs on
        // what survived.
        if ingest.ingest(event.clone()).is_ok() {
            accepted.push(event);
        }
        let batch = if rng.gen_bool(0.3) {
            ingest.take_batch()
        } else {
            ingest.take_ready_batch()
        };
        if let Some(batch) = batch {
            check.check_batch(batch);
        }
    }
    let (tail, summary) = ingest.finish();
    let report = check.finish(tail, summary);
    assert_ne!(
        report.verdict,
        MonitorVerdict::Unknown,
        "budgets must not be exhausted at test sizes"
    );
    (report.verdict, History::from_events(accepted))
}

/// The full claim, for one seed: pipeline + staged monitor ≡ offline kernel
/// on the post-transport stream, all four conditions.
fn check_pipeline_all_conditions(seed: u64, producers: usize, max_ops: usize, faulty: bool) {
    let h = random_history(seed, max_ops);
    let plan = faulty.then_some(FaultPlan {
        seed: seed ^ 0xfa17,
        lose: 200,
        duplicate: 200,
        reorder: 200,
    });
    let stream = pipeline_stream(&h, producers, seed, plan);
    if !faulty {
        assert_eq!(
            stream,
            h.events().to_vec(),
            "a clean transport is invisible (seed {seed}, {producers} producers)"
        );
    }
    let u = universe();

    let (lin, accepted) = staged_verdict_on(&stream, MonitorCondition::Linearizability, seed);
    assert_eq!(
        lin.is_ok(),
        linearizability::is_linearizable(&accepted, &u),
        "pipelined linearizability mismatch (seed {seed}, {producers} producers)\n{accepted}"
    );

    for t in [0, 1, accepted.len() / 2, accepted.len()] {
        let (tlin, accepted) =
            staged_verdict_on(&stream, MonitorCondition::TLinearizability { t }, seed);
        assert_eq!(
            tlin.is_ok(),
            t_linearizability::is_t_linearizable(&accepted, &u, t),
            "pipelined t-linearizability mismatch (seed {seed}, t {t}, {producers} producers)\n{accepted}"
        );
    }

    let (weak, accepted) = staged_verdict_on(&stream, MonitorCondition::WeakConsistency, seed);
    let offline_weak = weak_consistency::violations(&accepted, &u);
    match weak {
        MonitorVerdict::Ok => assert!(
            offline_weak.is_empty(),
            "pipelined monitor missed violations {offline_weak:?} (seed {seed})\n{accepted}"
        ),
        MonitorVerdict::Violation(v) => assert_eq!(
            v.op,
            offline_weak.first().copied(),
            "pipelined monitor flagged the wrong operation (seed {seed})\n{accepted}"
        ),
        MonitorVerdict::Unknown => unreachable!(),
    }

    let (stab, accepted) = staged_verdict_on(&stream, MonitorCondition::StabilizesEventually, seed);
    let offline_stab = kernel::check(
        &eventual::StabilizesEventually,
        &accepted,
        &u,
        SearchLimits::default(),
    )
    .is_yes();
    assert_eq!(
        stab.is_ok(),
        offline_stab,
        "pipelined stabilizes-eventually mismatch (seed {seed}, {producers} producers)\n{accepted}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn clean_pipeline_matches_offline_for_1_2_8_producers(seed in 0u64..u64::MAX / 2) {
        for producers in [1, 2, 8] {
            check_pipeline_all_conditions(seed, producers, 6, false);
        }
    }

    #[test]
    fn faulty_pipeline_matches_offline_on_the_surviving_stream(seed in 0u64..u64::MAX / 2) {
        for producers in [1, 2, 8] {
            check_pipeline_all_conditions(seed, producers, 6, true);
        }
    }
}

/// Number of cases for the `#[ignore]`d extended (nightly-fuzz) tests.
fn extended_cases() -> u64 {
    std::env::var("EVLIN_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

#[test]
#[ignore = "extended fuzz: run via the nightly CI job or with --ignored"]
fn extended_clean_pipeline_vs_offline() {
    for seed in 0..extended_cases() / 8 {
        for producers in [1, 2, 8] {
            check_pipeline_all_conditions(seed.wrapping_mul(0x9e37_79b9), producers, 7, false);
        }
    }
}

#[test]
#[ignore = "extended fuzz: run via the nightly CI job or with --ignored"]
fn extended_faulty_pipeline_vs_offline() {
    for seed in 0..extended_cases() / 8 {
        for producers in [1, 2, 8] {
            check_pipeline_all_conditions(seed.wrapping_mul(0x9e37_79b9), producers, 7, true);
        }
    }
}
