//! # evlin-runtime
//!
//! Real multi-threaded shared objects with history recording.
//!
//! The simulator in `evlin-sim` is what makes the paper's *proofs*
//! executable; this crate is what makes the paper's *motivation* measurable.
//! The introduction argues that a fetch&increment counter used for reference
//! counting is typically built from compare&swap and that, under contention,
//! it can be acceptable to return a temporarily stale value as long as all
//! increments are eventually counted.  The experiments of EXPERIMENTS.md
//! (E8) compare, on real threads:
//!
//! * [`counter::CasCounter`] — the linearizable compare&swap retry loop;
//! * [`counter::FetchAddCounter`] — the linearizable hardware `fetch_add`;
//! * [`counter::ShardedCounter`] — an eventually consistent counter that
//!   batches increments in per-thread shards and refreshes its view of other
//!   shards only periodically, trading staleness for throughput.
//!
//! [`recorder::Recorder`] timestamps invocation and response events with a
//! global atomic sequence number so that the histories produced by real
//! threads can be checked offline with `evlin-checker` (the specialized
//! fetch&increment checker handles hundreds of thousands of operations) —
//! or *online*: a streaming recorder ([`Recorder::with_sink`]) feeds the
//! events, in sequence order, through a bounded SPSC [`channel`] into the
//! incremental monitor (`evlin_checker::monitor`), which verifies the run
//! *while it executes* with memory bounded by the concurrency window.
//! [`harness`] ties it together: spawn threads, run a workload, collect the
//! history and throughput statistics ([`harness::run_counter_workload`]), or
//! check the stream live ([`harness::run_counter_workload_monitored`], used
//! by experiment E11 and the `monitor_throughput` bench).
//!
//! For the fault-injection experiments, [`fault::FaultySender`] turns the
//! monitor feed into a seeded lossy/duplicating/reordering link
//! ([`Recorder::with_faulty_sink`],
//! [`harness::run_counter_workload_monitored_faulty`]), so the online
//! checker's reaction to transient *transport* faults can be measured
//! alongside the simulator's transient *state* faults.
//!
//! ## The pipelined path
//!
//! The single channel pays one lock round and one condvar notification per
//! event, which caps end-to-end checked throughput far below what the
//! monitor kernel can sustain.  The *sharded, frame-batched, pipelined*
//! dataflow removes that cap:
//!
//! * each worker thread records into its own [`recorder::RecorderShard`],
//!   which batches sequence-stamped events into pooled frames and ships
//!   them over a per-producer bounded ring ([`channel::sharded`]);
//! * a k-way [`channel::sharded::FrameMerge`] restores global sequence
//!   order at O(k) per run of consecutive items, replacing the per-event
//!   reorder buffer;
//! * the monitor is split into overlapping stages
//!   (`evlin_checker::monitor::stages`): the merge thread cuts quiescent
//!   segments while a check thread runs the kernel over closed segments.
//!
//! [`harness::run_counter_workload_pipelined`] (and its frame-fault twin
//! [`harness::run_counter_workload_pipelined_faulty`]) wires the three
//! stages up; its verdicts are bit-identical to the single-channel path's —
//! `tests/pipeline_differential.rs` proves that against the offline kernel
//! for 1/2/8 producers, with and without frame faults.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod channel;
pub mod consensus;
pub mod counter;
pub mod fault;
pub mod harness;
pub mod recorder;

pub use channel::sharded::{Frame, FrameMerge, FrameSender, MergeStats};
pub use channel::{ChannelStats, TrySendError};
pub use counter::{CasCounter, ConcurrentCounter, FetchAddCounter, ShardedCounter};
pub use fault::{ChannelFaultStats, FaultPlan, FaultySender};
pub use harness::{
    run_counter_workload, run_counter_workload_monitored, run_counter_workload_monitored_faulty,
    run_counter_workload_pipelined, run_counter_workload_pipelined_faulty, CounterRun,
    HarnessOptions, MonitoredRun, PipelineOptions, PipelinedRun,
};
pub use recorder::{sharded_recorder, EventSink, Recorder, RecorderShard, SinkStats};
