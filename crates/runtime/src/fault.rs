//! Transient channel faults for the streaming pipeline.
//!
//! The simulator's fault layer (`evlin_sim::fault`) corrupts *state*; this
//! module corrupts *transport*.  A [`FaultySender`] wraps the bounded
//! [`crate::channel`] sender and, driven by a seeded deterministic generator,
//! loses, duplicates or adjacently reorders items in flight — the classical
//! transient channel faults of the self-stabilization literature.  Wired
//! under a streaming [`crate::Recorder`] (see `Recorder::with_faulty_sink`)
//! it turns the live-monitor feed into a faulty link, so the experiments can
//! measure how the online checker reacts to a corrupted event stream: a
//! violation is *flagged*, and once the stream quiesces past the corrupted
//! prefix the `t`-linearizability floater machinery *forgives* it.
//!
//! Determinism matters more than realism here: every decision comes from an
//! xorshift generator seeded by the caller, so a run with a given
//! [`FaultPlan`] injects exactly the same faults every time.

use crate::channel::{SendError, Sender};

/// Probability scale of the [`FaultPlan`] knobs: each knob is a chance out
/// of 1024 per item.
pub const FAULT_SCALE: u32 = 1024;

/// A seeded, deterministic plan of channel faults.
///
/// Each item sent through a [`FaultySender`] suffers at most one fault,
/// drawn in the order loss → duplication → reordering; a knob of 0 disables
/// that fault kind and an all-zero plan makes the sender transparent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the per-sender xorshift generator (0 is mapped to 1).
    pub seed: u64,
    /// Chance (out of [`FAULT_SCALE`]) that an item is silently lost.
    pub lose: u32,
    /// Chance (out of [`FAULT_SCALE`]) that an item is delivered twice.
    pub duplicate: u32,
    /// Chance (out of [`FAULT_SCALE`]) that an item is held back and swapped
    /// with the next item (adjacent reordering; the held item is flushed
    /// when the sender is dropped).
    pub reorder: u32,
}

impl FaultPlan {
    /// A plan that injects no faults (the wrapper becomes transparent).
    pub fn transparent(seed: u64) -> Self {
        FaultPlan {
            seed,
            lose: 0,
            duplicate: 0,
            reorder: 0,
        }
    }

    /// A purely lossy link.
    pub fn lossy(seed: u64, lose: u32) -> Self {
        FaultPlan {
            lose,
            ..FaultPlan::transparent(seed)
        }
    }

    /// A link that duplicates but never loses or reorders.
    pub fn duplicating(seed: u64, duplicate: u32) -> Self {
        FaultPlan {
            duplicate,
            ..FaultPlan::transparent(seed)
        }
    }

    /// A link that adjacently reorders but never loses or duplicates.
    pub fn reordering(seed: u64, reorder: u32) -> Self {
        FaultPlan {
            reorder,
            ..FaultPlan::transparent(seed)
        }
    }

    /// Derives an independent per-shard plan from this one: same fault
    /// rates, decorrelated seed.  The sharded frame transport
    /// ([`crate::channel::sharded`]) gives each producer ring its own
    /// [`FaultySender`]; deriving the seeds keeps a multi-shard run exactly
    /// as reproducible as a single-link one.
    pub fn for_shard(self, shard: usize) -> FaultPlan {
        FaultPlan {
            seed: self
                .seed
                .wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(shard as u64 + 1)),
            ..self
        }
    }
}

/// Counters of the faults a [`FaultySender`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelFaultStats {
    /// Items that reached the underlying channel (duplicates counted twice).
    pub delivered: usize,
    /// Items silently lost.
    pub lost: usize,
    /// Items delivered twice (each adds one extra `delivered`).
    pub duplicated: usize,
    /// Items held back and swapped with their successor.
    pub reordered: usize,
}

/// A sender that injects seeded transient faults in front of a bounded
/// [`crate::channel`] sender.
///
/// The wrapper needs `&mut self` (it carries the generator and the held-back
/// item); the recorder drives it from inside its own lock, so no second
/// layer of synchronization is needed.  Dropping the sender flushes a
/// held-back item before hanging up, so reordering never silently turns
/// into loss.
pub struct FaultySender<T: Clone> {
    inner: Sender<T>,
    plan: FaultPlan,
    rng: u64,
    held: Option<T>,
    stats: ChannelFaultStats,
}

impl<T: Clone> FaultySender<T> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: Sender<T>, plan: FaultPlan) -> Self {
        FaultySender {
            inner,
            plan,
            rng: plan.seed.max(1),
            held: None,
            stats: ChannelFaultStats::default(),
        }
    }

    /// The faults injected so far.
    pub fn stats(&self) -> ChannelFaultStats {
        self.stats
    }

    fn roll(&mut self) -> u32 {
        // xorshift64: full period over nonzero states, plenty for fault
        // schedules, and dependency-free.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x >> 32) as u32 % FAULT_SCALE
    }

    /// Sends `item` through the faulty link.
    ///
    /// `Ok` means the link accepted the item — *including* when the fault
    /// plan lost it (loss is a channel fault, not a shutdown).  The error is
    /// reserved for a real disconnect of the underlying channel, carrying
    /// the item back exactly like [`Sender::send`].
    pub fn send(&mut self, item: T) -> Result<(), SendError<T>> {
        let roll = self.roll();
        if roll < self.plan.lose {
            self.stats.lost += 1;
            return Ok(());
        }
        if roll < self.plan.lose + self.plan.duplicate {
            self.stats.duplicated += 1;
            self.deliver(item.clone())?;
            self.deliver(item)?;
            return self.flush();
        }
        if roll < self.plan.lose + self.plan.duplicate + self.plan.reorder && self.held.is_none() {
            self.stats.reordered += 1;
            self.held = Some(item);
            return Ok(());
        }
        // Deliver the current item first, then any held-back predecessor —
        // the adjacent swap that makes a pending reorder visible.
        self.deliver(item)?;
        self.flush()
    }

    /// Delivers any held-back item without injecting new faults.
    pub fn flush(&mut self) -> Result<(), SendError<T>> {
        match self.held.take() {
            Some(item) => self.deliver(item),
            None => Ok(()),
        }
    }

    fn deliver(&mut self, item: T) -> Result<(), SendError<T>> {
        self.inner.send(item)?;
        self.stats.delivered += 1;
        Ok(())
    }
}

impl<T: Clone> Drop for FaultySender<T> {
    fn drop(&mut self) {
        // A held-back item must still reach the channel before the hang-up;
        // a disconnect here is swallowed (shutdown is not an error path).
        let _ = self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel;

    fn drain(rx: &channel::Receiver<usize>) -> Vec<usize> {
        std::iter::from_fn(|| rx.recv()).collect()
    }

    #[test]
    fn transparent_plan_preserves_the_stream() {
        let (tx, rx) = channel::bounded(64);
        let mut faulty = FaultySender::new(tx, FaultPlan::transparent(7));
        for i in 0..32usize {
            faulty.send(i).unwrap();
        }
        drop(faulty);
        assert_eq!(drain(&rx), (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn faults_are_seed_deterministic() {
        let run = |seed: u64| {
            let (tx, rx) = channel::bounded(256);
            let mut faulty = FaultySender::new(
                tx,
                FaultPlan {
                    seed,
                    lose: 128,
                    duplicate: 128,
                    reorder: 128,
                },
            );
            for i in 0..100usize {
                faulty.send(i).unwrap();
            }
            let stats = faulty.stats();
            drop(faulty);
            (drain(&rx), stats)
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0, "different seeds, different faults");
    }

    #[test]
    fn lossy_link_loses_and_counts() {
        let (tx, rx) = channel::bounded(256);
        let mut faulty = FaultySender::new(tx, FaultPlan::lossy(5, 256));
        for i in 0..200usize {
            faulty.send(i).unwrap();
        }
        let stats = faulty.stats();
        drop(faulty);
        let received = drain(&rx);
        assert!(stats.lost > 0, "a 25% lossy link must lose something");
        assert_eq!(received.len(), 200 - stats.lost);
        assert_eq!(received.len(), stats.delivered);
        // Losses never reorder the survivors.
        assert!(received.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn duplicating_link_repeats_items_in_place() {
        let (tx, rx) = channel::bounded(256);
        let mut faulty = FaultySender::new(tx, FaultPlan::duplicating(9, 256));
        for i in 0..100usize {
            faulty.send(i).unwrap();
        }
        let stats = faulty.stats();
        drop(faulty);
        let received = drain(&rx);
        assert!(stats.duplicated > 0);
        assert_eq!(received.len(), 100 + stats.duplicated);
        // Duplicates are adjacent and order is otherwise preserved.
        assert!(received.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn reordering_link_swaps_adjacent_items_and_flushes_on_drop() {
        let (tx, rx) = channel::bounded(256);
        let mut faulty = FaultySender::new(tx, FaultPlan::reordering(11, 512));
        for i in 0..100usize {
            faulty.send(i).unwrap();
        }
        let stats = faulty.stats();
        drop(faulty); // flushes any held-back item
        let received = drain(&rx);
        assert!(stats.reordered > 0);
        assert_eq!(received.len(), 100, "reordering must never lose items");
        let mut sorted = received.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(received, sorted, "something actually moved");
    }

    #[test]
    fn disconnect_still_surfaces_through_the_faulty_link() {
        let (tx, rx) = channel::bounded(4);
        let mut faulty = FaultySender::new(tx, FaultPlan::transparent(3));
        drop(rx);
        let err = faulty.send(1usize).expect_err("receiver is gone");
        assert_eq!(err, SendError::Disconnected(1));
    }
}
