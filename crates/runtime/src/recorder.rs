//! Recording histories from real threads.

use crate::channel::sharded::{self, FrameMerge, FrameSender};
use crate::channel::{SendError, Sender};
use crate::fault::{ChannelFaultStats, FaultPlan, FaultySender};
use evlin_history::{Event, EventKind, History, ObjectId, ProcessId};
use evlin_spec::{Invocation, Value};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// A concurrent event recorder.
///
/// Threads call [`Recorder::invoke`] right before starting an operation and
/// [`Recorder::respond`] right after obtaining its response.  Events receive
/// globally unique, monotonically increasing sequence numbers from an atomic
/// counter, and the final history orders events by that sequence number, so
/// the recorded real-time order is consistent with what each thread observed.
///
/// Recording costs one atomic increment plus one short critical section per
/// event; the experiments that measure raw throughput therefore also support
/// running with recording disabled.
///
/// ## Streaming
///
/// A recorder built with [`Recorder::with_sink`] additionally *streams* the
/// events, in sequence order, into a bounded [`crate::channel`] — the feed of
/// the online monitor (`evlin_checker::monitor`).  Because a thread obtains
/// its sequence number before it appends the event, events can reach the
/// recorder slightly out of order; a small reorder buffer holds back events
/// until their predecessors have arrived, so the consumer always sees the
/// true sequence order.
///
/// On early shutdown (drop, or [`Recorder::into_history`] while operations
/// are still in flight) the reorder buffer is flushed: held-back events are
/// emitted in sequence order, skipping unfillable gaps, and filtered so the
/// emitted stream stays *well-formed* — an operation whose response never
/// arrived appears as a pending invocation that the checkers treat as
/// pending, rather than being silently truncated or leaving an orphan
/// response behind.
pub struct Recorder {
    next: AtomicUsize,
    inner: Mutex<Inner>,
}

struct Inner {
    /// `(seq, event)` pairs kept for [`Recorder::into_history`] /
    /// [`Recorder::snapshot`]; disabled for pure streaming so memory stays
    /// bounded on arbitrarily long runs.
    retained: Vec<(usize, Event)>,
    retain: bool,
    stream: Option<StreamState>,
}

/// Counters describing what a streaming recorder delivered to its sink.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SinkStats {
    /// Events delivered to the sink.
    pub emitted: usize,
    /// Events dropped because emitting them would have made the stream
    /// ill-formed (orphan responses after a lost invocation, double
    /// invocations by a misbehaving caller).
    pub dropped_malformed: usize,
    /// Events flushed past an unfillable sequence gap on shutdown, plus
    /// events that arrived only after a flush had already walked past their
    /// sequence number (emitted late rather than stranded).
    pub flushed_past_gap: usize,
    /// Whether the sink hung up before the stream ended.
    pub disconnected: bool,
    /// Events swallowed because the sink had already hung up.  A hang-up can
    /// race the drop-time flush, so delivery failures there are *counted*
    /// rather than panicking inside `Drop`.
    pub dropped_disconnected: usize,
    /// Frames shipped below capacity by the frame-batched path
    /// ([`RecorderShard`]): the stream tail (and explicit flushes) must
    /// reach the sink *before* the disconnect-swallowing path runs, and this
    /// counter proves the partial flush happened instead of a silent
    /// truncation.  Always 0 on the per-event path.
    pub flushed_partial_frames: usize,
}

/// The recorder's downstream link: the bounded channel sender, either bare
/// or behind the transient-fault injector of [`crate::fault`].
enum Sink {
    Clean(Sender<Event>),
    Faulty(FaultySender<Event>),
}

impl Sink {
    fn send(&mut self, event: Event) -> Result<(), SendError<Event>> {
        match self {
            Sink::Clean(sender) => sender.send(event),
            Sink::Faulty(faulty) => faulty.send(event),
        }
    }

    /// Pushes a held-back (reordered) event through; a no-op for clean links.
    fn flush(&mut self) {
        if let Sink::Faulty(faulty) = self {
            let _ = faulty.flush();
        }
    }

    fn fault_stats(&self) -> Option<ChannelFaultStats> {
        match self {
            Sink::Clean(_) => None,
            Sink::Faulty(faulty) => Some(faulty.stats()),
        }
    }
}

struct StreamState {
    sender: Option<Sink>,
    /// The next sequence number to emit.
    next_emit: usize,
    /// Events that arrived ahead of a missing predecessor.
    reorder: BTreeMap<usize, Event>,
    /// Per-process pending-operation tracking, to keep the emitted stream
    /// well-formed across flushes.
    pending: BTreeMap<ProcessId, ObjectId>,
    stats: SinkStats,
}

impl StreamState {
    fn new(sender: Sink) -> Self {
        StreamState {
            sender: Some(sender),
            next_emit: 0,
            reorder: BTreeMap::new(),
            pending: BTreeMap::new(),
            stats: SinkStats::default(),
        }
    }

    /// Offers one event; emits it (and any events it unblocks) if the stream
    /// has caught up to its sequence number.
    fn offer(&mut self, seq: usize, event: Event) {
        if seq < self.next_emit {
            // A flush already walked past this sequence number (the
            // recording thread was descheduled between reserving the number
            // and appending the event).  Emit it late through the
            // well-formedness filter rather than stranding it in the
            // reorder buffer forever.
            self.stats.flushed_past_gap += 1;
            self.emit(event);
            return;
        }
        self.reorder.insert(seq, event);
        while let Some(event) = self.reorder.remove(&self.next_emit) {
            self.next_emit += 1;
            self.emit(event);
        }
    }

    /// Emits one event through the well-formedness filter.
    fn emit(&mut self, event: Event) {
        match &event.kind {
            EventKind::Invoke(_) => {
                if self.pending.contains_key(&event.process) {
                    self.stats.dropped_malformed += 1;
                    return;
                }
                self.pending.insert(event.process, event.object);
            }
            EventKind::Respond(_) => match self.pending.get(&event.process) {
                Some(object) if *object == event.object => {
                    self.pending.remove(&event.process);
                }
                _ => {
                    self.stats.dropped_malformed += 1;
                    return;
                }
            },
        }
        if let Some(sender) = &mut self.sender {
            if sender.send(event).is_ok() {
                self.stats.emitted += 1;
            } else {
                self.stats.disconnected = true;
                self.stats.dropped_disconnected += 1;
                self.sender = None;
            }
        } else {
            // The sink hung up earlier; later events (including the
            // drop-time flush of the reorder buffer) are swallowed and
            // counted, never panicked on.
            self.stats.dropped_disconnected += 1;
        }
    }

    /// Emits everything still held back, in sequence order, skipping gaps
    /// that can no longer be filled.  Open operations come out as pending
    /// invocations; responses orphaned by a gap are dropped by the
    /// well-formedness filter.
    fn flush(&mut self) {
        let held = std::mem::take(&mut self.reorder);
        for (seq, event) in held {
            if seq >= self.next_emit {
                if seq > self.next_emit {
                    self.stats.flushed_past_gap += 1;
                }
                self.next_emit = seq + 1;
                self.emit(event);
            }
        }
        if let Some(sender) = &mut self.sender {
            sender.flush();
        }
    }
}

impl Drop for StreamState {
    fn drop(&mut self) {
        // Dropping the recorder mid-run must still hand the tail to the
        // sink (and then hang up by dropping the sender).
        self.flush();
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl fmt::Debug for Recorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Recorder")
            .field("events", &inner.retained.len())
            .field("streaming", &inner.stream.is_some())
            .finish()
    }
}

impl Recorder {
    /// Creates an empty recorder that retains every event for
    /// [`Recorder::into_history`].
    pub fn new() -> Self {
        Recorder {
            next: AtomicUsize::new(0),
            inner: Mutex::new(Inner {
                retained: Vec::new(),
                retain: true,
                stream: None,
            }),
        }
    }

    /// Creates a recorder that streams events, in sequence order, into
    /// `sink`.  With `retain_events` set the events are additionally kept
    /// for [`Recorder::into_history`]; without it, memory stays bounded by
    /// the reorder window no matter how long the run is.
    pub fn with_sink(sink: Sender<Event>, retain_events: bool) -> Self {
        Recorder {
            next: AtomicUsize::new(0),
            inner: Mutex::new(Inner {
                retained: Vec::new(),
                retain: retain_events,
                stream: Some(StreamState::new(Sink::Clean(sink))),
            }),
        }
    }

    /// Like [`Recorder::with_sink`], but streaming through a transient-fault
    /// channel ([`crate::fault::FaultySender`]) that loses, duplicates or
    /// reorders events per the seeded `plan` — the feed of the
    /// fault-injection experiments, where the online monitor must flag a
    /// corrupted stream and forgive a corrupted-but-quiesced prefix.
    pub fn with_faulty_sink(sink: Sender<Event>, plan: FaultPlan, retain_events: bool) -> Self {
        Recorder {
            next: AtomicUsize::new(0),
            inner: Mutex::new(Inner {
                retained: Vec::new(),
                retain: retain_events,
                stream: Some(StreamState::new(Sink::Faulty(FaultySender::new(
                    sink, plan,
                )))),
            }),
        }
    }

    /// Counters of the faults the sink's channel injected, if this recorder
    /// streams through a faulty sink ([`Recorder::with_faulty_sink`]).
    pub fn channel_fault_stats(&self) -> Option<ChannelFaultStats> {
        self.inner
            .lock()
            .stream
            .as_ref()
            .and_then(|s| s.sender.as_ref())
            .and_then(|sink| sink.fault_stats())
    }

    fn record(&self, event: Event) {
        let seq = self.next.fetch_add(1, Ordering::SeqCst);
        let mut inner = self.inner.lock();
        if inner.retain {
            inner.retained.push((seq, event.clone()));
        }
        if let Some(stream) = &mut inner.stream {
            stream.offer(seq, event);
        }
    }

    /// Records an invocation event by `process` on `object`.
    pub fn invoke(&self, process: ProcessId, object: ObjectId, invocation: Invocation) {
        self.record(Event::invoke(process, object, invocation));
    }

    /// Records a response event by `process` on `object`.
    pub fn respond(&self, process: ProcessId, object: ObjectId, value: Value) {
        self.record(Event::respond(process, object, value));
    }

    /// Number of events recorded so far (sequence numbers handed out).
    pub fn len(&self) -> usize {
        self.next.load(Ordering::SeqCst)
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes the streaming sink: held-back events are emitted in sequence
    /// order past any unfillable gap, keeping the emitted stream well-formed.
    /// A no-op for non-streaming recorders.
    pub fn flush_sink(&self) {
        if let Some(stream) = &mut self.inner.lock().stream {
            stream.flush();
        }
    }

    /// Counters of the streaming sink, if this recorder has one.
    pub fn sink_stats(&self) -> Option<SinkStats> {
        self.inner.lock().stream.as_ref().map(|s| s.stats)
    }

    /// Extracts the recorded history, ordered by sequence number.
    ///
    /// For a streaming recorder this also flushes the sink and hangs up
    /// (open operations reach the sink as pending invocations first).  A
    /// streaming recorder built without `retain_events` returns an empty
    /// history — the events went to the sink instead.
    pub fn into_history(self) -> History {
        let inner = self.inner.into_inner();
        // Dropping the stream state flushes the tail into the sink and then
        // drops the sender, closing the channel.
        drop(inner.stream);
        let mut events = inner.retained;
        events.sort_by_key(|(seq, _)| *seq);
        History::from_events(events.into_iter().map(|(_, e)| e).collect())
    }

    /// Clones the recorded history without consuming the recorder.
    pub fn snapshot(&self) -> History {
        let mut events = self.inner.lock().retained.clone();
        events.sort_by_key(|(seq, _)| *seq);
        History::from_events(events.into_iter().map(|(_, e)| e).collect())
    }
}

/// A destination for sequence-stamped events — the seam between recording
/// and transport.
///
/// The frame-batched [`FrameSender`] is the in-process implementation; the
/// monitoring *service* (`evlin-service`) implements the same trait over its
/// wire codec, so a [`RecorderShard`] can stream straight into a remote
/// monitor replica without the recording side knowing which transport sits
/// underneath.  Implementations receive events already well-formed and in
/// the producer's local order; `seq` values come from the shared global
/// counter and are strictly increasing per producer.
pub trait EventSink {
    /// Accepts one sequence-stamped event.
    fn accept(&mut self, seq: u64, event: Event);
    /// Pushes any buffered events toward the consumer now.
    fn flush(&mut self);
}

impl EventSink for FrameSender<Event> {
    fn accept(&mut self, seq: u64, event: Event) {
        self.push(seq, event);
    }

    fn flush(&mut self) {
        FrameSender::flush(self);
    }
}

/// One producer's handle of a sharded, frame-batched recorder
/// (see [`sharded_recorder`]).
///
/// Where [`Recorder`] funnels every event through one mutex and one
/// per-event channel send, a shard is owned by exactly one recording thread:
/// recording is a shared atomic sequence fetch plus a local vector push, and
/// the channel is touched once per *frame*.  The shard runs its own
/// well-formedness filter (the same rules as the streaming recorder's) and
/// filters *before* allocating a sequence number, so a clean shard stream
/// has no gaps and the merge's output needs no gap-skipping pass.
///
/// The shard is generic over its [`EventSink`] (defaulting to the in-process
/// [`FrameSender`]); `evlin-service` plugs its wire-encoding client sink in
/// here, which is how one recording path serves both the in-process pipeline
/// and the networked service.
///
/// Contract: all events of a given process must go through the same shard
/// (the harness maps one worker thread to one shard); the per-shard pending
/// filter is exactly the global one under that mapping.
pub struct RecorderShard<S: EventSink = FrameSender<Event>> {
    seq: Arc<AtomicU64>,
    sender: S,
    /// Pending `(process, object)` pairs on this shard — a couple of
    /// entries, so a linear scan beats any map.
    pending: Vec<(ProcessId, ObjectId)>,
    dropped_malformed: usize,
}

impl<S: EventSink> RecorderShard<S> {
    /// Builds a shard that filters, sequence-stamps (from the shared
    /// counter) and forwards into `sink` — the recorder→client adapter used
    /// by the monitoring service.
    pub fn over(seq: Arc<AtomicU64>, sink: S) -> Self {
        RecorderShard {
            seq,
            sender: sink,
            pending: Vec::new(),
            dropped_malformed: 0,
        }
    }

    /// Records an invocation event by `process` on `object`.
    pub fn invoke(&mut self, process: ProcessId, object: ObjectId, invocation: Invocation) {
        self.record(Event::invoke(process, object, invocation));
    }

    /// Records a response event by `process` on `object`.
    pub fn respond(&mut self, process: ProcessId, object: ObjectId, value: Value) {
        self.record(Event::respond(process, object, value));
    }

    fn record(&mut self, event: Event) {
        match &event.kind {
            EventKind::Invoke(_) => {
                if self.pending.iter().any(|(p, _)| *p == event.process) {
                    self.dropped_malformed += 1;
                    return;
                }
                self.pending.push((event.process, event.object));
            }
            EventKind::Respond(_) => {
                match self
                    .pending
                    .iter()
                    .position(|(p, o)| *p == event.process && *o == event.object)
                {
                    Some(i) => {
                        self.pending.swap_remove(i);
                    }
                    None => {
                        self.dropped_malformed += 1;
                        return;
                    }
                }
            }
        }
        let seq = self.seq.fetch_add(1, Ordering::SeqCst);
        self.sender.accept(seq, event);
    }

    /// Ships buffered events now instead of waiting for a frame to fill.
    pub fn flush(&mut self) {
        self.sender.flush();
    }

    /// Events dropped by the well-formedness filter so far.
    pub fn dropped_malformed(&self) -> usize {
        self.dropped_malformed
    }

    /// Closes the shard, flushing buffered events, and hands the sink back
    /// together with the filter's drop count.
    pub fn into_sink(mut self) -> (S, usize) {
        self.sender.flush();
        (self.sender, self.dropped_malformed)
    }
}

impl RecorderShard<FrameSender<Event>> {
    /// Frame-granularity fault counters, if this shard streams through a
    /// faulty link.
    pub fn fault_stats(&self) -> Option<ChannelFaultStats> {
        self.sender.fault_stats()
    }

    /// Closes the shard: the partially-filled tail frame is flushed (and
    /// counted) *before* the sender hangs up — the frame-path ordering that
    /// keeps a shutdown from silently truncating the tail — and the sink
    /// counters come back in [`SinkStats`] form.
    pub fn finish(mut self) -> SinkStats {
        self.sender.flush();
        let s = self.sender.stats();
        SinkStats {
            emitted: s.events_sent,
            dropped_malformed: self.dropped_malformed,
            flushed_past_gap: 0,
            disconnected: s.disconnected,
            dropped_disconnected: s.dropped_disconnected,
            flushed_partial_frames: s.partial_frames,
        }
    }
}

/// Builds a sharded, frame-batched recording pipeline: one [`RecorderShard`]
/// per producer thread, a shared global sequence counter, and the k-way
/// [`FrameMerge`] whose `recv_sorted` output is the same
/// sequence-ordered event stream the single-channel [`Recorder`] delivers —
/// at a per-frame instead of per-event synchronization cost.  With a `plan`,
/// every shard streams through its own seed-derived frame-level fault
/// injector ([`FaultPlan::for_shard`]).
pub fn sharded_recorder(
    producers: usize,
    frame_capacity: usize,
    ring_frames: usize,
    plan: Option<FaultPlan>,
) -> (Vec<RecorderShard>, FrameMerge<Event>) {
    let (senders, merge) = sharded::sharded(producers, ring_frames, frame_capacity, plan);
    let seq = Arc::new(AtomicU64::new(0));
    let shards = senders
        .into_iter()
        .map(|sender| RecorderShard {
            seq: Arc::clone(&seq),
            sender,
            pending: Vec::new(),
            dropped_malformed: 0,
        })
        .collect();
    (shards, merge)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel;
    use evlin_spec::FetchIncrement;
    use std::sync::Arc;

    #[test]
    fn records_in_sequence_order() {
        let r = Recorder::new();
        let o = ObjectId(0);
        r.invoke(ProcessId(0), o, FetchIncrement::fetch_inc());
        r.respond(ProcessId(0), o, Value::from(0i64));
        r.invoke(ProcessId(1), o, FetchIncrement::fetch_inc());
        r.respond(ProcessId(1), o, Value::from(1i64));
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        let h = r.into_history();
        assert!(h.is_well_formed());
        assert_eq!(h.complete_operations().len(), 2);
    }

    #[test]
    fn concurrent_recording_produces_well_formed_histories() {
        let r = Arc::new(Recorder::new());
        let o = ObjectId(0);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for k in 0..50i64 {
                        r.invoke(ProcessId(t), o, FetchIncrement::fetch_inc());
                        r.respond(ProcessId(t), o, Value::from(k));
                    }
                });
            }
        });
        let h = Arc::try_unwrap(r)
            .expect("all threads joined")
            .into_history();
        assert_eq!(h.len(), 4 * 50 * 2);
        assert!(h.is_well_formed());
    }

    #[test]
    fn snapshot_does_not_consume() {
        let r = Recorder::new();
        let o = ObjectId(0);
        r.invoke(ProcessId(0), o, FetchIncrement::fetch_inc());
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        r.respond(ProcessId(0), o, Value::from(0i64));
        assert_eq!(r.snapshot().len(), 2);
        assert!(r.snapshot().is_well_formed());
    }

    #[test]
    fn empty_recorder_yields_empty_history() {
        let r = Recorder::new();
        assert!(r.is_empty());
        assert!(r.into_history().is_empty());
    }

    #[test]
    fn streaming_delivers_events_in_sequence_order() {
        let (tx, rx) = channel::bounded(8);
        let o = ObjectId(0);
        let consumer = std::thread::spawn(move || {
            let mut events = Vec::new();
            while let Some(e) = rx.recv() {
                events.push(e);
            }
            events
        });
        {
            let r = Arc::new(Recorder::with_sink(tx, true));
            std::thread::scope(|s| {
                for t in 0..4usize {
                    let r = Arc::clone(&r);
                    s.spawn(move || {
                        for k in 0..25i64 {
                            r.invoke(ProcessId(t), o, FetchIncrement::fetch_inc());
                            r.respond(ProcessId(t), o, Value::from(k));
                        }
                    });
                }
            });
            let retained = Arc::try_unwrap(r).expect("joined").into_history();
            assert_eq!(retained.len(), 200);
        }
        let streamed = History::from_events(consumer.join().expect("consumer"));
        assert_eq!(streamed.len(), 200);
        assert!(streamed.is_well_formed());
    }

    #[test]
    fn drop_flushes_pending_tail_as_well_formed_open_operations() {
        let (tx, rx) = channel::bounded(8);
        let o = ObjectId(0);
        let r = Recorder::with_sink(tx, false);
        r.invoke(ProcessId(0), o, FetchIncrement::fetch_inc());
        r.respond(ProcessId(0), o, Value::from(0i64));
        // An operation still in flight when the recorder dies...
        r.invoke(ProcessId(1), o, FetchIncrement::fetch_inc());
        let stats = r.sink_stats().expect("streaming");
        drop(r); // early shutdown: flush + hang up
        let streamed: Vec<Event> = std::iter::from_fn(|| rx.recv()).collect();
        let h = History::from_events(streamed);
        // ...reaches the sink as a *pending* invocation, not a truncation.
        assert!(h.is_well_formed());
        assert_eq!(h.len(), 3);
        assert_eq!(h.pending_operations().len(), 1);
        assert_eq!(stats.dropped_malformed, 0);
    }

    #[test]
    fn flush_skips_gaps_but_never_emits_orphan_responses() {
        let (tx, rx) = channel::bounded(16);
        let o = ObjectId(0);
        let r = Recorder::with_sink(tx, false);
        // Simulate a lost event: burn sequence number 0 so every real event
        // is held back behind the gap...
        r.next.fetch_add(1, Ordering::SeqCst);
        r.invoke(ProcessId(0), o, FetchIncrement::fetch_inc());
        r.respond(ProcessId(0), o, Value::from(0i64));
        assert_eq!(r.sink_stats().expect("streaming").emitted, 0);
        // ...until the flush walks past it and emits the well-formed tail.
        r.flush_sink();
        let stats = r.sink_stats().expect("streaming");
        assert_eq!(stats.emitted, 2);
        assert!(stats.flushed_past_gap > 0);
        drop(r);
        let h = History::from_events(std::iter::from_fn(|| rx.recv()).collect());
        assert!(h.is_well_formed());
        assert_eq!(h.complete_operations().len(), 1);
    }

    #[test]
    fn late_event_after_flush_is_emitted_not_stranded() {
        let (tx, rx) = channel::bounded(8);
        let o = ObjectId(0);
        let r = Recorder::with_sink(tx, false);
        // Sequence number 0 is reserved but its event is delayed (the
        // recording thread was descheduled mid-`record`)...
        r.next.fetch_add(1, Ordering::SeqCst);
        // ...a complete operation queues up behind the gap and a flush walks
        // past it...
        r.invoke(ProcessId(1), o, FetchIncrement::fetch_inc());
        r.respond(ProcessId(1), o, Value::from(1i64));
        r.flush_sink();
        assert_eq!(r.sink_stats().unwrap().emitted, 2);
        // ...and when the delayed event finally lands it is emitted late
        // (well-formedness preserved), not silently discarded.
        r.inner.lock().stream.as_mut().unwrap().offer(
            0,
            Event::invoke(ProcessId(0), o, FetchIncrement::fetch_inc()),
        );
        let stats = r.sink_stats().unwrap();
        assert_eq!(stats.emitted, 3);
        assert_eq!(stats.dropped_malformed, 0);
        drop(r);
        let h = History::from_events(std::iter::from_fn(|| rx.recv()).collect());
        assert!(h.is_well_formed());
        assert_eq!(h.complete_operations().len(), 1);
        assert_eq!(h.pending_operations().len(), 1);
    }

    #[test]
    fn orphan_response_after_lost_invoke_is_dropped() {
        let (tx, rx) = bounded_pair();
        let o = ObjectId(0);
        let r = Recorder::with_sink(tx, false);
        // The invocation's sequence number is burned (thread died between
        // reserving the number and appending the event)...
        r.next.fetch_add(1, Ordering::SeqCst);
        // ...but its response still arrives.
        r.respond(ProcessId(0), o, Value::from(0i64));
        drop(r);
        let streamed: Vec<Event> = std::iter::from_fn(|| rx.recv()).collect();
        assert!(streamed.is_empty(), "orphan response must be dropped");
    }

    fn bounded_pair() -> (Sender<Event>, crate::channel::Receiver<Event>) {
        channel::bounded(8)
    }

    #[test]
    fn hung_up_sink_is_swallowed_and_counted_not_panicked() {
        let (tx, rx) = channel::bounded(8);
        let o = ObjectId(0);
        let r = Recorder::with_sink(tx, false);
        r.invoke(ProcessId(0), o, FetchIncrement::fetch_inc());
        r.respond(ProcessId(0), o, Value::from(0i64));
        drop(rx); // the monitor died mid-run
                  // The next emit observes the hang-up...
        r.invoke(ProcessId(1), o, FetchIncrement::fetch_inc());
        // ...and an event held back behind a sequence gap is flushed into
        // the dead sink without panicking, counted in the stats.
        r.next.fetch_add(1, Ordering::SeqCst);
        r.invoke(ProcessId(2), o, FetchIncrement::fetch_inc());
        r.flush_sink();
        let stats = r.sink_stats().expect("streaming");
        assert_eq!(stats.emitted, 2);
        assert!(stats.disconnected);
        assert_eq!(stats.dropped_disconnected, 2);
        drop(r); // the drop-time flush on a dead sink is a quiet no-op
    }

    #[test]
    fn sharded_recorder_streams_the_same_well_formed_order() {
        let (shards, mut merge) = sharded_recorder(4, 8, 16, None);
        let o = ObjectId(0);
        let (events, stats): (Vec<Event>, Vec<SinkStats>) = std::thread::scope(|s| {
            let workers: Vec<_> = shards
                .into_iter()
                .enumerate()
                .map(|(t, mut shard)| {
                    s.spawn(move || {
                        for k in 0..25i64 {
                            shard.invoke(ProcessId(t), o, FetchIncrement::fetch_inc());
                            shard.respond(ProcessId(t), o, Value::from(k));
                        }
                        shard.finish()
                    })
                })
                .collect();
            let mut out = Vec::new();
            while merge.recv_sorted(&mut out, 256) > 0 {}
            (
                out.into_iter().map(|(_, e)| e).collect(),
                workers
                    .into_iter()
                    .map(|w| w.join().expect("worker"))
                    .collect(),
            )
        });
        let h = History::from_events(events);
        assert_eq!(h.len(), 200);
        assert!(h.is_well_formed());
        assert_eq!(stats.iter().map(|s| s.emitted).sum::<usize>(), 200);
        assert_eq!(stats.iter().map(|s| s.dropped_malformed).sum::<usize>(), 0);
        // 25 ops = 50 events per shard at capacity 8: a partial tail each.
        assert!(stats.iter().all(|s| s.flushed_partial_frames >= 1));
        assert_eq!(merge.stats().fingerprint_mismatches, 0);
        assert_eq!(merge.stats().misordered_frames, 0);
    }

    #[test]
    fn shard_finish_flushes_the_partial_tail_before_hanging_up() {
        // The satellite fix, pinned: a tail frame below capacity must reach
        // a live sink (counted as a flushed-partial frame), and only a sink
        // that *already* hung up may swallow it (counted, never panicking).
        let (mut shards, mut merge) = sharded_recorder(1, 64, 4, None);
        let shard = {
            let mut shard = shards.pop().unwrap();
            let o = ObjectId(0);
            shard.invoke(ProcessId(0), o, FetchIncrement::fetch_inc());
            shard.respond(ProcessId(0), o, Value::from(0i64));
            shard
        };
        // Live sink: finish ships the 2-event partial frame.
        let stats = shard.finish();
        assert_eq!(stats.emitted, 2);
        assert_eq!(stats.flushed_partial_frames, 1);
        assert!(!stats.disconnected);
        let mut out = Vec::new();
        assert_eq!(merge.recv_sorted(&mut out, 16), 2);
        // Dead sink: the flush is swallowed and counted, not truncated away
        // silently and not a panic.
        let (mut shards, merge) = sharded_recorder(1, 64, 4, None);
        let mut shard = shards.pop().unwrap();
        let o = ObjectId(0);
        shard.invoke(ProcessId(0), o, FetchIncrement::fetch_inc());
        drop(merge);
        let stats = shard.finish();
        assert_eq!(stats.emitted, 0);
        assert_eq!(stats.flushed_partial_frames, 1);
        assert!(stats.disconnected);
        assert_eq!(stats.dropped_disconnected, 1);
    }

    #[test]
    fn shard_filters_malformed_events_before_numbering() {
        let (mut shards, mut merge) = sharded_recorder(1, 4, 16, None);
        let mut shard = shards.pop().unwrap();
        let o = ObjectId(0);
        shard.invoke(ProcessId(0), o, FetchIncrement::fetch_inc());
        // Double invoke and an orphan response: dropped *before* a sequence
        // number is burned, so the emitted stream is gapless and well-formed.
        shard.invoke(ProcessId(0), o, FetchIncrement::fetch_inc());
        shard.respond(ProcessId(1), o, Value::from(9i64));
        shard.respond(ProcessId(0), o, Value::from(0i64));
        let stats = shard.finish();
        assert_eq!(stats.dropped_malformed, 2);
        assert_eq!(stats.emitted, 2);
        let mut out = Vec::new();
        assert_eq!(merge.recv_sorted(&mut out, 16), 2);
        let seqs: Vec<u64> = out.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![0, 1], "no gaps from filtered events");
        assert!(History::from_events(out.into_iter().map(|(_, e)| e).collect()).is_well_formed());
    }

    #[test]
    fn streaming_without_retention_keeps_into_history_empty() {
        let (tx, rx) = channel::bounded(8);
        let o = ObjectId(0);
        let r = Recorder::with_sink(tx, false);
        r.invoke(ProcessId(0), o, FetchIncrement::fetch_inc());
        r.respond(ProcessId(0), o, Value::from(0i64));
        assert_eq!(r.len(), 2);
        assert!(r.into_history().is_empty());
        assert_eq!(std::iter::from_fn(|| rx.recv()).count(), 2);
    }
}
