//! Recording histories from real threads.

use evlin_history::{Event, History, ObjectId, ProcessId};
use evlin_spec::{Invocation, Value};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A concurrent event recorder.
///
/// Threads call [`Recorder::invoke`] right before starting an operation and
/// [`Recorder::respond`] right after obtaining its response.  Events receive
/// globally unique, monotonically increasing sequence numbers from an atomic
/// counter, and the final history orders events by that sequence number, so
/// the recorded real-time order is consistent with what each thread observed.
///
/// Recording costs one atomic increment plus one short critical section per
/// event; the experiments that measure raw throughput therefore also support
/// running with recording disabled.
#[derive(Debug, Default)]
pub struct Recorder {
    next: AtomicUsize,
    events: Mutex<Vec<(usize, Event)>>,
}

impl Recorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Recorder {
            next: AtomicUsize::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Records an invocation event by `process` on `object`.
    pub fn invoke(&self, process: ProcessId, object: ObjectId, invocation: Invocation) {
        let seq = self.next.fetch_add(1, Ordering::SeqCst);
        self.events
            .lock()
            .push((seq, Event::invoke(process, object, invocation)));
    }

    /// Records a response event by `process` on `object`.
    pub fn respond(&self, process: ProcessId, object: ObjectId, value: Value) {
        let seq = self.next.fetch_add(1, Ordering::SeqCst);
        self.events
            .lock()
            .push((seq, Event::respond(process, object, value)));
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Extracts the recorded history, ordered by sequence number.
    pub fn into_history(self) -> History {
        let mut events = self.events.into_inner();
        events.sort_by_key(|(seq, _)| *seq);
        History::from_events(events.into_iter().map(|(_, e)| e).collect())
    }

    /// Clones the recorded history without consuming the recorder.
    pub fn snapshot(&self) -> History {
        let mut events = self.events.lock().clone();
        events.sort_by_key(|(seq, _)| *seq);
        History::from_events(events.into_iter().map(|(_, e)| e).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_spec::FetchIncrement;
    use std::sync::Arc;

    #[test]
    fn records_in_sequence_order() {
        let r = Recorder::new();
        let o = ObjectId(0);
        r.invoke(ProcessId(0), o, FetchIncrement::fetch_inc());
        r.respond(ProcessId(0), o, Value::from(0i64));
        r.invoke(ProcessId(1), o, FetchIncrement::fetch_inc());
        r.respond(ProcessId(1), o, Value::from(1i64));
        assert_eq!(r.len(), 4);
        assert!(!r.is_empty());
        let h = r.into_history();
        assert!(h.is_well_formed());
        assert_eq!(h.complete_operations().len(), 2);
    }

    #[test]
    fn concurrent_recording_produces_well_formed_histories() {
        let r = Arc::new(Recorder::new());
        let o = ObjectId(0);
        std::thread::scope(|s| {
            for t in 0..4usize {
                let r = Arc::clone(&r);
                s.spawn(move || {
                    for k in 0..50i64 {
                        r.invoke(ProcessId(t), o, FetchIncrement::fetch_inc());
                        r.respond(ProcessId(t), o, Value::from(k));
                    }
                });
            }
        });
        let h = Arc::try_unwrap(r)
            .expect("all threads joined")
            .into_history();
        assert_eq!(h.len(), 4 * 50 * 2);
        assert!(h.is_well_formed());
    }

    #[test]
    fn snapshot_does_not_consume() {
        let r = Recorder::new();
        let o = ObjectId(0);
        r.invoke(ProcessId(0), o, FetchIncrement::fetch_inc());
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        r.respond(ProcessId(0), o, Value::from(0i64));
        assert_eq!(r.snapshot().len(), 2);
        assert!(r.snapshot().is_well_formed());
    }

    #[test]
    fn empty_recorder_yields_empty_history() {
        let r = Recorder::new();
        assert!(r.is_empty());
        assert!(r.into_history().is_empty());
    }
}
