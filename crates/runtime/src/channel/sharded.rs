//! Per-producer, frame-batched rings with a k-way sequence merge.
//!
//! The single SPSC [`crate::channel`] pays one lock round and one condvar
//! notification *per event*; at millions of events per second that traffic
//! (see [`super::ChannelStats`]) dominates the monitored runtime.  This
//! module replaces it with the sharded transport of the pipelined ingest
//! path:
//!
//! * every producer owns a [`FrameSender`] writing into its **own** bounded
//!   ring, so producers never contend with each other — only with the
//!   consumer draining their ring;
//! * events are shipped in fixed-capacity [`Frame`]s whose buffers are
//!   recycled through a shared [`FramePool`], so the steady state allocates
//!   nothing and pays one channel round trip per *frame*;
//! * each item carries the producer-assigned global sequence number, and a
//!   [`FrameMerge`] on the consumer side k-way-merges the per-shard streams
//!   back into global sequence order — replacing the recorder's per-event
//!   reorder buffer (a `BTreeMap` insert/remove per event) with an O(k)
//!   head comparison per *run* of consecutive items;
//! * every frame carries a fingerprint of its sequence run
//!   (`evlin_sim::zobrist::fold_words`), verified on arrival, so transport
//!   bugs surface as counted mismatches instead of silent misorderings —
//!   the same discipline as the stabilizing data-link constructions for
//!   non-FIFO channels, where sequence tags are what let the receiver
//!   reconstruct the sender's order.
//!
//! Deadlock-freedom: a producer blocks only on its **own** full ring, and
//! the merge blocks only on an **empty open** ring; draining one ring never
//! requires a different producer to make progress, so as long as every
//! producer eventually flushes or hangs up, the merge terminates.
//!
//! Transient faults compose at *frame* granularity: pass a
//! [`FaultPlan`] and each shard's ring runs behind
//! its own seeded [`FaultySender`]`<Frame<T>>` that loses, duplicates or
//! adjacently reorders whole frames, with the usual conservation-checked
//! stats (`delivered + lost == frames + duplicated`, in frames).  The merge
//! tolerates the resulting per-shard disorder — misordered frames are
//! counted and emitted by head sequence anyway — and the monitor's
//! well-formedness filter downstream decides what survives, exactly as on
//! the per-event faulty path.

use crate::channel::{self, Receiver, SendError, Sender};
use crate::fault::{ChannelFaultStats, FaultPlan, FaultySender};
use evlin_sim::zobrist;
use parking_lot::Mutex;
use std::sync::Arc;

/// Upper bound on buffers parked in a [`FramePool`]; beyond it, spent
/// buffers are simply dropped (the pool is an allocation damper, not a leak).
const POOL_LIMIT: usize = 64;

/// One batch of sequence-stamped items from a single producer.
///
/// `fingerprint` covers the sequence run (seeded with the producer index) so
/// the receiving side can verify the frame arrived intact and attributable.
pub struct Frame<T> {
    /// Index of the producing shard.
    pub producer: usize,
    /// The `(global sequence number, item)` run, in send order.
    pub items: Vec<(u64, T)>,
    /// `fold_words(producer, sequence numbers)` at send time.
    pub fingerprint: u64,
}

impl<T: Clone> Clone for Frame<T> {
    fn clone(&self) -> Self {
        Frame {
            producer: self.producer,
            items: self.items.clone(),
            fingerprint: self.fingerprint,
        }
    }
}

impl<T> Frame<T> {
    /// Computes the fingerprint the frame *should* carry given its contents.
    fn expected_fingerprint(&self, scratch: &mut Vec<u64>) -> u64 {
        scratch.clear();
        scratch.extend(self.items.iter().map(|(seq, _)| *seq));
        zobrist::fold_words(self.producer as u64, scratch)
    }
}

/// A shared pool of spent frame buffers, so the steady-state path reuses
/// allocations: the merge returns drained buffers here and every
/// [`FrameSender`] draws its next buffer from the same pool.
pub struct FramePool<T> {
    bufs: Arc<Mutex<Vec<FrameBuf<T>>>>,
}

/// One frame's backing storage: `(sequence, item)` pairs in push order.
type FrameBuf<T> = Vec<(u64, T)>;

impl<T> Clone for FramePool<T> {
    fn clone(&self) -> Self {
        FramePool {
            bufs: Arc::clone(&self.bufs),
        }
    }
}

impl<T> Default for FramePool<T> {
    fn default() -> Self {
        FramePool {
            bufs: Arc::new(Mutex::new(Vec::new())),
        }
    }
}

impl<T> FramePool<T> {
    /// Takes a cleared buffer from the pool, or allocates one.
    fn get(&self, capacity: usize) -> Vec<(u64, T)> {
        self.bufs
            .lock()
            .pop()
            .unwrap_or_else(|| Vec::with_capacity(capacity))
    }

    /// Returns a spent buffer (cleared here) for reuse.
    fn put(&self, mut buf: Vec<(u64, T)>) {
        buf.clear();
        let mut bufs = self.bufs.lock();
        if bufs.len() < POOL_LIMIT {
            bufs.push(buf);
        }
    }
}

/// Counters for one [`FrameSender`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FrameSenderStats {
    /// Frames handed to the link (including frames the fault plan then lost).
    pub frames_sent: usize,
    /// Items inside those frames.
    pub events_sent: usize,
    /// Frames flushed below capacity (the stream tail, or explicit flushes).
    pub partial_frames: usize,
    /// Items swallowed because the ring's receiver had already hung up.
    pub dropped_disconnected: usize,
    /// Whether the ring's receiver hung up before the stream ended.
    pub disconnected: bool,
}

/// The per-shard link: the ring's sender, bare or behind the frame-level
/// fault injector.
enum FrameSink<T: Clone> {
    Clean(Sender<Frame<T>>),
    Faulty(FaultySender<Frame<T>>),
}

/// The producer half of one shard: accumulates sequence-stamped items into a
/// pooled frame and ships the frame when full (or on [`FrameSender::flush`]
/// / drop).  Not `Sync` by design — one producer thread per shard is the
/// whole point.
pub struct FrameSender<T: Clone> {
    sink: FrameSink<T>,
    pool: FramePool<T>,
    producer: usize,
    frame_capacity: usize,
    buf: Vec<(u64, T)>,
    seq_scratch: Vec<u64>,
    stats: FrameSenderStats,
}

impl<T: Clone> FrameSender<T> {
    /// Appends one sequence-stamped item, shipping the frame if it is full.
    /// Blocks (back-pressure) only while this shard's own ring is full.
    pub fn push(&mut self, seq: u64, item: T) {
        self.buf.push((seq, item));
        if self.buf.len() >= self.frame_capacity {
            self.flush();
        }
    }

    /// Ships the current frame even if partially filled.  A partial frame is
    /// counted in [`FrameSenderStats::partial_frames`]; a hung-up ring
    /// swallows (and counts) the items instead of panicking, so flushing
    /// from `Drop` is always safe — and the flush happens *before* the
    /// disconnect-swallowing path, so a live receiver always gets the tail.
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        if self.buf.len() < self.frame_capacity {
            self.stats.partial_frames += 1;
        }
        let items = std::mem::replace(&mut self.buf, self.pool.get(self.frame_capacity));
        let events = items.len();
        let mut frame = Frame {
            producer: self.producer,
            items,
            fingerprint: 0,
        };
        frame.fingerprint = frame.expected_fingerprint(&mut self.seq_scratch);
        let result = match &mut self.sink {
            FrameSink::Clean(sender) => sender.send(frame),
            FrameSink::Faulty(faulty) => faulty.send(frame),
        };
        match result {
            Ok(()) => {
                self.stats.frames_sent += 1;
                self.stats.events_sent += events;
            }
            Err(SendError::Disconnected(frame)) => {
                self.stats.disconnected = true;
                self.stats.dropped_disconnected += frame.items.len();
                self.pool.put(frame.items);
            }
        }
    }

    /// Items buffered locally, not yet shipped into the ring.  Together with
    /// [`FrameSender::try_flush`] this is the back-pressure *probe*: a
    /// caller that must never block (a service connection handler shedding
    /// load) tries a non-blocking flush and measures what stayed behind.
    pub fn buffered_len(&self) -> usize {
        self.buf.len()
    }

    /// Ships the buffered frame only if the ring can take it right now.
    /// Returns `true` when the buffer is empty afterwards (shipped, or
    /// nothing to ship); `false` means the ring was full and the items
    /// remain buffered — nothing blocks, nothing is lost.  Only the clean
    /// sink supports this; a fault-injected link reports `false` rather
    /// than bypass its schedule.
    pub fn try_flush(&mut self) -> bool {
        if self.buf.is_empty() {
            return true;
        }
        let FrameSink::Clean(sender) = &self.sink else {
            return false;
        };
        if self.buf.len() < self.frame_capacity {
            self.stats.partial_frames += 1;
        }
        let items = std::mem::replace(&mut self.buf, self.pool.get(self.frame_capacity));
        let events = items.len();
        let mut frame = Frame {
            producer: self.producer,
            items,
            fingerprint: 0,
        };
        frame.fingerprint = frame.expected_fingerprint(&mut self.seq_scratch);
        match sender.try_send(frame) {
            Ok(()) => {
                self.stats.frames_sent += 1;
                self.stats.events_sent += events;
                true
            }
            Err(channel::TrySendError::Full(frame)) => {
                // Undo: the items go back to being the local buffer.  The
                // partial-frame count stays — the *attempt* was partial —
                // which at worst double-counts a retried flush.
                let spent = std::mem::replace(&mut self.buf, frame.items);
                self.pool.put(spent);
                false
            }
            Err(channel::TrySendError::Disconnected(frame)) => {
                self.stats.disconnected = true;
                self.stats.dropped_disconnected += frame.items.len();
                self.pool.put(frame.items);
                true
            }
        }
    }

    /// Appends one sequence-stamped item *without* ever shipping, even past
    /// `frame_capacity` — the frame rings accept frames of any size.  The
    /// never-block companion to [`FrameSender::try_flush`]: a caller that
    /// bounds `buffered_len` itself (shedding load above a threshold) can
    /// buffer-then-try-flush and provably never wait on the ring.
    pub fn push_buffered(&mut self, seq: u64, item: T) {
        self.buf.push((seq, item));
    }

    /// Drops the locally buffered items without shipping them.  For callers
    /// whose items are durable elsewhere (a journal) and who must tear a
    /// sender down without touching a possibly-stalled ring: after this,
    /// dropping the sender cannot block (the `Drop` flush sees an empty
    /// buffer).
    pub fn discard_buffered(&mut self) {
        let spent = std::mem::take(&mut self.buf);
        self.pool.put(spent);
    }

    /// This sender's counters so far.
    pub fn stats(&self) -> FrameSenderStats {
        self.stats
    }

    /// Frame-granularity fault counters, if this shard runs a faulty link.
    pub fn fault_stats(&self) -> Option<ChannelFaultStats> {
        match &self.sink {
            FrameSink::Clean(_) => None,
            FrameSink::Faulty(faulty) => Some(faulty.stats()),
        }
    }
}

impl<T: Clone> Drop for FrameSender<T> {
    fn drop(&mut self) {
        // Partial tail first, then the sink drops and the ring sees EOF.
        self.flush();
    }
}

/// Counters for a [`FrameMerge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MergeStats {
    /// Frames received across all shards.
    pub frames: usize,
    /// Items inside those frames.
    pub events: usize,
    /// Frames whose first sequence number did not follow the shard's
    /// previous frame (fault-injected reordering/duplication; always 0 on a
    /// clean transport).
    pub misordered_frames: usize,
    /// Frames whose fingerprint did not match their contents (transport
    /// corruption; always 0 even under the frame-granularity fault plans,
    /// which move whole frames but never rewrite them).
    pub fingerprint_mismatches: usize,
}

struct ShardSource<T> {
    rx: Receiver<Frame<T>>,
    /// Buffered frame contents, **reversed** so the head of the stream is
    /// `buf.last()` and emission is an O(1) `pop` — no front-drains, and the
    /// buffer goes back to the pool intact.
    buf: Vec<(u64, T)>,
    open: bool,
    last_seq: Option<u64>,
}

/// The consumer half: k-way-merges the per-shard frame streams back into
/// global sequence order.  Replaces the per-event reorder buffer of the
/// single-channel path.
pub struct FrameMerge<T> {
    shards: Vec<ShardSource<T>>,
    pool: FramePool<T>,
    seq_scratch: Vec<u64>,
    stats: MergeStats,
}

impl<T> FrameMerge<T> {
    /// Appends the next run of globally sequence-sorted items to `out`, up
    /// to `max`, blocking while an open shard's head is unknown (strict
    /// order requires it; see the module notes on deadlock-freedom).
    /// Returns how many items were appended; `0` means every shard hung up
    /// and drained.
    ///
    /// On a clean transport the emitted sequence is exactly the producers'
    /// global numbering.  Under frame faults the per-shard streams may be
    /// disordered; the merge still emits by smallest buffered head, which
    /// bounds the disorder to what the faults injected.
    pub fn recv_sorted(&mut self, out: &mut Vec<(u64, T)>, max: usize) -> usize {
        let max = max.max(1);
        let start = out.len();
        while out.len() - start < max {
            // Make every open shard's head known (blocking on its ring).
            let FrameMerge {
                shards,
                pool,
                seq_scratch,
                stats,
            } = self;
            for shard in shards.iter_mut() {
                while shard.open && shard.buf.is_empty() {
                    match shard.rx.recv() {
                        Some(frame) => install(shard, frame, pool, seq_scratch, stats),
                        None => shard.open = false,
                    }
                }
            }
            // Find the smallest and second-smallest heads.
            let mut min_shard: Option<usize> = None;
            let mut min_seq = u64::MAX;
            let mut second_seq = u64::MAX;
            for (i, shard) in self.shards.iter().enumerate() {
                if let Some((seq, _)) = shard.buf.last() {
                    if *seq < min_seq {
                        second_seq = min_seq;
                        min_seq = *seq;
                        min_shard = Some(i);
                    } else if *seq < second_seq {
                        second_seq = *seq;
                    }
                }
            }
            let Some(i) = min_shard else {
                break; // every shard closed and drained
            };
            // Emit the whole run that stays below every other head — one
            // comparison per item, no re-scans of the shard set.
            let shard = &mut self.shards[i];
            while out.len() - start < max {
                match shard.buf.last() {
                    Some((seq, _)) if *seq <= second_seq => {
                        out.push(shard.buf.pop().expect("head exists"));
                    }
                    _ => break,
                }
            }
            if shard.buf.is_empty() {
                let spent = std::mem::take(&mut shard.buf);
                self.pool.put(spent);
            }
        }
        out.len() - start
    }

    /// The merge-side counters so far.
    pub fn stats(&self) -> MergeStats {
        self.stats
    }
}

/// Buffers one arrived frame into its shard (verifying the fingerprint and
/// the shard-local ordering) and recycles the shard's spent buffer.
fn install<T>(
    shard: &mut ShardSource<T>,
    frame: Frame<T>,
    pool: &FramePool<T>,
    seq_scratch: &mut Vec<u64>,
    stats: &mut MergeStats,
) {
    stats.frames += 1;
    stats.events += frame.items.len();
    if frame.expected_fingerprint(seq_scratch) != frame.fingerprint {
        stats.fingerprint_mismatches += 1;
    }
    if let (Some(last), Some((first, _))) = (shard.last_seq, frame.items.first()) {
        if *first <= last {
            stats.misordered_frames += 1;
        }
    }
    if let Some((seq, _)) = frame.items.last() {
        shard.last_seq = Some(*seq);
    }
    let mut items = frame.items;
    items.reverse();
    let spent = std::mem::replace(&mut shard.buf, items);
    pool.put(spent);
}

/// Builds a sharded frame transport: one [`FrameSender`] per producer, each
/// over its own ring holding up to `ring_frames` in-flight frames of
/// `frame_capacity` items, all fanned into one [`FrameMerge`].  With a
/// `plan`, every shard's ring runs behind its own seed-derived
/// ([`FaultPlan::for_shard`]) frame-granularity fault injector.
pub fn sharded<T: Clone>(
    producers: usize,
    ring_frames: usize,
    frame_capacity: usize,
    plan: Option<FaultPlan>,
) -> (Vec<FrameSender<T>>, FrameMerge<T>) {
    let producers = producers.max(1);
    let pool = FramePool::default();
    let mut senders = Vec::with_capacity(producers);
    let mut shards = Vec::with_capacity(producers);
    for producer in 0..producers {
        let (tx, rx) = channel::bounded(ring_frames.max(1));
        let sink = match plan {
            Some(plan) => FrameSink::Faulty(FaultySender::new(tx, plan.for_shard(producer))),
            None => FrameSink::Clean(tx),
        };
        senders.push(FrameSender {
            sink,
            pool: pool.clone(),
            producer,
            frame_capacity: frame_capacity.max(1),
            buf: pool.get(frame_capacity.max(1)),
            seq_scratch: Vec::new(),
            stats: FrameSenderStats::default(),
        });
        shards.push(ShardSource {
            rx,
            buf: Vec::new(),
            open: true,
            last_seq: None,
        });
    }
    (
        senders,
        FrameMerge {
            shards,
            pool,
            seq_scratch: Vec::new(),
            stats: MergeStats::default(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain<T: Clone>(merge: &mut FrameMerge<T>) -> Vec<(u64, T)> {
        let mut out = Vec::new();
        while merge.recv_sorted(&mut out, 1024) > 0 {}
        out
    }

    #[test]
    fn single_shard_round_trips_in_order() {
        let (mut senders, mut merge) = sharded::<usize>(1, 16, 8, None);
        let mut tx = senders.pop().unwrap();
        for seq in 0..100u64 {
            tx.push(seq, seq as usize);
        }
        let stats = tx.stats();
        assert_eq!(stats.frames_sent, 12, "100 items at capacity 8");
        drop(tx); // flushes the 4-item tail as a partial frame
        let out = drain(&mut merge);
        assert_eq!(
            out.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            (0..100).collect::<Vec<_>>()
        );
        let m = merge.stats();
        assert_eq!(m.frames, 13);
        assert_eq!(m.events, 100);
        assert_eq!(m.fingerprint_mismatches, 0);
        assert_eq!(m.misordered_frames, 0);
    }

    #[test]
    fn partial_tail_is_flushed_and_counted() {
        let (mut senders, mut merge) = sharded::<u8>(1, 4, 16, None);
        let mut tx = senders.pop().unwrap();
        for seq in 0..5u64 {
            tx.push(seq, 0);
        }
        assert_eq!(
            tx.stats().frames_sent,
            0,
            "below capacity: nothing sent yet"
        );
        tx.flush();
        let stats = tx.stats();
        assert_eq!(stats.frames_sent, 1);
        assert_eq!(stats.partial_frames, 1);
        assert_eq!(stats.events_sent, 5);
        drop(tx);
        assert_eq!(drain(&mut merge).len(), 5);
    }

    #[test]
    fn merge_restores_global_order_across_shards() {
        // Interleave a global numbering round-robin across 3 shards; the
        // merge must put it back together exactly.
        let (mut senders, mut merge) = sharded::<usize>(3, 32, 4, None);
        for seq in 0..99u64 {
            senders[(seq % 3) as usize].push(seq, seq as usize);
        }
        drop(senders);
        let out = drain(&mut merge);
        assert_eq!(
            out.iter().map(|(s, _)| *s).collect::<Vec<_>>(),
            (0..99).collect::<Vec<_>>()
        );
        assert_eq!(merge.stats().misordered_frames, 0);
        assert_eq!(merge.stats().fingerprint_mismatches, 0);
    }

    #[test]
    fn threaded_producers_with_tiny_rings_do_not_deadlock() {
        // Producers block only on their own full rings, the merge blocks
        // only on empty open rings: saturating 1-frame rings from 4 threads
        // must still terminate with the full sorted stream.
        let (senders, mut merge) = sharded::<usize>(4, 1, 4, None);
        std::thread::scope(|s| {
            for (t, mut tx) in senders.into_iter().enumerate() {
                s.spawn(move || {
                    for k in 0..250u64 {
                        tx.push((t as u64) * 250 + k, t);
                    }
                });
            }
            let out = drain(&mut merge);
            assert_eq!(out.len(), 1000);
            assert!(out.windows(2).all(|w| w[0].0 < w[1].0), "globally sorted");
        });
    }

    #[test]
    fn frame_faults_conserve_frames() {
        let (mut senders, mut merge) = sharded::<usize>(
            2,
            64,
            4,
            Some(FaultPlan {
                seed: 42,
                lose: 128,
                duplicate: 128,
                reorder: 128,
            }),
        );
        for seq in 0..400u64 {
            senders[(seq % 2) as usize].push(seq, seq as usize);
        }
        let mut emitted_frames = 0usize;
        let mut faults = ChannelFaultStats::default();
        for tx in &mut senders {
            tx.flush();
            emitted_frames += tx.stats().frames_sent;
            let f = tx.fault_stats().expect("faulty plan");
            faults.delivered += f.delivered;
            faults.lost += f.lost;
            faults.duplicated += f.duplicated;
            faults.reordered += f.reordered;
        }
        drop(senders);
        let out = drain(&mut merge);
        // Conservation, in frames: every emitted frame was delivered, lost,
        // or delivered twice.  (Drop-time flush of a held frame is part of
        // `delivered`; re-read the totals only after the senders are gone —
        // so assert against the merge side, which saw the final stream.)
        let m = merge.stats();
        assert!(faults.lost > 0 && faults.duplicated > 0 && faults.reordered > 0);
        assert!(m.frames >= emitted_frames - faults.lost);
        assert_eq!(out.len(), m.events);
        assert_eq!(
            m.fingerprint_mismatches, 0,
            "faults move frames, never corrupt them"
        );
        assert!(
            m.misordered_frames > 0,
            "reordering must be visible to the merge"
        );
    }

    #[test]
    fn faults_at_frame_granularity_are_seed_deterministic() {
        let run = |seed: u64| {
            let (mut senders, mut merge) = sharded::<usize>(
                2,
                64,
                4,
                Some(FaultPlan {
                    seed,
                    lose: 128,
                    duplicate: 128,
                    reorder: 128,
                }),
            );
            for seq in 0..200u64 {
                senders[(seq % 2) as usize].push(seq, 0);
            }
            drop(senders);
            let out: Vec<u64> = drain(&mut merge).into_iter().map(|(s, _)| s).collect();
            (out, merge.stats())
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).0, run(8).0);
    }

    #[test]
    fn try_flush_never_blocks_and_retains_items_on_a_full_ring() {
        let (mut senders, mut merge) = sharded::<usize>(1, 1, 2, None);
        let mut tx = senders.pop().unwrap();
        // Fill the 1-frame ring...
        tx.push(0, 0);
        tx.push(1, 1);
        assert_eq!(tx.stats().frames_sent, 1);
        // ...then a non-blocking flush of the next batch must fail softly.
        tx.push(2, 2);
        assert!(!tx.try_flush(), "ring is full");
        assert_eq!(tx.buffered_len(), 1, "items retained, not dropped");
        // Drain the ring and the retry succeeds.
        let mut out = Vec::new();
        assert_eq!(merge.recv_sorted(&mut out, 2), 2);
        assert!(tx.try_flush());
        assert_eq!(tx.buffered_len(), 0);
        drop(tx);
        assert_eq!(merge.recv_sorted(&mut out, 16), 1);
        assert_eq!(out.iter().map(|(s, _)| *s).collect::<Vec<_>>(), [0, 1, 2]);
    }

    #[test]
    fn hung_up_ring_swallows_and_counts_instead_of_panicking() {
        let (mut senders, merge) = sharded::<usize>(1, 4, 4, None);
        let mut tx = senders.pop().unwrap();
        tx.push(0, 0);
        drop(merge); // the consumer died mid-run
        tx.push(1, 1);
        tx.push(2, 2);
        tx.push(3, 3); // frame full: ships into the dead ring
        let stats = tx.stats();
        assert!(stats.disconnected);
        assert_eq!(stats.dropped_disconnected, 4);
        tx.push(4, 4);
        drop(tx); // drop-time flush of the partial tail: quiet, counted
    }
}
