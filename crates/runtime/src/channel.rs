//! A small bounded SPSC channel for streaming recorded events.
//!
//! The live-monitoring pipeline is a single producer (the [`crate::Recorder`]
//! emitting events in sequence order) feeding a single consumer (the monitor
//! thread ingesting them into `evlin_checker::monitor::Monitor`).  The
//! channel is *bounded*: when the monitor falls behind, `send` blocks, which
//! back-pressures the recording threads instead of letting the event queue
//! grow without bound — the whole point of the online monitor is that memory
//! stays independent of history length.
//!
//! Built on `std::sync::{Mutex, Condvar}` only (the workspace has no external
//! concurrency dependencies).  The implementation is safe for any number of
//! senders/receivers; "SPSC" describes the intended and tested usage, not an
//! unsafe fast path.
//!
//! Every channel keeps [`ChannelStats`] — items sent, times a caller parked,
//! condvar notifications issued — so benchmarks can attribute exactly where
//! a per-event path spends its lock and wake traffic (the motivation for the
//! batch APIs [`Sender::send_batch`] / [`Receiver::recv_many`] and for the
//! per-producer frame transport in [`sharded`], which amortize all three per
//! frame instead of per event).

pub mod sharded;

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`]: the item could not be delivered and is
/// handed back to the caller.
///
/// Shutdown must be a *value*, not a panic or a hang: the monitor thread may
/// exit (dropping its [`Receiver`]) while recording threads are blocked in
/// `send` on a full channel, and those threads must wake up and observe the
/// disconnect deterministically.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum SendError<T> {
    /// Every receiver hung up; the unsent item is returned.
    Disconnected(T),
}

impl<T> SendError<T> {
    /// Recovers the item that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            SendError::Disconnected(item) => item,
        }
    }
}

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError::Disconnected(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a channel whose receivers all hung up")
    }
}

/// Error returned by [`Receiver::try_recv`], distinguishing "nothing yet"
/// from "nothing ever again".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty but senders are still alive.
    Empty,
    /// The channel is empty and every sender hung up.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`]: the deadline-bounded twin
/// of [`TryRecvError`], where `Timeout` means the channel stayed empty (with
/// live senders) for the whole wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No item arrived before the deadline; senders are still alive.
    Timeout,
    /// The channel is empty and every sender hung up.
    Disconnected,
}

/// Error returned by [`Sender::try_send`]: the non-blocking twin of
/// [`SendError`], additionally distinguishing a full channel.  Disconnection
/// wins over fullness, matching [`Sender::send`]'s check order.
#[derive(Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The channel is full; the undelivered item is returned.
    Full(T),
    /// Every receiver hung up; the undelivered item is returned.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the item that could not be sent.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(item) | TrySendError::Disconnected(item) => item,
        }
    }
}

impl<T> fmt::Debug for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => f.write_str("TrySendError::Full(..)"),
            TrySendError::Disconnected(_) => f.write_str("TrySendError::Disconnected(..)"),
        }
    }
}

/// Contention counters for one channel, shared by both halves.
///
/// The counters quantify exactly the per-event costs the frame transport
/// ([`sharded`]) amortizes: `sends` is lock acquisitions that enqueued
/// something, `blocked_waits` is how often a caller parked on a condvar
/// (sender on full, receiver on empty), and `wakeups` is how many condvar
/// notifications were issued.  A healthy batched pipeline shows `sends` and
/// `wakeups` growing per *frame* while the event count grows per *event*.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Items successfully enqueued (one per item, including batch members).
    pub sends: u64,
    /// Times a sender or receiver parked on a condvar.
    pub blocked_waits: u64,
    /// Condvar notifications issued (by sends, receives and batch flushes).
    pub wakeups: u64,
}

struct Shared<T> {
    queue: Mutex<Inner<T>>,
    /// Signalled when the queue gains an item or the sender hangs up.
    not_empty: Condvar,
    /// Signalled when the queue loses an item or the receiver hangs up.
    not_full: Condvar,
}

struct Inner<T> {
    items: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receivers: usize,
    stats: ChannelStats,
}

/// The sending half of a bounded channel (see [`bounded`]).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded channel (see [`bounded`]).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel with room for `capacity` in-flight items
/// (`capacity` is clamped to at least 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(Inner {
            items: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            senders: 1,
            receivers: 1,
            stats: ChannelStats::default(),
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends an item, blocking while the channel is full.
    ///
    /// Returns [`SendError::Disconnected`] (carrying the item back) as soon
    /// as every receiver has hung up — including when the hang-up happens
    /// *while this call is blocked* on a full channel: [`Receiver::drop`]
    /// signals `not_full`, so a blocked sender wakes, re-checks receiver
    /// liveness and returns the error instead of sleeping forever.
    pub fn send(&self, item: T) -> Result<(), SendError<T>> {
        let mut inner = self.shared.queue.lock().expect("channel mutex");
        loop {
            if inner.receivers == 0 {
                return Err(SendError::Disconnected(item));
            }
            if inner.items.len() < inner.capacity {
                inner.items.push_back(item);
                inner.stats.sends += 1;
                inner.stats.wakeups += 1;
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner.stats.blocked_waits += 1;
            inner = self.shared.not_full.wait(inner).expect("channel mutex");
        }
    }

    /// Sends without blocking: [`TrySendError::Full`] hands the item back on
    /// a full channel; disconnection is checked first and reported exactly
    /// like [`Sender::send`].
    pub fn try_send(&self, item: T) -> Result<(), TrySendError<T>> {
        let mut inner = self.shared.queue.lock().expect("channel mutex");
        if inner.receivers == 0 {
            return Err(TrySendError::Disconnected(item));
        }
        if inner.items.len() < inner.capacity {
            inner.items.push_back(item);
            inner.stats.sends += 1;
            inner.stats.wakeups += 1;
            self.shared.not_empty.notify_one();
            Ok(())
        } else {
            Err(TrySendError::Full(item))
        }
    }

    /// Sends a whole batch under a single lock acquisition per room-making
    /// round, notifying once per round instead of once per item.  Blocks
    /// (like [`Sender::send`]) whenever the channel fills mid-batch.
    ///
    /// On disconnect the *unsent suffix* is handed back in order — items
    /// already enqueued stay enqueued (drain-then-close delivers them), so
    /// `delivered + returned == batch` always holds.
    pub fn send_batch(&self, items: Vec<T>) -> Result<(), SendError<Vec<T>>> {
        let mut remaining: VecDeque<T> = items.into();
        let mut inner = self.shared.queue.lock().expect("channel mutex");
        loop {
            if inner.receivers == 0 {
                return Err(SendError::Disconnected(remaining.into()));
            }
            let mut pushed = false;
            while inner.items.len() < inner.capacity {
                match remaining.pop_front() {
                    Some(item) => {
                        inner.items.push_back(item);
                        inner.stats.sends += 1;
                        pushed = true;
                    }
                    None => break,
                }
            }
            if pushed {
                inner.stats.wakeups += 1;
                self.shared.not_empty.notify_one();
            }
            if remaining.is_empty() {
                return Ok(());
            }
            inner.stats.blocked_waits += 1;
            inner = self.shared.not_full.wait(inner).expect("channel mutex");
        }
    }

    /// This channel's contention counters so far.
    pub fn stats(&self) -> ChannelStats {
        self.shared.queue.lock().expect("channel mutex").stats
    }

    /// Items currently queued (a racy snapshot — only the sender-side can
    /// make it grow, so a single producer may use it to keep a reserve of
    /// free slots, the way the service's verdict plane holds seats for its
    /// final summaries).
    pub fn queued(&self) -> usize {
        self.shared.queue.lock().expect("channel mutex").items.len()
    }

    /// The channel's capacity.
    pub fn capacity(&self) -> usize {
        self.shared.queue.lock().expect("channel mutex").capacity
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().expect("channel mutex").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.queue.lock().expect("channel mutex");
        inner.senders -= 1;
        if inner.senders == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next item, blocking while the channel is empty.  Returns
    /// `None` once every sender has hung up and the queue is drained.
    pub fn recv(&self) -> Option<T> {
        let mut inner = self.shared.queue.lock().expect("channel mutex");
        loop {
            if let Some(item) = inner.items.pop_front() {
                inner.stats.wakeups += 1;
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if inner.senders == 0 {
                return None;
            }
            inner.stats.blocked_waits += 1;
            inner = self.shared.not_empty.wait(inner).expect("channel mutex");
        }
    }

    /// Receives up to `max` items into `out` (appending), blocking only
    /// while the channel is both empty and open.  Returns how many items
    /// were appended; `0` means every sender hung up and the queue is
    /// drained.  One lock round and one notification serve the whole run —
    /// the consumer-side half of the per-frame amortization.
    pub fn recv_many(&self, out: &mut Vec<T>, max: usize) -> usize {
        let max = max.max(1);
        let mut inner = self.shared.queue.lock().expect("channel mutex");
        loop {
            if !inner.items.is_empty() {
                let n = inner.items.len().min(max);
                out.extend(inner.items.drain(..n));
                inner.stats.wakeups += 1;
                // A run may free many slots: wake every blocked sender.
                self.shared.not_full.notify_all();
                return n;
            }
            if inner.senders == 0 {
                return 0;
            }
            inner.stats.blocked_waits += 1;
            inner = self.shared.not_empty.wait(inner).expect("channel mutex");
        }
    }

    /// Receives with a deadline: blocks at most `timeout` while the channel
    /// is empty and open.  Liveness watchdogs (the service's heartbeat
    /// loops) are the intended caller — a silent peer must yield
    /// [`RecvTimeoutError::Timeout`], never an indefinite park.  Queued
    /// items are still delivered before a disconnect is reported.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.shared.queue.lock().expect("channel mutex");
        loop {
            if let Some(item) = inner.items.pop_front() {
                inner.stats.wakeups += 1;
                self.shared.not_full.notify_one();
                return Ok(item);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            inner.stats.blocked_waits += 1;
            let (guard, wait) = self
                .shared
                .not_empty
                .wait_timeout(inner, remaining)
                .expect("channel mutex");
            inner = guard;
            if wait.timed_out() && inner.items.is_empty() && inner.senders > 0 {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// This channel's contention counters so far.
    pub fn stats(&self) -> ChannelStats {
        self.shared.queue.lock().expect("channel mutex").stats
    }

    /// Receives without blocking, distinguishing an empty channel
    /// ([`TryRecvError::Empty`]) from one whose senders all hung up
    /// ([`TryRecvError::Disconnected`]) — the same drain-then-close order
    /// as [`Receiver::recv`]: queued items are always delivered first.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = self.shared.queue.lock().expect("channel mutex");
        match inner.items.pop_front() {
            Some(item) => {
                inner.stats.wakeups += 1;
                self.shared.not_full.notify_one();
                Ok(item)
            }
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.queue.lock().expect("channel mutex");
        inner.receivers -= 1;
        if inner.receivers == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_arrive_in_order() {
        let (tx, rx) = bounded(4);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100usize {
                    tx.send(i).expect("receiver alive");
                }
            });
            for i in 0..100usize {
                assert_eq!(rx.recv(), Some(i));
            }
            assert_eq!(rx.recv(), None);
        });
    }

    #[test]
    fn bounded_capacity_backpressures_without_deadlock() {
        let (tx, rx) = bounded(1);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..1000usize {
                    tx.send(i).expect("receiver alive");
                }
            });
            let mut received = 0usize;
            while rx.recv().is_some() {
                received += 1;
            }
            assert_eq!(received, 1000);
        });
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded(2);
        drop(rx);
        let err = tx.send(7usize).expect_err("receiver is gone");
        assert_eq!(err, SendError::Disconnected(7));
        assert_eq!(err.into_inner(), 7);
    }

    #[test]
    fn try_recv_distinguishes_empty_from_disconnected() {
        let (tx, rx) = bounded(2);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(1usize).unwrap();
        tx.send(2usize).unwrap();
        drop(tx);
        // Drain-then-close: queued items always come out before the
        // disconnect is reported.
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.try_recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn recv_drains_queued_items_after_all_senders_drop() {
        let (tx, rx) = bounded(4);
        tx.send(1usize).unwrap();
        tx.send(2usize).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Some(1));
        assert_eq!(rx.recv(), Some(2));
        assert_eq!(rx.recv(), None);
        assert_eq!(rx.recv(), None, "closed stays closed");
    }

    #[test]
    fn receiver_drop_wakes_a_blocked_sender() {
        // Loom-style interleaving sweep of the shutdown race: a sender
        // saturating a capacity-1 channel is blocked in `send` (or about to
        // block) when the receiver hangs up after a varying number of
        // receives.  Every interleaving must end with the sender *returning*
        // `Disconnected` — never panicking, never sleeping forever on the
        // `not_full` condvar.
        for received_before_drop in 0..8usize {
            let (tx, rx) = bounded(1);
            let sender = std::thread::spawn(move || {
                let mut next = 0usize;
                loop {
                    match tx.send(next) {
                        Ok(()) => next += 1,
                        Err(SendError::Disconnected(item)) => return (next, item),
                    }
                }
            });
            for expect in 0..received_before_drop {
                assert_eq!(rx.recv(), Some(expect));
            }
            drop(rx);
            let (sent, returned) = sender.join().expect("sender must not panic");
            // The rejected item is exactly the one that failed to send.
            assert_eq!(returned, sent);
            assert!(sent >= received_before_drop);
        }
    }

    #[test]
    fn receiver_drop_returns_the_unsent_suffix_of_a_batch() {
        // The same interleaving sweep against `send_batch`: whatever number
        // of items the receiver consumes before hanging up, the sender gets
        // back exactly the unsent suffix — delivered + returned == batch, in
        // order, in every interleaving.
        for received_before_drop in 0..8usize {
            let (tx, rx) = bounded(1);
            let sender = std::thread::spawn(move || {
                let mut sent = Vec::new();
                let mut next = 0usize;
                loop {
                    let batch: Vec<usize> = (next..next + 3).collect();
                    next += 3;
                    match tx.send_batch(batch) {
                        Ok(()) => sent.extend(next - 3..next),
                        Err(SendError::Disconnected(rest)) => {
                            sent.extend((next - 3..next).take(3 - rest.len()));
                            return (sent, rest);
                        }
                    }
                }
            });
            let mut got = Vec::new();
            for _ in 0..received_before_drop {
                match rx.recv() {
                    Some(item) => got.push(item),
                    None => break,
                }
            }
            drop(rx);
            let (sent, rest) = sender.join().expect("sender must not panic");
            // Conservation: everything sent was either received or is still
            // queued (lost with the receiver), and the returned suffix picks
            // up exactly where the accepted prefix stopped.
            assert_eq!(got, sent[..got.len()].to_vec());
            if let Some(first_rejected) = rest.first() {
                assert_eq!(*first_rejected, sent.len());
            }
            assert!(rest.len() <= 3);
        }
    }

    #[test]
    fn recv_timeout_times_out_then_delivers_then_disconnects() {
        use std::time::Duration;
        let (tx, rx) = bounded(2);
        // Empty + live senders: a timeout, reported as such.
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(5usize).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(5));
        // An item arriving mid-wait wakes the receiver before the deadline.
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(20));
                tx.send(6usize).unwrap();
            });
            assert_eq!(rx.recv_timeout(Duration::from_secs(5)), Ok(6));
        });
        drop(tx);
        // Drain-then-close still holds under the deadline API.
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn try_send_distinguishes_full_from_disconnected() {
        let (tx, rx) = bounded(2);
        tx.try_send(1usize).unwrap();
        tx.try_send(2usize).unwrap();
        let err = tx.try_send(3usize).expect_err("channel is full");
        assert!(matches!(err, TrySendError::Full(3)));
        assert_eq!(err.into_inner(), 3);
        drop(rx);
        let err = tx.try_send(4usize).expect_err("receiver is gone");
        assert!(matches!(err, TrySendError::Disconnected(4)));
    }

    #[test]
    fn recv_many_drains_in_order_and_respects_max() {
        let (tx, rx) = bounded(8);
        tx.send_batch((0..6usize).collect()).unwrap();
        let mut out = Vec::new();
        assert_eq!(rx.recv_many(&mut out, 4), 4);
        assert_eq!(out, vec![0, 1, 2, 3]);
        drop(tx);
        // Drain-then-close, then EOF.
        assert_eq!(rx.recv_many(&mut out, 64), 2);
        assert_eq!(out, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(rx.recv_many(&mut out, 64), 0);
    }

    #[test]
    fn batch_apis_amortize_sends_and_wakeups() {
        let (tx, rx) = bounded(64);
        for i in 0..32usize {
            tx.send(i).unwrap();
        }
        let per_event = tx.stats();
        assert_eq!(per_event.sends, 32);
        assert_eq!(per_event.wakeups, 32, "per-event sends wake per event");
        let (tx, rx2) = bounded(64);
        drop(rx);
        tx.send_batch((0..32usize).collect()).unwrap();
        let batched = tx.stats();
        assert_eq!(batched.sends, 32, "sends still count items");
        assert_eq!(batched.wakeups, 1, "one notification serves the batch");
        assert_eq!(batched.blocked_waits, 0);
        let mut out = Vec::new();
        assert_eq!(rx2.recv_many(&mut out, 32), 32);
        assert_eq!(rx2.stats().wakeups, 2, "one more for the drain");
    }
}
