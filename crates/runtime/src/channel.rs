//! A small bounded SPSC channel for streaming recorded events.
//!
//! The live-monitoring pipeline is a single producer (the [`crate::Recorder`]
//! emitting events in sequence order) feeding a single consumer (the monitor
//! thread ingesting them into `evlin_checker::monitor::Monitor`).  The
//! channel is *bounded*: when the monitor falls behind, `send` blocks, which
//! back-pressures the recording threads instead of letting the event queue
//! grow without bound — the whole point of the online monitor is that memory
//! stays independent of history length.
//!
//! Built on `std::sync::{Mutex, Condvar}` only (the workspace has no external
//! concurrency dependencies).  The implementation is safe for any number of
//! senders/receivers; "SPSC" describes the intended and tested usage, not an
//! unsafe fast path.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

struct Shared<T> {
    queue: Mutex<Inner<T>>,
    /// Signalled when the queue gains an item or the sender hangs up.
    not_empty: Condvar,
    /// Signalled when the queue loses an item or the receiver hangs up.
    not_full: Condvar,
}

struct Inner<T> {
    items: VecDeque<T>,
    capacity: usize,
    senders: usize,
    receivers: usize,
}

/// The sending half of a bounded channel (see [`bounded`]).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half of a bounded channel (see [`bounded`]).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates a bounded channel with room for `capacity` in-flight items
/// (`capacity` is clamped to at least 1).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(Inner {
            items: VecDeque::with_capacity(capacity.max(1)),
            capacity: capacity.max(1),
            senders: 1,
            receivers: 1,
        }),
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends an item, blocking while the channel is full.  Returns the item
    /// back if the receiver has hung up.
    pub fn send(&self, item: T) -> Result<(), T> {
        let mut inner = self.shared.queue.lock().expect("channel mutex");
        loop {
            if inner.receivers == 0 {
                return Err(item);
            }
            if inner.items.len() < inner.capacity {
                inner.items.push_back(item);
                self.shared.not_empty.notify_one();
                return Ok(());
            }
            inner = self.shared.not_full.wait(inner).expect("channel mutex");
        }
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.queue.lock().expect("channel mutex").senders += 1;
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.queue.lock().expect("channel mutex");
        inner.senders -= 1;
        if inner.senders == 0 {
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next item, blocking while the channel is empty.  Returns
    /// `None` once every sender has hung up and the queue is drained.
    pub fn recv(&self) -> Option<T> {
        let mut inner = self.shared.queue.lock().expect("channel mutex");
        loop {
            if let Some(item) = inner.items.pop_front() {
                self.shared.not_full.notify_one();
                return Some(item);
            }
            if inner.senders == 0 {
                return None;
            }
            inner = self.shared.not_empty.wait(inner).expect("channel mutex");
        }
    }

    /// Receives without blocking; `None` means "currently empty", which is
    /// indistinguishable here from "closed" — use [`Receiver::recv`] for
    /// shutdown-aware draining.
    pub fn try_recv(&self) -> Option<T> {
        let mut inner = self.shared.queue.lock().expect("channel mutex");
        let item = inner.items.pop_front();
        if item.is_some() {
            self.shared.not_full.notify_one();
        }
        item
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.shared.queue.lock().expect("channel mutex");
        inner.receivers -= 1;
        if inner.receivers == 0 {
            self.shared.not_full.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn items_arrive_in_order() {
        let (tx, rx) = bounded(4);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..100usize {
                    tx.send(i).expect("receiver alive");
                }
            });
            for i in 0..100usize {
                assert_eq!(rx.recv(), Some(i));
            }
            assert_eq!(rx.recv(), None);
        });
    }

    #[test]
    fn bounded_capacity_backpressures_without_deadlock() {
        let (tx, rx) = bounded(1);
        std::thread::scope(|s| {
            s.spawn(move || {
                for i in 0..1000usize {
                    tx.send(i).expect("receiver alive");
                }
            });
            let mut received = 0usize;
            while rx.recv().is_some() {
                received += 1;
            }
            assert_eq!(received, 1000);
        });
    }

    #[test]
    fn send_fails_after_receiver_drops() {
        let (tx, rx) = bounded(2);
        drop(rx);
        assert_eq!(tx.send(7usize), Err(7));
    }

    #[test]
    fn try_recv_is_non_blocking() {
        let (tx, rx) = bounded(2);
        assert_eq!(rx.try_recv(), None);
        tx.send(1usize).unwrap();
        assert_eq!(rx.try_recv(), Some(1));
    }
}
