//! Multi-threaded counters: linearizable and eventually consistent.

use std::sync::atomic::{AtomicI64, Ordering};

/// A shared counter usable from many threads.
///
/// `fetch_inc` is the operation the paper's introduction discusses: add one
/// and learn a value of the counter.  For the linearizable implementations
/// the returned value is exact; for the eventually consistent one it may be
/// temporarily stale (lower than the true count), but every increment is
/// eventually reflected in [`ConcurrentCounter::exact_total`].
pub trait ConcurrentCounter: Send + Sync {
    /// Adds one to the counter on behalf of `thread` and returns a value of
    /// the counter before the increment (exact for linearizable
    /// implementations, possibly stale otherwise).
    fn fetch_inc(&self, thread: usize) -> i64;

    /// The exact number of increments applied so far, computed with full
    /// synchronization (used to verify convergence after quiescence).
    fn exact_total(&self) -> i64;

    /// A short human-readable name.
    fn name(&self) -> &'static str;
}

/// The introduction's baseline: a lock-free fetch&increment built from a
/// compare&swap retry loop.
#[derive(Debug, Default)]
pub struct CasCounter {
    value: AtomicI64,
}

impl CasCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        CasCounter {
            value: AtomicI64::new(0),
        }
    }
}

impl ConcurrentCounter for CasCounter {
    fn fetch_inc(&self, _thread: usize) -> i64 {
        let mut current = self.value.load(Ordering::Acquire);
        loop {
            match self.value.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return current,
                Err(actual) => current = actual,
            }
        }
    }

    fn exact_total(&self) -> i64 {
        self.value.load(Ordering::SeqCst)
    }

    fn name(&self) -> &'static str {
        "cas-loop"
    }
}

/// The hardware primitive: `fetch_add` (linearizable, no retry loop).
#[derive(Debug, Default)]
pub struct FetchAddCounter {
    value: AtomicI64,
}

impl FetchAddCounter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        FetchAddCounter {
            value: AtomicI64::new(0),
        }
    }
}

impl ConcurrentCounter for FetchAddCounter {
    fn fetch_inc(&self, _thread: usize) -> i64 {
        self.value.fetch_add(1, Ordering::AcqRel)
    }

    fn exact_total(&self) -> i64 {
        self.value.load(Ordering::SeqCst)
    }

    fn name(&self) -> &'static str {
        "fetch-add"
    }
}

/// An eventually consistent sharded counter.
///
/// Each thread owns a shard and increments it without any cross-thread
/// synchronization beyond the shard's own atomic.  A `fetch_inc` returns the
/// thread's *cached* view of the other shards plus its own exact count; the
/// cache is refreshed only every `refresh_interval` operations, so returned
/// values can be stale (lower than the true count) in between — exactly the
/// "temporarily inconsistent but eventually counted" counter the paper's
/// introduction motivates.  After quiescence, [`ShardedCounter::exact_total`]
/// returns the true total, i.e. no increment is ever lost.
#[derive(Debug)]
pub struct ShardedCounter {
    shards: Vec<CachePadded>,
    refresh_interval: u64,
}

/// One shard plus the owning thread's cached view, padded to reduce false
/// sharing.
#[derive(Debug, Default)]
struct CachePadded {
    own: AtomicI64,
    cached_others: AtomicI64,
    ops_since_refresh: AtomicI64,
    _pad: [u64; 12],
}

impl ShardedCounter {
    /// Creates a sharded counter for `threads` threads that refreshes each
    /// thread's view of the other shards every `refresh_interval` operations.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or `refresh_interval` is zero.
    pub fn new(threads: usize, refresh_interval: u64) -> Self {
        assert!(threads > 0, "at least one thread is required");
        assert!(refresh_interval > 0, "refresh interval must be positive");
        ShardedCounter {
            shards: (0..threads).map(|_| CachePadded::default()).collect(),
            refresh_interval: refresh_interval as i64 as u64,
        }
    }

    fn sum_others(&self, thread: usize) -> i64 {
        self.shards
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != thread)
            .map(|(_, s)| s.own.load(Ordering::Acquire))
            .sum()
    }

    /// The number of threads (shards).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }
}

impl ConcurrentCounter for ShardedCounter {
    fn fetch_inc(&self, thread: usize) -> i64 {
        let shard = &self.shards[thread];
        let own_before = shard.own.fetch_add(1, Ordering::AcqRel);
        let ops = shard.ops_since_refresh.fetch_add(1, Ordering::Relaxed);
        if ops % self.refresh_interval as i64 == 0 {
            // Periodic refresh: read the other shards and cache the sum.
            let others = self.sum_others(thread);
            shard.cached_others.store(others, Ordering::Release);
        }
        shard.cached_others.load(Ordering::Acquire) + own_before
    }

    fn exact_total(&self) -> i64 {
        self.shards
            .iter()
            .map(|s| s.own.load(Ordering::SeqCst))
            .sum()
    }

    fn name(&self) -> &'static str {
        "sharded-eventual"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn hammer(counter: &dyn ConcurrentCounter, threads: usize, ops: usize) -> Vec<i64> {
        let results: Vec<parking_lot::Mutex<Vec<i64>>> = (0..threads)
            .map(|_| parking_lot::Mutex::new(Vec::new()))
            .collect();
        std::thread::scope(|s| {
            for t in 0..threads {
                let results = &results;
                s.spawn(move || {
                    let mut local = Vec::with_capacity(ops);
                    for _ in 0..ops {
                        local.push(counter.fetch_inc(t));
                    }
                    *results[t].lock() = local;
                });
            }
        });
        results.into_iter().flat_map(|m| m.into_inner()).collect()
    }

    #[test]
    fn cas_counter_returns_distinct_values() {
        let c = CasCounter::new();
        let mut values = hammer(&c, 4, 500);
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 2000, "every fetch_inc must get a unique slot");
        assert_eq!(c.exact_total(), 2000);
        assert_eq!(c.name(), "cas-loop");
    }

    #[test]
    fn fetch_add_counter_returns_distinct_values() {
        let c = FetchAddCounter::new();
        let mut values = hammer(&c, 4, 500);
        values.sort_unstable();
        values.dedup();
        assert_eq!(values.len(), 2000);
        assert_eq!(c.exact_total(), 2000);
        assert_eq!(c.name(), "fetch-add");
    }

    #[test]
    fn sharded_counter_never_loses_increments() {
        let c = ShardedCounter::new(4, 16);
        let values = hammer(&c, 4, 500);
        // Every increment is eventually counted…
        assert_eq!(c.exact_total(), 2000);
        // …but the returned values may repeat (staleness).
        let mut sorted = values.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert!(sorted.len() <= values.len());
        assert_eq!(c.shards(), 4);
        assert_eq!(c.name(), "sharded-eventual");
    }

    #[test]
    fn sharded_counter_single_thread_is_exact() {
        let c = ShardedCounter::new(1, 8);
        for expect in 0..100i64 {
            assert_eq!(c.fetch_inc(0), expect);
        }
        assert_eq!(c.exact_total(), 100);
    }

    #[test]
    fn sharded_counter_staleness_is_bounded_by_refresh() {
        // With a refresh interval of 1 the cached view is refreshed on every
        // operation, so the returned value can lag only by increments that
        // raced with the read.
        let c = Arc::new(ShardedCounter::new(2, 1));
        let v0 = c.fetch_inc(0);
        let v1 = c.fetch_inc(1);
        assert_eq!(v0, 0);
        assert_eq!(v1, 1); // thread 1 refreshed and saw thread 0's increment
        assert_eq!(c.exact_total(), 2);
    }

    #[test]
    #[should_panic(expected = "refresh interval")]
    fn zero_refresh_interval_is_rejected() {
        let _ = ShardedCounter::new(2, 0);
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_is_rejected() {
        let _ = ShardedCounter::new(0, 8);
    }
}
