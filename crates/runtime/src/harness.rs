//! Spawning threads, running workloads, collecting histories and statistics.

use crate::channel;
use crate::channel::sharded::MergeStats;
use crate::counter::ConcurrentCounter;
use crate::fault::{ChannelFaultStats, FaultPlan};
use crate::recorder::{sharded_recorder, Recorder, SinkStats};
use evlin_checker::monitor::{
    self, IngestSummary, Monitor, MonitorConfig, MonitorReport, SegmentBatch,
};
use evlin_history::{Event, History, ObjectId, ObjectUniverse, ProcessId};
use evlin_spec::{FetchIncrement, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options for [`run_counter_workload`].
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Number of threads.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Whether to record a history (adds overhead; switch off for raw
    /// throughput measurements).
    pub record_history: bool,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            threads: 2,
            ops_per_thread: 1_000,
            record_history: true,
        }
    }
}

/// The outcome of one counter workload run.
#[derive(Debug)]
pub struct CounterRun {
    /// The recorded history (if recording was enabled).
    pub history: Option<History>,
    /// Wall-clock duration of the measured section.
    pub elapsed: Duration,
    /// Total operations performed.
    pub total_ops: usize,
    /// Operations per second.
    pub throughput: f64,
    /// The counter's exact total after quiescence.
    pub final_total: i64,
    /// Number of operations whose returned value was stale, i.e. already
    /// returned by an earlier-completing operation (0 for linearizable
    /// counters).
    pub duplicate_responses: usize,
    /// The largest observed staleness: `exact-at-response − returned value`,
    /// approximated as the difference between the operation's slot in
    /// completion order and its returned value.  0 for linearizable counters.
    pub max_staleness: i64,
}

impl CounterRun {
    /// Convenience: whether every response was distinct (a cheap necessary
    /// condition for linearizability of a fetch&increment history).
    pub fn responses_distinct(&self) -> bool {
        self.duplicate_responses == 0
    }
}

/// Runs `options.threads` threads each performing
/// `options.ops_per_thread` fetch&inc operations on `counter`.
pub fn run_counter_workload(
    counter: &dyn ConcurrentCounter,
    options: HarnessOptions,
) -> CounterRun {
    let recorder = options.record_history.then(Recorder::new).map(Arc::new);
    run_workload_with_recorder(counter, options, recorder)
}

/// The outcome of one *live-monitored* counter workload run: the raw run
/// statistics plus the online monitor's report and sink counters.
#[derive(Debug)]
pub struct MonitoredRun {
    /// The workload-side statistics (history is `None`: the events streamed
    /// to the monitor instead of being retained).
    pub run: CounterRun,
    /// The online monitor's verdict and counters.
    pub report: MonitorReport,
    /// What the streaming recorder delivered to the channel.
    pub sink: SinkStats,
    /// Faults injected by the channel, when the run streamed through a
    /// [`crate::fault::FaultySender`]
    /// ([`run_counter_workload_monitored_faulty`]); `None` on clean runs.
    pub channel_faults: Option<ChannelFaultStats>,
    /// Wall-clock time from workload start until the monitor finished
    /// checking the last event (≥ `run.elapsed`; the basis for checked-ops/s).
    pub total_elapsed: Duration,
}

impl MonitoredRun {
    /// Completed operations verified per second, end to end (workload +
    /// online checking overlap).
    pub fn checked_ops_per_sec(&self) -> f64 {
        self.report.stats.checked_ops as f64 / self.total_elapsed.as_secs_f64().max(f64::EPSILON)
    }
}

/// Runs a counter workload with *live* online checking: a streaming
/// [`Recorder`] feeds invocation/response events through a bounded SPSC
/// [`channel`] (capacity `channel_capacity`) into an
/// [`evlin_checker::monitor::Monitor`] running on its own thread, which
/// checks quiescent-cut segments and discards them as the run proceeds —
/// the whole pipeline holds a bounded number of events regardless of
/// `options.ops_per_thread`.
///
/// `options.record_history` is ignored (events always stream; none are
/// retained).
pub fn run_counter_workload_monitored(
    counter: &dyn ConcurrentCounter,
    options: HarnessOptions,
    monitor_config: MonitorConfig,
    channel_capacity: usize,
) -> MonitoredRun {
    monitored_run(counter, options, monitor_config, channel_capacity, None)
}

/// Like [`run_counter_workload_monitored`], but streaming the events through
/// a seeded transient-fault channel ([`crate::fault::FaultySender`]) that
/// loses, duplicates or reorders them per `plan` before they reach the
/// monitor.
///
/// This is the runtime half of the fault-injection experiments: the monitor
/// sees a corrupted stream, so its verdict reflects the *corruption*, not the
/// counter — a lost or reordered event shows up as a violation (flagged) or
/// as an ill-formed event the monitor rejects, while conditions with
/// forgiveness (`t`-linearizability, stabilizes-eventually) absorb a
/// corrupted prefix.  The injected faults are reported in
/// [`MonitoredRun::channel_faults`].
pub fn run_counter_workload_monitored_faulty(
    counter: &dyn ConcurrentCounter,
    options: HarnessOptions,
    monitor_config: MonitorConfig,
    channel_capacity: usize,
    plan: FaultPlan,
) -> MonitoredRun {
    monitored_run(
        counter,
        options,
        monitor_config,
        channel_capacity,
        Some(plan),
    )
}

fn monitored_run(
    counter: &dyn ConcurrentCounter,
    options: HarnessOptions,
    monitor_config: MonitorConfig,
    channel_capacity: usize,
    plan: Option<FaultPlan>,
) -> MonitoredRun {
    let mut universe = ObjectUniverse::new();
    let object = universe.add_object(FetchIncrement::new());
    debug_assert_eq!(object, ObjectId(0), "the harness records on ObjectId(0)");
    let mut monitor = Monitor::new(universe, monitor_config);
    let (sender, receiver) = channel::bounded(channel_capacity);
    let recorder = Arc::new(match plan {
        Some(plan) => Recorder::with_faulty_sink(sender, plan, false),
        None => Recorder::with_sink(sender, false),
    });

    let started = Instant::now();
    let consumer = std::thread::spawn(move || {
        while let Some(event) = receiver.recv() {
            // On a clean channel the recorder's well-formedness filter makes
            // errors impossible here; on a faulty one a lost invocation can
            // orphan its response, which the monitor rejects — that is the
            // fault surfacing, not a pipeline bug, so the run continues and
            // the verdict carries the outcome.
            let _ = monitor.ingest(event);
        }
        monitor.finish()
    });
    let run = run_workload_with_recorder(counter, options, Some(Arc::clone(&recorder)));
    let sink_recorder = Arc::try_unwrap(recorder).expect("all recording threads have joined");
    let sink = sink_recorder
        .sink_stats()
        .expect("streaming recorder has a sink");
    let channel_faults = sink_recorder.channel_fault_stats();
    // Dropping the recorder flushes the reorder buffer and hangs up the
    // channel, letting the monitor thread drain and finish.
    drop(sink_recorder);
    let report = consumer.join().expect("monitor thread");
    let total_elapsed = started.elapsed();
    MonitoredRun {
        run,
        report,
        sink,
        channel_faults,
        total_elapsed,
    }
}

/// Tuning knobs of the sharded, frame-batched, pipelined monitoring path
/// ([`run_counter_workload_pipelined`]).
#[derive(Debug, Clone, Copy)]
pub struct PipelineOptions {
    /// Events per frame shipped from a worker's [`crate::RecorderShard`] to
    /// the merge stage.  Larger frames amortize more synchronization per
    /// event; smaller frames shorten the pipeline's latency tail.
    pub frame_capacity: usize,
    /// In-flight frames each producer ring holds before the producer blocks
    /// (back-pressure, in frames).
    pub ring_frames: usize,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            frame_capacity: 512,
            ring_frames: 8,
        }
    }
}

/// The outcome of one pipelined, sharded, live-monitored counter workload
/// run ([`run_counter_workload_pipelined`]).
#[derive(Debug)]
pub struct PipelinedRun {
    /// The workload-side statistics (history is `None`: events streamed).
    pub run: CounterRun,
    /// The pipelined monitor's verdict and counters — identical to what the
    /// inline [`Monitor`] reports on the same stream.
    pub report: MonitorReport,
    /// Sink counters summed over every worker shard.
    pub sink: SinkStats,
    /// What the k-way merge saw: frames, events, and the transport-integrity
    /// counters (fingerprint mismatches, misordered frames).
    pub merge: MergeStats,
    /// Frame-granularity faults summed over the shards' injectors, when the
    /// run streamed through [`run_counter_workload_pipelined_faulty`];
    /// `None` on clean runs.  Units are *frames*, not events.
    pub channel_faults: Option<ChannelFaultStats>,
    /// Wall-clock time from workload start until the check stage finished
    /// the last segment (≥ `run.elapsed`; the basis for checked-ops/s).
    pub total_elapsed: Duration,
}

impl PipelinedRun {
    /// Completed operations verified per second, end to end (workload,
    /// merge, ingest and kernel checking all overlap).
    pub fn checked_ops_per_sec(&self) -> f64 {
        self.report.stats.checked_ops as f64 / self.total_elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Events carried through the full pipeline per second (an invocation
    /// and a response per operation, so ~2× the checked-op rate).
    pub fn events_per_sec(&self) -> f64 {
        self.report.stats.events as f64 / self.total_elapsed.as_secs_f64().max(f64::EPSILON)
    }
}

/// What the merge+ingest stage hands the check stage.
enum StageMsg {
    Batch(SegmentBatch),
    Final(SegmentBatch, IngestSummary),
}

/// Runs a counter workload under the *pipelined* online monitor: each worker
/// thread records into its own [`crate::RecorderShard`] (frame-batched,
/// per-producer ring), a merge stage k-way-merges the shard streams back
/// into global sequence order and cuts quiescent segments
/// ([`monitor::MonitorIngest`]), and a check stage runs the kernel over
/// closed segments ([`monitor::MonitorCheck`]) — three overlapping stages
/// instead of one consumer doing per-event channel rounds and checking in
/// line.  The verdict is identical to [`run_counter_workload_monitored`]'s
/// on the same stream; the synchronization cost per event is what changes.
///
/// `options.record_history` is ignored (events always stream).
pub fn run_counter_workload_pipelined(
    counter: &dyn ConcurrentCounter,
    options: HarnessOptions,
    monitor_config: MonitorConfig,
    pipeline: PipelineOptions,
) -> PipelinedRun {
    pipelined_run(counter, options, monitor_config, pipeline, None)
}

/// Like [`run_counter_workload_pipelined`], but every shard streams its
/// frames through a seed-derived transient-fault injector
/// ([`FaultPlan::for_shard`]) that loses, duplicates or adjacently reorders
/// whole *frames* before they reach the merge.  The monitor's verdict then
/// reflects the corruption, exactly as on the per-event faulty path.
pub fn run_counter_workload_pipelined_faulty(
    counter: &dyn ConcurrentCounter,
    options: HarnessOptions,
    monitor_config: MonitorConfig,
    pipeline: PipelineOptions,
    plan: FaultPlan,
) -> PipelinedRun {
    pipelined_run(counter, options, monitor_config, pipeline, Some(plan))
}

fn pipelined_run(
    counter: &dyn ConcurrentCounter,
    options: HarnessOptions,
    monitor_config: MonitorConfig,
    pipeline: PipelineOptions,
    plan: Option<FaultPlan>,
) -> PipelinedRun {
    let mut universe = ObjectUniverse::new();
    let object = universe.add_object(FetchIncrement::new());
    debug_assert_eq!(object, ObjectId(0), "the harness records on ObjectId(0)");
    let (ingest, check) = monitor::stages(universe, monitor_config);
    let (shards, merge) = sharded_recorder(
        options.threads.max(1),
        pipeline.frame_capacity,
        pipeline.ring_frames,
        plan,
    );
    // Closed segments flow to the check stage through their own small ring;
    // its back-pressure is what keeps the pipeline's memory bounded when
    // checking falls behind ingestion.
    let (batch_tx, batch_rx) = channel::bounded::<StageMsg>(8);

    let start_flag = AtomicBool::new(false);
    let started = Instant::now();
    let (all_responses, sink, channel_faults, merge_stats, report, elapsed, total_elapsed) =
        std::thread::scope(|s| {
            let check_stage = s.spawn(move || {
                let mut check = check;
                loop {
                    match batch_rx.recv() {
                        Some(StageMsg::Batch(batch)) => check.check_batch(batch),
                        Some(StageMsg::Final(tail, summary)) => return check.finish(tail, summary),
                        None => panic!("the merge stage hung up without a final batch"),
                    }
                }
            });
            let merge_stage = s.spawn(move || {
                let mut merge = merge;
                let mut ingest = ingest;
                let mut buf: Vec<(u64, Event)> = Vec::with_capacity(4096);
                loop {
                    buf.clear();
                    if merge.recv_sorted(&mut buf, 4096) == 0 {
                        break;
                    }
                    for (_, event) in buf.drain(..) {
                        // On a clean transport the shards' well-formedness
                        // filters make errors impossible; under frame faults
                        // a lost frame can orphan responses, which the
                        // ingest stage rejects — the fault surfacing, not a
                        // pipeline bug.
                        let _ = ingest.ingest(event);
                    }
                    while let Some(batch) = ingest.take_ready_batch() {
                        // An error means the check stage died; the join below
                        // propagates its panic.
                        if batch_tx.send(StageMsg::Batch(batch)).is_err() {
                            break;
                        }
                    }
                }
                let stats = merge.stats();
                let (tail, summary) = ingest.finish();
                let _ = batch_tx.send(StageMsg::Final(tail, summary));
                stats
            });
            let workers: Vec<_> = shards
                .into_iter()
                .enumerate()
                .map(|(t, mut shard)| {
                    let start_flag = &start_flag;
                    s.spawn(move || {
                        while !start_flag.load(Ordering::Acquire) {
                            std::hint::spin_loop();
                        }
                        let mut local = Vec::with_capacity(options.ops_per_thread);
                        for _ in 0..options.ops_per_thread {
                            shard.invoke(ProcessId(t), object, FetchIncrement::fetch_inc());
                            let v = counter.fetch_inc(t);
                            shard.respond(ProcessId(t), object, Value::from(v));
                            local.push(v);
                        }
                        // Ship the partial tail while the fault injector is
                        // still observable, then read its counters and close.
                        shard.flush();
                        let faults = shard.fault_stats();
                        (local, shard.finish(), faults)
                    })
                })
                .collect();
            start_flag.store(true, Ordering::Release);

            let mut all_responses = Vec::new();
            let mut sink = SinkStats::default();
            let mut faults_sum = ChannelFaultStats::default();
            let mut any_faulty = false;
            for worker in workers {
                let (local, stats, faults) = worker.join().expect("worker thread");
                all_responses.extend(local);
                sink.emitted += stats.emitted;
                sink.dropped_malformed += stats.dropped_malformed;
                sink.flushed_past_gap += stats.flushed_past_gap;
                sink.dropped_disconnected += stats.dropped_disconnected;
                sink.flushed_partial_frames += stats.flushed_partial_frames;
                sink.disconnected |= stats.disconnected;
                if let Some(f) = faults {
                    any_faulty = true;
                    faults_sum.delivered += f.delivered;
                    faults_sum.lost += f.lost;
                    faults_sum.duplicated += f.duplicated;
                    faults_sum.reordered += f.reordered;
                }
            }
            let elapsed = started.elapsed();
            let merge_stats = merge_stage.join().expect("merge+ingest stage");
            let report = check_stage.join().expect("check stage");
            let total_elapsed = started.elapsed();
            (
                all_responses,
                sink,
                any_faulty.then_some(faults_sum),
                merge_stats,
                report,
                elapsed,
                total_elapsed,
            )
        });

    let total_ops = options.threads.max(1) * options.ops_per_thread;
    let (duplicate_responses, max_staleness) = summarize_responses(&all_responses);
    PipelinedRun {
        run: CounterRun {
            history: None,
            elapsed,
            total_ops,
            throughput: total_ops as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
            final_total: counter.exact_total(),
            duplicate_responses,
            max_staleness,
        },
        report,
        sink,
        merge: merge_stats,
        channel_faults,
        total_elapsed,
    }
}

/// Duplicate-response count and staleness bound of a fetch&inc response
/// multiset (see [`CounterRun::duplicate_responses`] /
/// [`CounterRun::max_staleness`]).
fn summarize_responses(responses: &[i64]) -> (usize, i64) {
    let mut sorted = responses.to_vec();
    sorted.sort_unstable();
    let duplicate_responses = sorted.windows(2).filter(|w| w[0] == w[1]).count();
    // Staleness proxy: after sorting, a linearizable counter returns exactly
    // 0..total_ops-1; the gap between the expected slot and the returned
    // value bounds how far behind the stale responses were.
    let max_staleness = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| i as i64 - v)
        .max()
        .unwrap_or(0)
        .max(0);
    (duplicate_responses, max_staleness)
}

/// Shared worker loop of [`run_counter_workload`] and
/// [`run_counter_workload_monitored`].
fn run_workload_with_recorder(
    counter: &dyn ConcurrentCounter,
    options: HarnessOptions,
    recorder: Option<Arc<Recorder>>,
) -> CounterRun {
    let object = ObjectId(0);
    let start_flag = AtomicBool::new(false);
    // Per-thread response logs (always collected; cheap).
    let responses: Vec<parking_lot::Mutex<Vec<i64>>> = (0..options.threads)
        .map(|_| parking_lot::Mutex::new(Vec::with_capacity(options.ops_per_thread)))
        .collect();

    let started = Instant::now();
    // Scoped threads: panics in workers propagate when the scope joins them.
    std::thread::scope(|s| {
        for t in 0..options.threads {
            let recorder = recorder.clone();
            let responses = &responses;
            let start_flag = &start_flag;
            s.spawn(move || {
                // Spin until every thread is ready so the measured section is
                // genuinely concurrent.
                while !start_flag.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                let mut local = Vec::with_capacity(options.ops_per_thread);
                for _ in 0..options.ops_per_thread {
                    if let Some(r) = &recorder {
                        r.invoke(ProcessId(t), object, FetchIncrement::fetch_inc());
                    }
                    let v = counter.fetch_inc(t);
                    if let Some(r) = &recorder {
                        r.respond(ProcessId(t), object, Value::from(v));
                    }
                    local.push(v);
                }
                *responses[t].lock() = local;
            });
        }
        start_flag.store(true, Ordering::Release);
    });
    let elapsed = started.elapsed();

    let total_ops = options.threads * options.ops_per_thread;
    let all_responses: Vec<i64> = responses.into_iter().flat_map(|m| m.into_inner()).collect();
    let (duplicate_responses, max_staleness) = summarize_responses(&all_responses);

    CounterRun {
        // The monitored path keeps its own handle on the recorder (to flush
        // the sink after the run); it retains no events, so `None` is right.
        history: recorder.and_then(|r| Arc::try_unwrap(r).ok().map(Recorder::into_history)),
        elapsed,
        total_ops,
        throughput: total_ops as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
        final_total: counter.exact_total(),
        duplicate_responses,
        max_staleness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{CasCounter, FetchAddCounter, ShardedCounter};
    use evlin_checker::fi;

    fn options(threads: usize, ops: usize, record: bool) -> HarnessOptions {
        HarnessOptions {
            threads,
            ops_per_thread: ops,
            record_history: record,
        }
    }

    #[test]
    fn cas_counter_histories_are_linearizable() {
        let counter = CasCounter::new();
        let run = run_counter_workload(&counter, options(4, 200, true));
        assert_eq!(run.total_ops, 800);
        assert_eq!(run.final_total, 800);
        assert!(run.responses_distinct());
        assert_eq!(run.max_staleness, 0);
        let history = run.history.expect("recording was enabled");
        assert!(history.is_well_formed());
        assert_eq!(fi::is_linearizable(&history, 0), Ok(true));
    }

    #[test]
    fn fetch_add_counter_histories_are_linearizable() {
        let counter = FetchAddCounter::new();
        let run = run_counter_workload(&counter, options(4, 200, true));
        assert!(run.responses_distinct());
        let history = run.history.expect("recording was enabled");
        assert_eq!(fi::is_linearizable(&history, 0), Ok(true));
    }

    #[test]
    fn sharded_counter_converges_but_is_stale() {
        let counter = ShardedCounter::new(4, 64);
        let run = run_counter_workload(&counter, options(4, 500, true));
        // No increment is lost…
        assert_eq!(run.final_total, 2000);
        // …but responses repeat under contention (staleness).  This is
        // overwhelmingly likely with 4 threads and a refresh interval of 64;
        // if the scheduler serialized the threads perfectly the run would be
        // exact, so do not assert duplicates unconditionally — assert the
        // weaker invariant that staleness never exceeds what the refresh
        // interval allows.
        assert!(run.max_staleness <= 64 * 4);
        let history = run.history.expect("recording was enabled");
        assert!(history.is_well_formed());
        // The history is weakly consistent in the fetch&increment sense used
        // by the experiments: every returned value is at most the true count
        // at response time.  (Full weak-consistency checking on histories of
        // this size is done with the specialized checker in the experiments.)
        let t = fi::min_stabilization(&history, 0).expect("pure fetch&inc history");
        assert!(t <= history.len());
    }

    #[test]
    fn recording_can_be_disabled() {
        let counter = FetchAddCounter::new();
        let run = run_counter_workload(&counter, options(2, 100, false));
        assert!(run.history.is_none());
        assert_eq!(run.total_ops, 200);
        assert!(run.throughput > 0.0);
    }

    #[test]
    fn live_monitor_verifies_linearizable_counters() {
        use evlin_checker::monitor::MonitorConfig;
        for counter in [
            Box::new(CasCounter::new()) as Box<dyn crate::counter::ConcurrentCounter>,
            Box::new(FetchAddCounter::new()),
        ] {
            let out = run_counter_workload_monitored(
                counter.as_ref(),
                options(4, 300, true),
                MonitorConfig::default(),
                1024,
            );
            assert!(
                out.report.verdict.is_ok(),
                "{}: {:?}",
                counter.name(),
                out.report
            );
            assert_eq!(out.report.stats.checked_ops, 1200);
            assert_eq!(out.sink.emitted, 2400);
            assert_eq!(out.sink.dropped_malformed, 0);
            assert!(!out.sink.disconnected);
            assert!(out.run.history.is_none(), "events stream, not buffer");
            assert!(out.checked_ops_per_sec() > 0.0);
            // Online checking is windowed: the peak resident event count
            // stays far below the full history length.
            assert!(out.report.stats.peak_window_events < 2400);
        }
    }

    #[test]
    fn faulty_channel_run_completes_and_reports_fault_stats() {
        use evlin_checker::monitor::MonitorConfig;
        let counter = FetchAddCounter::new();
        let out = run_counter_workload_monitored_faulty(
            &counter,
            options(2, 200, true),
            MonitorConfig::default(),
            256,
            FaultPlan {
                seed: 2014,
                lose: 64,
                duplicate: 64,
                reorder: 64,
            },
        );
        // The pipeline must terminate (no hang, no panic) whatever the
        // verdict — the corrupted stream may be flagged as a violation,
        // rejected event by event, or even still pass; all are legitimate
        // monitor reactions to channel faults.
        let faults = out.channel_faults.expect("a faulty run reports faults");
        assert!(
            faults.lost + faults.duplicated + faults.reordered > 0,
            "the seeded plan injects something over 800 events: {faults:?}"
        );
        // Conservation: every emitted event was either delivered or lost,
        // and each duplication delivered one extra copy.
        assert_eq!(
            faults.delivered + faults.lost,
            out.sink.emitted + faults.duplicated
        );
        // The workload side is untouched by channel faults.
        assert_eq!(out.run.total_ops, 400);
        assert_eq!(out.run.final_total, 400);
        assert!(out.run.responses_distinct());
    }

    #[test]
    fn transparent_fault_plan_matches_the_clean_monitored_path() {
        use evlin_checker::monitor::MonitorConfig;
        let counter = CasCounter::new();
        let out = run_counter_workload_monitored_faulty(
            &counter,
            options(2, 150, true),
            MonitorConfig::default(),
            256,
            FaultPlan::transparent(1),
        );
        assert!(out.report.verdict.is_ok(), "{:?}", out.report);
        assert_eq!(out.report.stats.checked_ops, 300);
        let faults = out.channel_faults.expect("still a faulty-sink run");
        assert_eq!(faults.lost + faults.duplicated + faults.reordered, 0);
        assert_eq!(faults.delivered, out.sink.emitted);
    }

    #[test]
    fn pipelined_monitor_verifies_linearizable_counters() {
        use evlin_checker::monitor::MonitorConfig;
        for counter in [
            Box::new(CasCounter::new()) as Box<dyn crate::counter::ConcurrentCounter>,
            Box::new(FetchAddCounter::new()),
        ] {
            let out = run_counter_workload_pipelined(
                counter.as_ref(),
                options(4, 300, false),
                MonitorConfig::default(),
                // Small frames so the run exercises many frame round trips
                // and a partial tail per shard.
                PipelineOptions {
                    frame_capacity: 32,
                    ring_frames: 4,
                },
            );
            assert!(
                out.report.verdict.is_ok(),
                "{}: {:?}",
                counter.name(),
                out.report
            );
            assert_eq!(out.report.stats.checked_ops, 1200);
            assert_eq!(out.report.stats.events, 2400);
            assert_eq!(out.sink.emitted, 2400);
            assert_eq!(out.sink.dropped_malformed, 0);
            assert!(!out.sink.disconnected);
            assert_eq!(out.merge.events, 2400);
            assert_eq!(out.merge.fingerprint_mismatches, 0);
            assert_eq!(out.merge.misordered_frames, 0);
            assert!(out.channel_faults.is_none());
            assert!(out.run.history.is_none(), "events stream, not buffer");
            assert!(out.checked_ops_per_sec() > 0.0);
            assert!(out.events_per_sec() > out.checked_ops_per_sec());
            // Unlike the mutex-serialized single-channel recorder, sharded
            // recording lets the workers interleave densely, so a run may
            // exhibit no mid-stream quiescent point at all — the window can
            // legitimately reach the full stream length, never beyond.
            assert!(out.report.stats.peak_window_events <= 2400);
        }
    }

    #[test]
    fn pipelined_faulty_run_completes_and_reports_frame_faults() {
        use evlin_checker::monitor::MonitorConfig;
        let counter = FetchAddCounter::new();
        let out = run_counter_workload_pipelined_faulty(
            &counter,
            options(2, 400, false),
            MonitorConfig::default(),
            // Tiny frames: many frames in flight, so the per-frame fault
            // rates actually fire.
            PipelineOptions {
                frame_capacity: 4,
                ring_frames: 8,
            },
            FaultPlan {
                seed: 2014,
                lose: 128,
                duplicate: 128,
                reorder: 128,
            },
        );
        // The pipeline must terminate whatever the verdict — a corrupted
        // frame stream may be flagged, rejected event by event, or forgiven.
        let faults = out.channel_faults.expect("a faulty run reports faults");
        assert!(
            faults.lost + faults.duplicated + faults.reordered > 0,
            "the seeded plan injects something over ~400 frames: {faults:?}"
        );
        // The workload side is untouched by transport faults.
        assert_eq!(out.run.total_ops, 800);
        assert_eq!(out.run.final_total, 800);
        assert!(out.run.responses_distinct());
        // Fault injection moves whole frames but never rewrites them.
        assert_eq!(out.merge.fingerprint_mismatches, 0);
        assert!(out.merge.events <= out.sink.emitted + 4 * faults.duplicated);
    }

    #[test]
    fn transparent_pipelined_faults_match_the_clean_pipelined_path() {
        use evlin_checker::monitor::MonitorConfig;
        let counter = CasCounter::new();
        let out = run_counter_workload_pipelined_faulty(
            &counter,
            options(2, 150, false),
            MonitorConfig::default(),
            PipelineOptions::default(),
            FaultPlan::transparent(1),
        );
        assert!(out.report.verdict.is_ok(), "{:?}", out.report);
        assert_eq!(out.report.stats.checked_ops, 300);
        let faults = out.channel_faults.expect("still a faulty-sink run");
        assert_eq!(faults.lost + faults.duplicated + faults.reordered, 0);
        assert_eq!(out.merge.events, 600);
    }

    #[test]
    fn pipelined_monitor_flags_the_stale_sharded_counter_or_verifies_it() {
        use evlin_checker::monitor::{MonitorConfig, MonitorVerdict};
        // Mirror of the single-channel staleness test: duplicates must be
        // flagged, a genuinely serialized run may pass, Unknown never.
        let counter = ShardedCounter::new(4, 16);
        let out = run_counter_workload_pipelined(
            &counter,
            options(4, 500, false),
            MonitorConfig::default(),
            PipelineOptions {
                frame_capacity: 64,
                ring_frames: 4,
            },
        );
        let duplicates = out.run.duplicate_responses;
        match out.report.verdict {
            MonitorVerdict::Ok => assert_eq!(duplicates, 0, "stale run must be flagged"),
            MonitorVerdict::Violation(_) => assert!(duplicates > 0),
            MonitorVerdict::Unknown => panic!("monitor gave up: {:?}", out.report),
        }
    }

    #[test]
    fn live_monitor_flags_the_stale_sharded_counter_or_verifies_it() {
        use evlin_checker::monitor::{MonitorConfig, MonitorVerdict};
        // Under contention the sharded counter repeats responses, which the
        // online monitor must flag; a perfectly serialized run (possible on
        // a quiet machine) is genuinely linearizable, so accept both — what
        // is *not* acceptable is an Unknown.
        let counter = ShardedCounter::new(4, 16);
        let out = run_counter_workload_monitored(
            &counter,
            options(4, 500, true),
            MonitorConfig::default(),
            1024,
        );
        let duplicates = out.run.duplicate_responses;
        match out.report.verdict {
            MonitorVerdict::Ok => assert_eq!(duplicates, 0, "stale run must be flagged"),
            MonitorVerdict::Violation(_) => assert!(duplicates > 0),
            MonitorVerdict::Unknown => panic!("monitor gave up: {:?}", out.report),
        }
    }
}
