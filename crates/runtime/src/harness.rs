//! Spawning threads, running workloads, collecting histories and statistics.

use crate::counter::ConcurrentCounter;
use crate::recorder::Recorder;
use evlin_history::{History, ObjectId, ProcessId};
use evlin_spec::{FetchIncrement, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Options for [`run_counter_workload`].
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Number of threads.
    pub threads: usize,
    /// Operations per thread.
    pub ops_per_thread: usize,
    /// Whether to record a history (adds overhead; switch off for raw
    /// throughput measurements).
    pub record_history: bool,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        HarnessOptions {
            threads: 2,
            ops_per_thread: 1_000,
            record_history: true,
        }
    }
}

/// The outcome of one counter workload run.
#[derive(Debug)]
pub struct CounterRun {
    /// The recorded history (if recording was enabled).
    pub history: Option<History>,
    /// Wall-clock duration of the measured section.
    pub elapsed: Duration,
    /// Total operations performed.
    pub total_ops: usize,
    /// Operations per second.
    pub throughput: f64,
    /// The counter's exact total after quiescence.
    pub final_total: i64,
    /// Number of operations whose returned value was stale, i.e. already
    /// returned by an earlier-completing operation (0 for linearizable
    /// counters).
    pub duplicate_responses: usize,
    /// The largest observed staleness: `exact-at-response − returned value`,
    /// approximated as the difference between the operation's slot in
    /// completion order and its returned value.  0 for linearizable counters.
    pub max_staleness: i64,
}

impl CounterRun {
    /// Convenience: whether every response was distinct (a cheap necessary
    /// condition for linearizability of a fetch&increment history).
    pub fn responses_distinct(&self) -> bool {
        self.duplicate_responses == 0
    }
}

/// Runs `options.threads` threads each performing
/// `options.ops_per_thread` fetch&inc operations on `counter`.
pub fn run_counter_workload(
    counter: &dyn ConcurrentCounter,
    options: HarnessOptions,
) -> CounterRun {
    let recorder = options.record_history.then(Recorder::new).map(Arc::new);
    let object = ObjectId(0);
    let start_flag = AtomicBool::new(false);
    // Per-thread response logs (always collected; cheap).
    let responses: Vec<parking_lot::Mutex<Vec<i64>>> = (0..options.threads)
        .map(|_| parking_lot::Mutex::new(Vec::with_capacity(options.ops_per_thread)))
        .collect();

    let started = Instant::now();
    // Scoped threads: panics in workers propagate when the scope joins them.
    std::thread::scope(|s| {
        for t in 0..options.threads {
            let recorder = recorder.clone();
            let responses = &responses;
            let start_flag = &start_flag;
            s.spawn(move || {
                // Spin until every thread is ready so the measured section is
                // genuinely concurrent.
                while !start_flag.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                let mut local = Vec::with_capacity(options.ops_per_thread);
                for _ in 0..options.ops_per_thread {
                    if let Some(r) = &recorder {
                        r.invoke(ProcessId(t), object, FetchIncrement::fetch_inc());
                    }
                    let v = counter.fetch_inc(t);
                    if let Some(r) = &recorder {
                        r.respond(ProcessId(t), object, Value::from(v));
                    }
                    local.push(v);
                }
                *responses[t].lock() = local;
            });
        }
        start_flag.store(true, Ordering::Release);
    });
    let elapsed = started.elapsed();

    let total_ops = options.threads * options.ops_per_thread;
    let all_responses: Vec<i64> = responses.into_iter().flat_map(|m| m.into_inner()).collect();
    let mut sorted = all_responses.clone();
    sorted.sort_unstable();
    let duplicate_responses = sorted.windows(2).filter(|w| w[0] == w[1]).count();
    // Staleness proxy: after sorting, a linearizable counter returns exactly
    // 0..total_ops-1; the gap between the expected slot and the returned
    // value bounds how far behind the stale responses were.
    let max_staleness = sorted
        .iter()
        .enumerate()
        .map(|(i, &v)| i as i64 - v)
        .max()
        .unwrap_or(0)
        .max(0);

    CounterRun {
        history: recorder.map(|r| {
            Arc::try_unwrap(r)
                .expect("all recording threads have joined")
                .into_history()
        }),
        elapsed,
        total_ops,
        throughput: total_ops as f64 / elapsed.as_secs_f64().max(f64::EPSILON),
        final_total: counter.exact_total(),
        duplicate_responses,
        max_staleness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::{CasCounter, FetchAddCounter, ShardedCounter};
    use evlin_checker::fi;

    fn options(threads: usize, ops: usize, record: bool) -> HarnessOptions {
        HarnessOptions {
            threads,
            ops_per_thread: ops,
            record_history: record,
        }
    }

    #[test]
    fn cas_counter_histories_are_linearizable() {
        let counter = CasCounter::new();
        let run = run_counter_workload(&counter, options(4, 200, true));
        assert_eq!(run.total_ops, 800);
        assert_eq!(run.final_total, 800);
        assert!(run.responses_distinct());
        assert_eq!(run.max_staleness, 0);
        let history = run.history.expect("recording was enabled");
        assert!(history.is_well_formed());
        assert_eq!(fi::is_linearizable(&history, 0), Ok(true));
    }

    #[test]
    fn fetch_add_counter_histories_are_linearizable() {
        let counter = FetchAddCounter::new();
        let run = run_counter_workload(&counter, options(4, 200, true));
        assert!(run.responses_distinct());
        let history = run.history.expect("recording was enabled");
        assert_eq!(fi::is_linearizable(&history, 0), Ok(true));
    }

    #[test]
    fn sharded_counter_converges_but_is_stale() {
        let counter = ShardedCounter::new(4, 64);
        let run = run_counter_workload(&counter, options(4, 500, true));
        // No increment is lost…
        assert_eq!(run.final_total, 2000);
        // …but responses repeat under contention (staleness).  This is
        // overwhelmingly likely with 4 threads and a refresh interval of 64;
        // if the scheduler serialized the threads perfectly the run would be
        // exact, so do not assert duplicates unconditionally — assert the
        // weaker invariant that staleness never exceeds what the refresh
        // interval allows.
        assert!(run.max_staleness <= 64 * 4);
        let history = run.history.expect("recording was enabled");
        assert!(history.is_well_formed());
        // The history is weakly consistent in the fetch&increment sense used
        // by the experiments: every returned value is at most the true count
        // at response time.  (Full weak-consistency checking on histories of
        // this size is done with the specialized checker in the experiments.)
        let t = fi::min_stabilization(&history, 0).expect("pure fetch&inc history");
        assert!(t <= history.len());
    }

    #[test]
    fn recording_can_be_disabled() {
        let counter = FetchAddCounter::new();
        let run = run_counter_workload(&counter, options(2, 100, false));
        assert!(run.history.is_none());
        assert_eq!(run.total_ops, 200);
        assert!(run.throughput > 0.0);
    }
}
