//! Multi-threaded consensus objects: linearizable and eventually linearizable.
//!
//! Two implementations, mirroring the paper's contrast:
//!
//! * [`CasConsensus`] — linearizable: the first compare&swap on the decision
//!   word wins (consensus *requires* such a primitive, by Proposition 15 /
//!   the classical hierarchy);
//! * [`RegisterConsensus`] — the Proposition 16 algorithm on plain atomic
//!   registers: announce your proposal in your own slot, then return the
//!   leftmost announced value.  It is wait-free and eventually linearizable
//!   but *not* linearizable: two threads that miss each other's announcements
//!   can return different values.

use std::sync::atomic::{AtomicI64, Ordering};

/// A shared one-shot consensus object over `i64` proposals.
pub trait ConcurrentConsensus: Send + Sync {
    /// Proposes `value` on behalf of `thread` and returns the value this
    /// thread adopts.
    fn propose(&self, thread: usize, value: i64) -> i64;

    /// A short human-readable name.
    fn name(&self) -> &'static str;
}

const UNSET: i64 = i64::MIN;

/// Linearizable consensus: first successful compare&swap wins.
#[derive(Debug)]
pub struct CasConsensus {
    decision: AtomicI64,
}

impl CasConsensus {
    /// Creates an undecided consensus object.
    pub fn new() -> Self {
        CasConsensus {
            decision: AtomicI64::new(UNSET),
        }
    }

    /// The decided value, if any.
    pub fn decided(&self) -> Option<i64> {
        match self.decision.load(Ordering::SeqCst) {
            UNSET => None,
            v => Some(v),
        }
    }
}

impl Default for CasConsensus {
    fn default() -> Self {
        CasConsensus::new()
    }
}

impl ConcurrentConsensus for CasConsensus {
    fn propose(&self, _thread: usize, value: i64) -> i64 {
        assert_ne!(value, UNSET, "the sentinel value cannot be proposed");
        match self
            .decision
            .compare_exchange(UNSET, value, Ordering::AcqRel, Ordering::Acquire)
        {
            Ok(_) => value,
            Err(winner) => winner,
        }
    }

    fn name(&self) -> &'static str {
        "cas-consensus"
    }
}

/// The Proposition 16 algorithm on real atomic registers: eventually
/// linearizable, wait-free, but not linearizable.
#[derive(Debug)]
pub struct RegisterConsensus {
    proposals: Vec<AtomicI64>,
}

impl RegisterConsensus {
    /// Creates the object for `threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(threads: usize) -> Self {
        assert!(threads > 0, "at least one thread is required");
        RegisterConsensus {
            proposals: (0..threads).map(|_| AtomicI64::new(UNSET)).collect(),
        }
    }

    /// The number of proposal slots.
    pub fn slots(&self) -> usize {
        self.proposals.len()
    }
}

impl ConcurrentConsensus for RegisterConsensus {
    fn propose(&self, thread: usize, value: i64) -> i64 {
        assert_ne!(value, UNSET, "the sentinel value cannot be proposed");
        // line 2: if Proposal[i] = ⊥ then Proposal[i] := v
        if self.proposals[thread].load(Ordering::Acquire) == UNSET {
            self.proposals[thread].store(value, Ordering::Release);
        }
        // line 3: read Proposal[1..n] and return leftmost non-⊥ value
        for slot in &self.proposals {
            let v = slot.load(Ordering::Acquire);
            if v != UNSET {
                return v;
            }
        }
        unreachable!("our own slot is non-⊥ by the time we scan")
    }

    fn name(&self) -> &'static str {
        "register-consensus (Prop 16)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    fn run_threads(c: &dyn ConcurrentConsensus, proposals: &[i64]) -> Vec<i64> {
        let results: Vec<parking_lot::Mutex<i64>> = proposals
            .iter()
            .map(|_| parking_lot::Mutex::new(UNSET))
            .collect();
        std::thread::scope(|s| {
            for (t, &p) in proposals.iter().enumerate() {
                let results = &results;
                s.spawn(move || {
                    *results[t].lock() = c.propose(t, p);
                });
            }
        });
        results.into_iter().map(|m| m.into_inner()).collect()
    }

    #[test]
    fn cas_consensus_agrees_and_is_valid() {
        for _ in 0..50 {
            let c = CasConsensus::new();
            let proposals = [10, 20, 30, 40];
            let decisions = run_threads(&c, &proposals);
            let distinct: BTreeSet<_> = decisions.iter().copied().collect();
            assert_eq!(distinct.len(), 1, "agreement violated: {decisions:?}");
            let d = *distinct.iter().next().unwrap();
            assert!(proposals.contains(&d), "validity violated: {d}");
            assert_eq!(c.decided(), Some(d));
        }
    }

    #[test]
    fn cas_consensus_sequential_proposals_adopt_first() {
        let c = CasConsensus::new();
        assert_eq!(c.decided(), None);
        assert_eq!(c.propose(0, 7), 7);
        assert_eq!(c.propose(1, 9), 7);
        assert_eq!(c.decided(), Some(7));
        assert_eq!(c.name(), "cas-consensus");
    }

    #[test]
    fn register_consensus_is_valid_but_may_disagree() {
        // Validity always holds; agreement may fail under concurrency (that
        // is what makes it only *eventually* linearizable).  We only assert
        // validity here; the disagreement statistics are an experiment (E1).
        let c = RegisterConsensus::new(4);
        assert_eq!(c.slots(), 4);
        let proposals = [10, 20, 30, 40];
        let decisions = run_threads(&c, &proposals);
        for d in &decisions {
            assert!(proposals.contains(d), "validity violated: {d}");
        }
    }

    #[test]
    fn register_consensus_sequential_behaviour_matches_prop16() {
        let c = RegisterConsensus::new(3);
        // Thread 1 proposes first and, scanning left to right, adopts its own
        // value (slot 0 is still unset).
        assert_eq!(c.propose(1, 20), 20);
        // Thread 0 then proposes; the leftmost non-⊥ slot is its own.
        assert_eq!(c.propose(0, 10), 10);
        // Thread 2 sees slot 0 first.
        assert_eq!(c.propose(2, 30), 10);
        assert!(c.name().contains("Prop 16"));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        let _ = RegisterConsensus::new(0);
    }
}
