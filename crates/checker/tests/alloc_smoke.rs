//! Allocation-count smoke test for the kernel hot path.
//!
//! A counting global allocator wraps the system allocator; after a warm-up
//! solve has sized the pooled [`KernelScratch`] buffers, repeating the same
//! search must perform (almost) no heap allocations — the test fails CI the
//! moment someone reintroduces a per-node `Vec`, a per-search hash map, or a
//! boxed visited key, instead of waiting for the bench gate to notice the
//! slowdown.
//!
//! The budget below is deliberately not zero: constructing the
//! `SearchProblem` itself (the caller's side) clones candidate records, and
//! a hash-set re-insert may probe-rehash.  What the budget rules out is
//! anything proportional to the number of search nodes.

use evlin_checker::kernel::{self, KernelScratch, SearchLimits};
use evlin_checker::Linearizability;
use evlin_checker::{fi, kernel::ConsistencyCondition};
use evlin_history::{HistoryBuilder, ObjectUniverse, ProcessId};
use evlin_spec::{FetchIncrement, Register, Value};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Counts every allocation made through the global allocator.
struct CountingAllocator;

static ALLOCATIONS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

/// Serializes the measuring tests: the allocation counter is process-global,
/// so a concurrently running test's allocations would land inside another
/// test's measured window and spuriously blow its budget under the default
/// parallel test harness.
static MEASURE: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn allocations<R>(f: impl FnOnce() -> R) -> (usize, R) {
    let before = ALLOCATIONS.load(Ordering::Relaxed);
    let result = f();
    (ALLOCATIONS.load(Ordering::Relaxed) - before, result)
}

/// An unsatisfiable multi-write register history: refutation forces the
/// kernel to exhaust its whole search space (many nodes, many visited-cache
/// inserts), which is exactly where per-node allocations would multiply.
fn refutation_history() -> (ObjectUniverse, evlin_history::History) {
    let mut u = ObjectUniverse::new();
    let r = u.add_object(Register::new(Value::from(0i64)));
    let mut b = HistoryBuilder::new();
    for p in 0..4usize {
        b = b.invoke(ProcessId(p), r, Register::write(Value::from(p as i64 + 1)));
    }
    b = b.invoke(ProcessId(4), r, Register::read());
    for p in 0..4usize {
        b = b.respond(ProcessId(p), r, Value::Unit);
    }
    let h = b.respond(ProcessId(4), r, Value::from(99i64)).build();
    (u, h)
}

#[test]
fn warmed_up_kernel_solves_are_allocation_free() {
    let _serial = MEASURE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    let (u, h) = refutation_history();
    let problem = Linearizability.problem(&h);
    let mut scratch = KernelScratch::new();
    let limits = SearchLimits::default();
    // Warm-up: sizes every pooled buffer.
    let (result, warm_stats) = kernel::solve_with_scratch(&problem, &u, limits, &mut scratch);
    assert!(!result.is_yes());
    assert!(warm_stats.nodes > 20, "refutation must do real work");
    // Steady state: the same search through the warm scratch.
    let (allocs, (result, stats)) =
        allocations(|| kernel::solve_with_scratch(&problem, &u, limits, &mut scratch));
    assert!(!result.is_yes());
    assert_eq!(stats.nodes, warm_stats.nodes);
    // What remains is the spec layer's `transitions()` enumeration — one
    // short-lived `Vec<Transition>` per *distinct* `(invocation, state)`
    // pair, bounded by the memoized transition table, never by the node
    // count.  The two assertions keep both halves honest.
    assert!(
        allocs <= 32,
        "a warmed-up kernel solve must only allocate for the spec-layer \
         transition enumeration: {allocs} allocations for {} nodes",
        stats.nodes
    );
    assert!(
        allocs < stats.nodes,
        "allocations ({allocs}) must stay strictly below the node count ({})",
        stats.nodes
    );
}

#[test]
fn warmed_up_fi_checks_stay_linear_in_allocations() {
    let _serial = MEASURE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    // The specialized fetch&increment checker is the monitor's throughput
    // path: its per-check allocation count must stay a small constant (its
    // own working vectors), not grow per operation.
    let x = evlin_history::ObjectId(0);
    let mut b = HistoryBuilder::new();
    for k in 0..1000i64 {
        b = b.complete(
            ProcessId((k % 4) as usize),
            x,
            FetchIncrement::fetch_inc(),
            Value::from(k),
        );
    }
    let h = b.build();
    assert_eq!(fi::is_linearizable(&h, 0), Ok(true)); // warm up allocator pools
    let (allocs, ok) = allocations(|| fi::is_linearizable(&h, 0));
    assert_eq!(ok, Ok(true));
    assert!(
        allocs <= 40,
        "fi::is_linearizable allocated {allocs} times for 1000 ops — \
         its working set must not grow per operation"
    );
}
