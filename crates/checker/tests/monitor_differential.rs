//! Differential tests: the streaming monitor's verdict must equal the
//! offline kernel's verdict on the concatenated history, for all four
//! consistency conditions — no matter how adversarially the stream is
//! chopped.
//!
//! Each property draws a seeded random history over a register and a
//! fetch&increment object (noisy responses, overlap, pending tails), then
//! feeds it to a [`Monitor`] in chunks whose boundaries are *not* aligned
//! with quiescent cuts — chunk sizes, forced [`Monitor::pump`] calls,
//! `min_segment_events` and `segment_batch` all vary with the seed — and
//! asserts the final report equals the offline answer.
//!
//! The PR-sized runs use the default case count; the nightly fuzz job runs
//! the `#[ignore]`d extended tests with `EVLIN_DIFF_CASES` (default 2000)
//! seeds for deep coverage.

use evlin_checker::kernel::{self, SearchLimits};
use evlin_checker::monitor::{stages, Monitor, MonitorCondition, MonitorConfig, MonitorVerdict};
use evlin_checker::{eventual, linearizability, t_linearizability, weak_consistency};
use evlin_history::{History, HistoryBuilder, ObjectUniverse, ProcessId};
use evlin_spec::{FetchIncrement, Register, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn universe() -> ObjectUniverse {
    let mut u = ObjectUniverse::new();
    u.add_object(Register::new(Value::from(0i64)));
    u.add_object(FetchIncrement::new());
    u
}

/// Random well-formed history: same shape as the kernel-vs-brute-force
/// suite's generator (random interleaving, noisy responses, pendings).
fn random_history(seed: u64, max_ops: usize) -> History {
    let mut rng = StdRng::seed_from_u64(seed);
    let r = evlin_history::ObjectId(0);
    let x = evlin_history::ObjectId(1);
    let processes = rng.gen_range(2..4usize);
    let total_ops = rng.gen_range(2..=max_ops);
    let mut plans: Vec<Vec<evlin_spec::Invocation>> = vec![Vec::new(); processes];
    for _ in 0..total_ops {
        let p = rng.gen_range(0..processes);
        let inv = match rng.gen_range(0..3u32) {
            0 => Register::write(Value::from(rng.gen_range(1..4i64))),
            1 => Register::read(),
            _ => FetchIncrement::fetch_inc(),
        };
        plans[p].push(inv);
    }
    let mut b = HistoryBuilder::new();
    let mut next_op: Vec<usize> = vec![0; processes];
    let mut pending: Vec<Option<evlin_spec::Invocation>> = vec![None; processes];
    let object_of = |inv: &evlin_spec::Invocation| if inv.method() == "fetch_inc" { x } else { r };
    for _ in 0..total_ops * 8 {
        let p = rng.gen_range(0..processes);
        if let Some(inv) = pending[p].clone() {
            if rng.gen_bool(0.7) {
                let response = if inv.method() == "write" {
                    Value::Unit
                } else {
                    Value::from(rng.gen_range(0..4i64))
                };
                b = b.respond(ProcessId(p), object_of(&inv), response);
                pending[p] = None;
            }
        } else if next_op[p] < plans[p].len() {
            let inv = plans[p][next_op[p]].clone();
            next_op[p] += 1;
            b = b.invoke(ProcessId(p), object_of(&inv), inv.clone());
            pending[p] = Some(inv);
        }
    }
    b.build()
}

/// Feeds `history` to a fresh monitor in seed-dependent adversarial chunks
/// (pumping at every chunk boundary, i.e. at non-quiescent points too) and
/// returns the final verdict.
fn monitor_verdict(history: &History, condition: MonitorCondition, seed: u64) -> MonitorVerdict {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed_cafe);
    let config = MonitorConfig {
        condition,
        min_segment_events: rng.gen_range(1..5usize),
        segment_batch: rng.gen_range(1..4usize),
        ..MonitorConfig::default()
    };
    let mut monitor = Monitor::new(universe(), config);
    let mut fed = 0usize;
    while fed < history.len() {
        let chunk = rng.gen_range(1..=4usize).min(history.len() - fed);
        monitor
            .ingest_all(history.events()[fed..fed + chunk].iter().cloned())
            .expect("generated streams are well-formed");
        fed += chunk;
        if rng.gen_bool(0.5) {
            monitor.pump();
        }
    }
    let report = monitor.finish();
    assert_ne!(
        report.verdict,
        MonitorVerdict::Unknown,
        "budgets must not be exhausted at test sizes\n{history}"
    );
    report.verdict
}

/// Drives the same stream through the *split* pipeline stages
/// ([`stages`]) with seed-dependent batch-pull timing — the two-thread
/// runtime driver collapsed onto one thread, batch boundaries and all — and
/// returns the final verdict.
fn staged_verdict(history: &History, condition: MonitorCondition, seed: u64) -> MonitorVerdict {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x57a6_ed00);
    let config = MonitorConfig {
        condition,
        min_segment_events: rng.gen_range(1..5usize),
        segment_batch: rng.gen_range(1..4usize),
        ..MonitorConfig::default()
    };
    let (mut ingest, mut check) = stages(universe(), config);
    for event in history.events().iter().cloned() {
        ingest
            .ingest(event)
            .expect("generated streams are well-formed");
        // Pull eagerly, lazily, or at the configured cadence — the check
        // stage must be insensitive to all of it.
        let batch = if rng.gen_bool(0.3) {
            ingest.take_batch()
        } else {
            ingest.take_ready_batch()
        };
        if let Some(batch) = batch {
            check.check_batch(batch);
        }
    }
    let (tail, summary) = ingest.finish();
    let report = check.finish(tail, summary);
    assert_ne!(
        report.verdict,
        MonitorVerdict::Unknown,
        "budgets must not be exhausted at test sizes\n{history}"
    );
    report.verdict
}

/// The staged pipeline against the offline kernel, all four conditions.
fn check_staged_all_conditions(seed: u64, max_ops: usize) {
    let h = random_history(seed, max_ops);
    let u = universe();
    let lin = staged_verdict(&h, MonitorCondition::Linearizability, seed);
    assert_eq!(
        lin.is_ok(),
        linearizability::is_linearizable(&h, &u),
        "staged linearizability mismatch (seed {seed})\n{h}"
    );
    for t in [0, 1, h.len() / 2, h.len()] {
        let tlin = staged_verdict(&h, MonitorCondition::TLinearizability { t }, seed);
        assert_eq!(
            tlin.is_ok(),
            t_linearizability::is_t_linearizable(&h, &u, t),
            "staged t-linearizability mismatch (seed {seed}, t {t})\n{h}"
        );
    }
    let offline_weak = weak_consistency::violations(&h, &u);
    match staged_verdict(&h, MonitorCondition::WeakConsistency, seed) {
        MonitorVerdict::Ok => assert!(
            offline_weak.is_empty(),
            "staged monitor missed violations {offline_weak:?} (seed {seed})\n{h}"
        ),
        MonitorVerdict::Violation(v) => assert_eq!(
            v.op,
            offline_weak.first().copied(),
            "staged monitor flagged the wrong operation (seed {seed})\n{h}"
        ),
        MonitorVerdict::Unknown => unreachable!(),
    }
    let stab = staged_verdict(&h, MonitorCondition::StabilizesEventually, seed);
    let offline_stab = kernel::check(
        &eventual::StabilizesEventually,
        &h,
        &u,
        SearchLimits::default(),
    )
    .is_yes();
    assert_eq!(
        stab.is_ok(),
        offline_stab,
        "staged stabilizes-eventually mismatch (seed {seed})\n{h}"
    );
}

fn check_linearizability(seed: u64, max_ops: usize) {
    let h = random_history(seed, max_ops);
    let offline = linearizability::is_linearizable(&h, &universe());
    let online = monitor_verdict(&h, MonitorCondition::Linearizability, seed);
    assert_eq!(
        online.is_ok(),
        offline,
        "linearizability mismatch (seed {seed})\n{h}"
    );
}

fn check_t_linearizability(seed: u64, max_ops: usize) {
    let h = random_history(seed, max_ops);
    let u = universe();
    for t in 0..=h.len() {
        let offline = t_linearizability::is_t_linearizable(&h, &u, t);
        let online = monitor_verdict(&h, MonitorCondition::TLinearizability { t }, seed);
        assert_eq!(
            online.is_ok(),
            offline,
            "t-linearizability mismatch (seed {seed}, t {t})\n{h}"
        );
    }
}

fn check_weak_consistency(seed: u64, max_ops: usize) {
    let h = random_history(seed, max_ops);
    let u = universe();
    let offline = weak_consistency::violations(&h, &u);
    let online = monitor_verdict(&h, MonitorCondition::WeakConsistency, seed);
    match online {
        MonitorVerdict::Ok => {
            assert!(
                offline.is_empty(),
                "monitor missed violations {offline:?} (seed {seed})\n{h}"
            );
        }
        MonitorVerdict::Violation(v) => {
            assert_eq!(
                v.op,
                offline.first().copied(),
                "monitor flagged the wrong operation (seed {seed})\n{h}"
            );
        }
        MonitorVerdict::Unknown => unreachable!(),
    }
}

fn check_stabilizes_eventually(seed: u64, max_ops: usize) {
    let h = random_history(seed, max_ops);
    let u = universe();
    let offline = kernel::check(
        &eventual::StabilizesEventually,
        &h,
        &u,
        SearchLimits::default(),
    )
    .is_yes();
    let online = monitor_verdict(&h, MonitorCondition::StabilizesEventually, seed);
    assert_eq!(
        online.is_ok(),
        offline,
        "stabilizes-eventually mismatch (seed {seed})\n{h}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn monitor_matches_offline_linearizability(seed in 0u64..u64::MAX / 2) {
        check_linearizability(seed, 7);
    }

    #[test]
    fn monitor_matches_offline_t_linearizability(seed in 0u64..u64::MAX / 2) {
        check_t_linearizability(seed, 6);
    }

    #[test]
    fn monitor_matches_offline_weak_consistency(seed in 0u64..u64::MAX / 2) {
        check_weak_consistency(seed, 7);
    }

    #[test]
    fn monitor_matches_offline_stabilizes_eventually(seed in 0u64..u64::MAX / 2) {
        check_stabilizes_eventually(seed, 7);
    }

    #[test]
    fn staged_pipeline_matches_offline_all_conditions(seed in 0u64..u64::MAX / 2) {
        check_staged_all_conditions(seed, 6);
    }
}

/// Number of cases for the `#[ignore]`d extended (nightly-fuzz) tests.
fn extended_cases() -> u64 {
    std::env::var("EVLIN_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

#[test]
#[ignore = "extended fuzz: run via the nightly CI job or with --ignored"]
fn extended_monitor_vs_offline_linearizability() {
    for seed in 0..extended_cases() {
        check_linearizability(seed.wrapping_mul(0x9e37_79b9), 8);
    }
}

#[test]
#[ignore = "extended fuzz: run via the nightly CI job or with --ignored"]
fn extended_monitor_vs_offline_t_linearizability() {
    for seed in 0..extended_cases() / 4 {
        check_t_linearizability(seed.wrapping_mul(0x9e37_79b9), 6);
    }
}

#[test]
#[ignore = "extended fuzz: run via the nightly CI job or with --ignored"]
fn extended_monitor_vs_offline_weak_consistency() {
    for seed in 0..extended_cases() {
        check_weak_consistency(seed.wrapping_mul(0x9e37_79b9), 8);
    }
}

#[test]
#[ignore = "extended fuzz: run via the nightly CI job or with --ignored"]
fn extended_monitor_vs_offline_stabilizes_eventually() {
    for seed in 0..extended_cases() {
        check_stabilizes_eventually(seed.wrapping_mul(0x9e37_79b9), 8);
    }
}

#[test]
#[ignore = "extended fuzz: run via the nightly CI job or with --ignored"]
fn extended_staged_pipeline_vs_offline_all_conditions() {
    for seed in 0..extended_cases() / 4 {
        check_staged_all_conditions(seed.wrapping_mul(0x9e37_79b9), 7);
    }
}
