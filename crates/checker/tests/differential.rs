//! Differential tests: the unified Wing–Gong kernel must agree with a
//! brute-force permutation checker on random small histories, for all four
//! consistency conditions (linearizability, `t`-linearizability, weak
//! consistency, eventual linearizability).
//!
//! The brute-force checker is a direct transcription of the
//! constrained-linearization question — enumerate every subset of the
//! optional operations, every permutation of the chosen operations, check
//! the precedence pairs, and replay the sequence against the (deterministic)
//! sequential specifications — with none of the kernel's machinery: no
//! memoization, no interning, no interchangeability classes, no locality
//! decomposition.  Seeded and deterministic.

use evlin_checker::kernel::{self, ConsistencyCondition, SearchLimits, SearchProblem};
use evlin_checker::weak_consistency::{self, WeakOperation};
use evlin_checker::{eventual, linearizability, t_linearizability};
use evlin_history::{History, HistoryBuilder, ObjectUniverse, ProcessId};
use evlin_spec::{FetchIncrement, Register, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Brute-force decision of a [`SearchProblem`] over deterministic object
/// types: try every subset of optional operations and every permutation of
/// the chosen operations.
fn brute_force(problem: &SearchProblem, universe: &ObjectUniverse) -> bool {
    let n = problem.ops.len();
    let optional: Vec<usize> = (0..n).filter(|&i| !problem.ops[i].required).collect();
    let required: Vec<usize> = (0..n).filter(|&i| problem.ops[i].required).collect();
    for mask in 0..(1usize << optional.len()) {
        let mut chosen = required.clone();
        for (bit, &op) in optional.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                chosen.push(op);
            }
        }
        if some_permutation_is_legal(&mut chosen, 0, problem, universe) {
            return true;
        }
    }
    false
}

/// Recursively enumerates every permutation of `chosen[at..]` (plain
/// swap-based enumeration) and checks each complete arrangement.
fn some_permutation_is_legal(
    chosen: &mut Vec<usize>,
    at: usize,
    problem: &SearchProblem,
    universe: &ObjectUniverse,
) -> bool {
    if at == chosen.len() {
        return arrangement_is_legal(chosen, problem, universe);
    }
    for swap in at..chosen.len() {
        chosen.swap(at, swap);
        if some_permutation_is_legal(chosen, at + 1, problem, universe) {
            chosen.swap(at, swap);
            return true;
        }
        chosen.swap(at, swap);
    }
    false
}

/// Checks one arrangement: every precedence pair with both ends present must
/// be ordered accordingly, and replaying the operations against the
/// deterministic specifications must produce every fixed response.
fn arrangement_is_legal(
    arrangement: &[usize],
    problem: &SearchProblem,
    universe: &ObjectUniverse,
) -> bool {
    let pos = |op: usize| arrangement.iter().position(|&x| x == op);
    for &(i, j) in &problem.precedence {
        if let (Some(pi), Some(pj)) = (pos(i), pos(j)) {
            if pi >= pj {
                return false;
            }
        }
    }
    let mut states: Vec<Value> = universe
        .object_ids()
        .iter()
        .map(|id| universe.initial_state(*id).clone())
        .collect();
    for &op in arrangement {
        let cop = &problem.ops[op];
        let object = cop.record.object;
        let ty = universe.object_type(object);
        assert!(
            ty.is_deterministic(),
            "the brute-force replay assumes deterministic types"
        );
        let (response, next) = ty
            .apply_deterministic(&states[object.index()], &cop.record.invocation)
            .expect("valid invocation on a deterministic type");
        if let Some(fixed) = &cop.fixed_response {
            if &response != fixed {
                return false;
            }
        }
        states[object.index()] = next;
    }
    true
}

/// Generates a random well-formed history over a register and a
/// fetch&increment object: random interleaving, noisy responses, possibly
/// pending operations.
fn random_history(seed: u64, max_ops: usize) -> History {
    let mut rng = StdRng::seed_from_u64(seed);
    let r = evlin_history::ObjectId(0);
    let x = evlin_history::ObjectId(1);
    let processes = rng.gen_range(2..4usize);
    let total_ops = rng.gen_range(2..=max_ops);
    // Plan per-process invocation lists.
    let mut plans: Vec<Vec<evlin_spec::Invocation>> = vec![Vec::new(); processes];
    for _ in 0..total_ops {
        let p = rng.gen_range(0..processes);
        let inv = match rng.gen_range(0..3u32) {
            0 => Register::write(Value::from(rng.gen_range(1..4i64))),
            1 => Register::read(),
            _ => FetchIncrement::fetch_inc(),
        };
        plans[p].push(inv);
    }
    // Interleave invocations and (noisy) responses at random; operations
    // still pending when the step budget runs out stay pending.
    let mut b = HistoryBuilder::new();
    let mut next_op: Vec<usize> = vec![0; processes];
    let mut pending: Vec<Option<evlin_spec::Invocation>> = vec![None; processes];
    let object_of = |inv: &evlin_spec::Invocation| if inv.method() == "fetch_inc" { x } else { r };
    for _ in 0..total_ops * 8 {
        let p = rng.gen_range(0..processes);
        if let Some(inv) = pending[p].clone() {
            if rng.gen_bool(0.7) {
                let response = if inv.method() == "write" {
                    Value::Unit
                } else {
                    Value::from(rng.gen_range(0..4i64))
                };
                b = b.respond(ProcessId(p), object_of(&inv), response);
                pending[p] = None;
            }
        } else if next_op[p] < plans[p].len() {
            let inv = plans[p][next_op[p]].clone();
            next_op[p] += 1;
            b = b.invoke(ProcessId(p), object_of(&inv), inv.clone());
            pending[p] = Some(inv);
        }
    }
    b.build()
}

fn differential_universe() -> ObjectUniverse {
    let mut u = ObjectUniverse::new();
    u.add_object(Register::new(Value::from(0i64)));
    u.add_object(FetchIncrement::new());
    u
}

const SEEDS: u64 = 40;
const MAX_OPS: usize = 6;

/// Number of cases for the `#[ignore]`d extended (nightly-fuzz) tests, from
/// `EVLIN_DIFF_CASES` (default 2000).
fn extended_cases() -> u64 {
    std::env::var("EVLIN_DIFF_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(2000)
}

fn assert_linearizability_agrees(u: &ObjectUniverse, seed: u64) {
    let h = random_history(seed, MAX_OPS);
    let problem = linearizability::Linearizability.problem(&h);
    let brute = brute_force(&problem, u);
    let fast = linearizability::is_linearizable(&h, u);
    assert_eq!(fast, brute, "linearizability mismatch (seed {seed})\n{h}");
    // The locality pre-pass and the undecomposed kernel must agree too.
    let global = kernel::check(
        &linearizability::Linearizability,
        &h,
        u,
        SearchLimits::default(),
    );
    assert_eq!(
        global.is_yes(),
        brute,
        "global kernel mismatch (seed {seed})\n{h}"
    );
}

fn assert_t_linearizability_agrees(u: &ObjectUniverse, seed: u64) {
    let h = random_history(seed, MAX_OPS);
    for t in 0..=h.len() {
        let problem = t_linearizability::problem_for(&h, t);
        let brute = brute_force(&problem, u);
        let fast = t_linearizability::is_t_linearizable(&h, u, t);
        assert_eq!(
            fast, brute,
            "t-linearizability mismatch (seed {seed}, t {t})\n{h}"
        );
    }
}

fn assert_min_stabilization_agrees(u: &ObjectUniverse, seed: u64) {
    let h = random_history(seed, MAX_OPS);
    let brute_min = (0..=h.len()).find(|&t| brute_force(&t_linearizability::problem_for(&h, t), u));
    let fast_min = t_linearizability::min_stabilization(&h, u, None);
    assert_eq!(
        fast_min, brute_min,
        "stabilization mismatch (seed {seed})\n{h}"
    );
}

fn assert_weak_consistency_agrees(u: &ObjectUniverse, seed: u64) {
    let h = random_history(seed, MAX_OPS);
    let mut brute_violations = Vec::new();
    for op in h.operations().iter().filter(|op| op.is_complete()) {
        let problem = WeakOperation { op: op.id }.problem(&h);
        if !brute_force(&problem, u) {
            brute_violations.push(op.id);
        }
    }
    let fast_violations = weak_consistency::violations(&h, u);
    assert_eq!(
        fast_violations, brute_violations,
        "weak-consistency mismatch (seed {seed})\n{h}"
    );
    assert_eq!(
        weak_consistency::is_weakly_consistent(&h, u),
        brute_violations.is_empty(),
        "locality pre-pass mismatch (seed {seed})\n{h}"
    );
}

fn assert_eventual_agrees(u: &ObjectUniverse, seed: u64) {
    let h = random_history(seed, MAX_OPS);
    let brute_weak = h
        .operations()
        .iter()
        .filter(|op| op.is_complete())
        .all(|op| brute_force(&WeakOperation { op: op.id }.problem(&h), u));
    let brute_liveness = brute_force(&eventual::StabilizesEventually.problem(&h), u);
    let report = eventual::analyze(&h, u);
    assert_eq!(
        report.is_eventually_linearizable(),
        brute_weak && brute_liveness,
        "eventual-linearizability mismatch (seed {seed})\n{h}"
    );
}

/// Scratch-reuse / incremental-key cross-check: solving a stream of seeded
/// problems through ONE reused [`kernel::KernelScratch`] must give exactly
/// the verdicts and node counters of fresh-scratch solves.  This is the
/// differential mode for the pooled-buffer and incremental visited-key
/// refactor — a stale pooled table or a drifting Zobrist key shows up as a
/// verdict or counter mismatch (and the kernel additionally re-derives the
/// key from scratch on every apply/retract under `debug_assertions`, which
/// this test therefore exercises on every visited state).
fn assert_scratch_reuse_agrees(u: &ObjectUniverse, seeds: impl Iterator<Item = u64>) {
    let mut reused = kernel::KernelScratch::new();
    let limits = SearchLimits::default();
    for seed in seeds {
        let h = random_history(seed, MAX_OPS);
        for t in [0, h.len() / 2] {
            let problem = t_linearizability::problem_for(&h, t);
            let (fresh_result, fresh_stats) =
                kernel::solve_with_scratch(&problem, u, limits, &mut kernel::KernelScratch::new());
            let (reused_result, reused_stats) =
                kernel::solve_with_scratch(&problem, u, limits, &mut reused);
            assert_eq!(
                fresh_result.is_yes(),
                reused_result.is_yes(),
                "scratch reuse changed the verdict (seed {seed}, t {t})\n{h}"
            );
            assert_eq!(
                (fresh_stats.nodes, fresh_stats.memo_hits),
                (reused_stats.nodes, reused_stats.memo_hits),
                "scratch reuse changed the search counters (seed {seed}, t {t})\n{h}"
            );
        }
    }
}

#[test]
fn scratch_reuse_matches_fresh_scratch_verdicts() {
    let u = differential_universe();
    assert_scratch_reuse_agrees(&u, 0..SEEDS);
}

/// Nightly-fuzz version of the scratch-reuse cross-check.
#[test]
#[ignore = "extended fuzz: run via the nightly CI job or with --ignored"]
fn extended_scratch_reuse_cross_check() {
    let u = differential_universe();
    assert_scratch_reuse_agrees(
        &u,
        (0..extended_cases()).map(|i| 7_000 + i.wrapping_mul(0x9e37_79b9)),
    );
}

#[test]
fn kernel_agrees_with_brute_force_on_linearizability() {
    let u = differential_universe();
    for seed in 0..SEEDS {
        assert_linearizability_agrees(&u, seed);
    }
}

#[test]
fn kernel_agrees_with_brute_force_on_t_linearizability() {
    let u = differential_universe();
    for seed in 0..SEEDS {
        assert_t_linearizability_agrees(&u, seed);
    }
}

#[test]
fn kernel_agrees_with_brute_force_on_min_stabilization() {
    let u = differential_universe();
    for seed in 0..SEEDS {
        assert_min_stabilization_agrees(&u, seed);
    }
}

#[test]
fn kernel_agrees_with_brute_force_on_weak_consistency() {
    let u = differential_universe();
    for seed in 0..SEEDS {
        assert_weak_consistency_agrees(&u, seed);
    }
}

#[test]
fn kernel_agrees_with_brute_force_on_eventual_linearizability() {
    let u = differential_universe();
    for seed in 0..SEEDS {
        assert_eventual_agrees(&u, seed);
    }
}

/// The nightly-fuzz version: `EVLIN_DIFF_CASES` fresh seeds (disjoint from
/// the PR-build range) through every condition's brute-force comparison.
#[test]
#[ignore = "extended fuzz: run via the nightly CI job or with --ignored"]
fn extended_kernel_vs_brute_force_all_conditions() {
    let u = differential_universe();
    for i in 0..extended_cases() {
        let seed = SEEDS + i.wrapping_mul(0x9e37_79b9);
        assert_linearizability_agrees(&u, seed);
        assert_t_linearizability_agrees(&u, seed);
        assert_min_stabilization_agrees(&u, seed);
        assert_weak_consistency_agrees(&u, seed);
        assert_eventual_agrees(&u, seed);
    }
}
