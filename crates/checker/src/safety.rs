//! Safety- and liveness-property test harnesses (Section 3.2).
//!
//! The paper classifies its conditions as follows:
//!
//! * weak consistency is a **safety** property (Lemma 10): non-empty,
//!   prefix-closed and limit-closed;
//! * `t`-linearizability for a *fixed* `t > 0` is **neither** a safety nor a
//!   liveness property (the fetch&increment counterexample of Section 3.2);
//! * being `t`-linearizable for *some* `t` is a **liveness** property.
//!
//! These helpers make those classifications empirically checkable over
//! concrete (finite) histories: prefix closure is checked exhaustively, limit
//! closure is approximated over a given chain of histories.

use evlin_history::History;

/// The result of checking prefix closure of a property on a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PrefixClosure {
    /// The property held on the full history and on every prefix.
    Closed,
    /// The property did not hold on the full history, so prefix closure says
    /// nothing about it.
    NotApplicable,
    /// The property held on the full history but failed on the prefix of the
    /// given length — a witness that the property is not prefix-closed.
    ViolatedAt {
        /// Length of the offending prefix.
        prefix_len: usize,
    },
}

/// Checks whether `property` is prefix-closed on `history`: if the property
/// holds on `history`, it must hold on every prefix.
pub fn check_prefix_closure<F>(history: &History, mut property: F) -> PrefixClosure
where
    F: FnMut(&History) -> bool,
{
    if !property(history) {
        return PrefixClosure::NotApplicable;
    }
    for n in 0..history.len() {
        if !property(&history.prefix(n)) {
            return PrefixClosure::ViolatedAt { prefix_len: n };
        }
    }
    PrefixClosure::Closed
}

/// Checks limit closure of `property` along a chain `h_1 ⊑ h_2 ⊑ …` of
/// histories: if the property holds for every element of the chain, it should
/// hold for the last (longest) element, which plays the role of the limit in
/// a finite experiment.
///
/// Returns `None` if the input is not a chain (some element is not a prefix
/// of the next) and `Some(result)` otherwise, where `result` is `true` when
/// limit closure was not refuted.
pub fn check_limit_closure_on_chain<F>(chain: &[History], mut property: F) -> Option<bool>
where
    F: FnMut(&History) -> bool,
{
    for w in chain.windows(2) {
        if !w[0].is_prefix_of(&w[1]) {
            return None;
        }
    }
    let Some(last) = chain.last() else {
        return Some(true);
    };
    let all_hold = chain[..chain.len() - 1].iter().all(&mut property);
    if !all_hold {
        // The hypothesis of limit closure is not met; nothing is refuted.
        return Some(true);
    }
    Some(property(last))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{t_linearizability, weak_consistency};
    use evlin_history::{HistoryBuilder, ObjectUniverse, ProcessId};
    use evlin_spec::{FetchIncrement, Value};

    fn fi_universe() -> (ObjectUniverse, evlin_history::ObjectId) {
        let mut u = ObjectUniverse::new();
        let x = u.add_object(FetchIncrement::new());
        (u, x)
    }

    /// The history from Section 3.2: p does one fetch&inc returning 0, then q
    /// does fetch&inc forever returning 0, 1, 2, …  (truncated at `extra`
    /// operations by q).
    fn section_3_2_history(extra: i64) -> (ObjectUniverse, History) {
        let (u, x) = fi_universe();
        let mut b = HistoryBuilder::new().complete(
            ProcessId(0),
            x,
            FetchIncrement::fetch_inc(),
            Value::from(0i64),
        );
        for k in 0..extra {
            b = b.complete(ProcessId(1), x, FetchIncrement::fetch_inc(), Value::from(k));
        }
        (u, b.build())
    }

    #[test]
    fn weak_consistency_is_prefix_closed_on_examples() {
        let (u, h) = section_3_2_history(5);
        assert_eq!(
            check_prefix_closure(&h, |p| weak_consistency::is_weakly_consistent(p, &u)),
            PrefixClosure::Closed
        );
    }

    #[test]
    fn t_linearizability_is_not_limit_closed() {
        // Every finite prefix of the Section 3.2 history is 2-linearizable,
        // but longer and longer prefixes eventually require the first
        // operation to be moved past an unbounded number of later operations;
        // the *infinite* history is not 2-linearizable.  In the finite
        // experiment this shows up as: every proper prefix is 2-linearizable
        // and so is the last element (the finite limit is still fine), but
        // the minimal stabilization of prefixes never drops below 2 — i.e.
        // `0`-linearizability fails at every length while 2-linearizability
        // holds at every length.  The genuinely non-safety behaviour
        // (limit-closure failure) only appears at infinity, which we document
        // by checking that 2-linearizability holds for all prefixes here and
        // deferring the infinite argument to the paper.
        let (u, h) = section_3_2_history(6);
        for n in (0..=h.len()).step_by(2) {
            assert!(t_linearizability::is_t_linearizable(&h.prefix(n), &u, 2));
        }
        // Prefix closure, however, *does* hold for this particular history
        // and t (Lemma 6 guarantees prefix closure of t-linearizability in
        // general).
        assert_eq!(
            check_prefix_closure(&h, |p| t_linearizability::is_t_linearizable(p, &u, 2)),
            PrefixClosure::Closed
        );
    }

    #[test]
    fn limit_closure_chain_helpers() {
        let (u, h) = section_3_2_history(4);
        let chain: Vec<History> = (0..=h.len()).step_by(2).map(|n| h.prefix(n)).collect();
        // Weak consistency: holds along the chain and at the end.
        assert_eq!(
            check_limit_closure_on_chain(&chain, |p| weak_consistency::is_weakly_consistent(p, &u)),
            Some(true)
        );
        // A non-chain input is rejected.
        let not_chain = vec![h.suffix(2), h.clone()];
        assert_eq!(check_limit_closure_on_chain(&not_chain, |_| true), None);
        // Empty chain is vacuously closed.
        assert_eq!(check_limit_closure_on_chain(&[], |_| true), Some(true));
    }

    #[test]
    fn prefix_closure_not_applicable_when_property_fails_at_the_end() {
        let (u, x) = fi_universe();
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(5i64),
            )
            .build();
        assert_eq!(
            check_prefix_closure(&h, |p| weak_consistency::is_weakly_consistent(p, &u)),
            PrefixClosure::NotApplicable
        );
    }

    #[test]
    fn a_property_that_is_not_prefix_closed_is_caught() {
        let (_, h) = section_3_2_history(3);
        // "Has an even number of events" is obviously not prefix-closed.
        let result = check_prefix_closure(&h, |p| p.len() % 2 == 0);
        assert!(matches!(result, PrefixClosure::ViolatedAt { prefix_len } if prefix_len % 2 == 1));
    }
}
