//! The streaming online consistency monitor.
//!
//! Every checker in this crate so far is *offline*: it needs the whole
//! history in hand before the kernel sees a single operation.  This module
//! checks a history *while it is being produced* — events are ingested one at
//! a time, verified prefixes are garbage-collected, and resident memory is
//! bounded by the width of the concurrency window (plus the per-object state
//! frontier), not by the length of the history.
//!
//! ## Quiescent-cut segmentation
//!
//! The stream is partitioned at *quiescent cut points*: moments at which no
//! operation is pending.  A cut at event index `c` has two properties that
//! make the segments on either side independently checkable:
//!
//! 1. every operation invoked before `c` also responds before `c`, and every
//!    operation of the later segment is invoked after `c`, so the real-time
//!    order forces **all** earlier-segment operations before **all**
//!    later-segment operations in any witness linearization;
//! 2. consequently a witness for the whole history is exactly a chain of
//!    per-segment witnesses, where segment `k + 1` is checked against the
//!    object states *left behind* by segment `k`'s witness.
//!
//! Different witnesses of a segment can leave different final states (two
//! concurrent writes can be ordered either way), so the monitor threads a
//! *frontier set* — every final state vector reachable by some accepting
//! linearization, computed exhaustively by [`kernel::solve_frontiers`] — and
//! a segment is consistent iff it is satisfiable from at least one incoming
//! frontier state.  This is an exact decision procedure, not an
//! approximation: the verdict equals the offline kernel's verdict on the
//! concatenated history (the differential proptests in
//! `tests/monitor_differential.rs` pit one against the other event for
//! event).
//!
//! ## Pipelined stages
//!
//! The monitor is built as two decoupled stages so the runtime's sharded
//! ingest path can overlap checking with ingestion:
//!
//! * [`MonitorIngest`] — the per-event half: well-formedness filtering,
//!   window maintenance and quiescent-cut detection.  It is deliberately
//!   allocation-light (flat per-process pending slots, per-segment metadata
//!   tracked as events arrive) so the hot path costs a few dozen
//!   nanoseconds per event.  Closed segments accumulate into opaque
//!   [`SegmentBatch`]es.
//! * [`MonitorCheck`] — the per-segment half: frontier threading, kernel
//!   searches and the fetch&increment fast path.  Batches are `Send`, so a
//!   pipelined caller ships them to a dedicated checker thread and keeps
//!   ingesting while earlier segments are verified.
//!
//! [`Monitor`] glues the two stages back together behind the original
//! single-threaded API; [`stages`] hands them out separately.  Exactness is
//! unaffected by the split: batches are checked in FIFO order, so frontier
//! threading, t-lin floaters and the deterministic earliest-violation merge
//! behave exactly as in the inline monitor (the differential suites assert
//! verdict equality for both drivers).
//!
//! As segments close, the ingest stage also folds every event into a running
//! *stream fingerprint* ([`event_word`] packed per event, folded with the
//! same word-at-a-time batch fold as `evlin_sim::zobrist::fold_words`); the
//! fingerprint is reported in [`MonitorStats`] and gives the runtime's
//! frame-batched transport a cheap end-to-end integrity check.
//!
//! ## Locality
//!
//! Within a segment the monitor exploits the same Herlihy–Wing locality the
//! offline [`kernel::check_local`] pre-pass uses, but one step earlier: for
//! linearizability the per-object *frontiers* are independent (witness
//! composition never couples the states of distinct objects), so the monitor
//! keeps one frontier set per object and checks the per-object projections of
//! each segment independently — fanned out across objects via
//! [`crate::parallel`].  Segments of pure fetch&increment traffic take the
//! near-linear [`crate::fi`] fast path instead of the kernel, which is what
//! lets the monitor keep up with millions of real-thread counter operations
//! (experiment E11, the `monitor_throughput` bench).  Segments that touch a
//! single object (tracked at ingest) are checked by borrowing the segment
//! history directly instead of materializing a projection.
//!
//! ## The four conditions
//!
//! * [`MonitorCondition::Linearizability`] — per-object frontier threading as
//!   above.
//! * [`MonitorCondition::TLinearizability`] — Definition 2 with a fixed `t`.
//!   Operations whose response falls inside the forgiven prefix (the first
//!   `t` events) have no precedence constraints at all, so they may be
//!   linearized in *any* later segment; the monitor carries them across cuts
//!   as "floaters" (optional in every segment, mandatory by the end) and the
//!   frontier entries additionally record which floaters are still unplaced.
//!   The first cut is deferred until the stream has passed event `t`, so all
//!   floaters are discovered inside the first segment.
//! * [`MonitorCondition::WeakConsistency`] — Definition 1 is checked per
//!   completed operation, and its justification may reach arbitrarily far
//!   back in the history; but it only sees past operations through their
//!   *invocation multiset* (identities never matter to the kernel), so the
//!   monitor summarizes the past as bounded per-object and per-process
//!   invocation counters and rebuilds each operation's search problem from
//!   the counters — exact, with O(distinct invocations) resident memory.
//!   The per-operation checks of a segment are independent and are fanned
//!   out via [`crate::parallel`].
//! * [`MonitorCondition::StabilizesEventually`] — the liveness half of
//!   eventual linearizability (`t`-linearizable for *some* `t`, i.e. all
//!   responses and real-time order forgiven) likewise only depends on the
//!   multiset of invocations; the monitor accumulates counters and decides at
//!   [`Monitor::finish`].
//!
//! ## Example
//!
//! ```
//! use evlin_checker::monitor::{Monitor, MonitorConfig, MonitorVerdict};
//! use evlin_history::{ObjectUniverse, ObjectId, ProcessId};
//! use evlin_spec::{FetchIncrement, Value};
//!
//! let mut universe = ObjectUniverse::new();
//! let x = universe.add_object(FetchIncrement::new());
//! let mut monitor = Monitor::new(universe, MonitorConfig::default());
//!
//! // Feed a live stream of events; the monitor checks closed segments as it
//! // goes and drops them afterwards.
//! monitor.invoke(ProcessId(0), x, FetchIncrement::fetch_inc()).unwrap();
//! monitor.respond(ProcessId(0), x, Value::from(0i64)).unwrap();
//! monitor.invoke(ProcessId(1), x, FetchIncrement::fetch_inc()).unwrap();
//! monitor.respond(ProcessId(1), x, Value::from(1i64)).unwrap();
//!
//! let report = monitor.finish();
//! assert!(matches!(report.verdict, MonitorVerdict::Ok));
//! ```
//!
//! Pipelined drivers split the stages instead:
//!
//! ```
//! use evlin_checker::monitor::{stages, MonitorConfig};
//! use evlin_history::{ObjectUniverse, ProcessId};
//! use evlin_spec::{FetchIncrement, Value};
//!
//! let mut universe = ObjectUniverse::new();
//! let x = universe.add_object(FetchIncrement::new());
//! let (mut ingest, mut check) = stages(universe, MonitorConfig::default());
//! for k in 0..10i64 {
//!     ingest.invoke(ProcessId(0), x, FetchIncrement::fetch_inc()).unwrap();
//!     ingest.respond(ProcessId(0), x, Value::from(k)).unwrap();
//!     if let Some(batch) = ingest.take_ready_batch() {
//!         check.check_batch(batch); // in a pipeline: on another thread
//!     }
//! }
//! let (tail, summary) = ingest.finish();
//! let report = check.finish(tail, summary);
//! assert!(report.verdict.is_ok());
//! ```

use crate::kernel::{
    self, ConsistencyCondition, ConstrainedOp, KernelScratch, SearchLimits, SearchProblem,
    SearchResult, SearchStats,
};
use crate::t_linearizability::TLinearizability;
use crate::util::{fold_words, hash_of, mix};
use crate::{fi, parallel};
use evlin_history::{
    Event, EventKind, History, ObjectId, ObjectUniverse, OpId, OperationRecord, ProcessId,
};
use evlin_spec::{Invocation, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

// ---------------------------------------------------------------------------
// Configuration and reporting types
// ---------------------------------------------------------------------------

/// Which consistency condition the monitor enforces on the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MonitorCondition {
    /// Classical linearizability (`t = 0`), with per-object frontier
    /// threading and the fetch&increment fast path.
    Linearizability,
    /// `t`-linearizability (Definition 2) for a fixed `t`.
    TLinearizability {
        /// The number of initial events forgiven.
        t: usize,
    },
    /// Weak consistency (Definition 1), one check per completed operation.
    WeakConsistency,
    /// The liveness half of eventual linearizability: `t`-linearizable for
    /// some `t` (decided at [`Monitor::finish`]).
    StabilizesEventually,
}

/// Tuning knobs for a [`Monitor`].
#[derive(Debug, Clone, Copy)]
pub struct MonitorConfig {
    /// The condition to enforce.
    pub condition: MonitorCondition,
    /// Node budget per kernel search.
    pub limits: SearchLimits,
    /// Do not cut before the open window holds at least this many events
    /// (delaying a cut is always sound; larger segments amortize per-segment
    /// overhead at the price of a larger resident window).
    pub min_segment_events: usize,
    /// Check-and-GC automatically once this many closed segments queue up.
    pub segment_batch: usize,
    /// Upper bound on tracked frontier entries; exceeding it makes the
    /// verdict [`MonitorVerdict::Unknown`] instead of exhausting memory.
    pub max_frontiers: usize,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            condition: MonitorCondition::Linearizability,
            limits: SearchLimits::default(),
            min_segment_events: 1,
            segment_batch: 64,
            max_frontiers: 4096,
        }
    }
}

impl MonitorConfig {
    /// A default configuration for the given condition.
    pub fn for_condition(condition: MonitorCondition) -> Self {
        MonitorConfig {
            condition,
            ..MonitorConfig::default()
        }
    }
}

/// A consistency violation detected by the monitor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorViolation {
    /// Global index of the first event of the offending segment.
    pub segment_start: usize,
    /// Number of events in the offending segment.
    pub segment_len: usize,
    /// The object on which the violation was localized, if the check was
    /// per-object.
    pub object: Option<ObjectId>,
    /// The violating operation (weak-consistency mode), numbered by global
    /// invocation order exactly like [`History::operations`].
    pub op: Option<OpId>,
    /// Human-readable description.
    pub detail: String,
}

impl fmt::Display for MonitorViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "violation in events [{}, {}): {}",
            self.segment_start,
            self.segment_start + self.segment_len,
            self.detail
        )
    }
}

/// The monitor's verdict over everything ingested so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorVerdict {
    /// Every closed segment (and, after [`Monitor::finish`], the whole
    /// stream) satisfies the condition.
    Ok,
    /// A definite violation was found.
    Violation(MonitorViolation),
    /// A search exhausted its node budget or the frontier cap was hit; the
    /// stream could not be fully verified.
    Unknown,
}

impl MonitorVerdict {
    /// `true` iff the verdict is [`MonitorVerdict::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, MonitorVerdict::Ok)
    }
}

/// Counters describing a monitoring run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Events ingested.
    pub events: usize,
    /// Completed operations whose verdict has been established.
    pub checked_ops: usize,
    /// Segments closed at quiescent cut points (including the final one).
    pub segments: usize,
    /// Largest number of events resident at once (open window plus queued
    /// closed segments) — the monitor's memory high-water mark, which stays
    /// bounded by the concurrency window rather than the history length.
    pub peak_window_events: usize,
    /// Segments decided by the near-linear fetch&increment fast path.
    pub fast_path_segments: usize,
    /// Running fingerprint of the ingested stream: every event is packed
    /// into one word ([`event_word`]) and segments are folded in order with
    /// the batch fold mirrored from `evlin_sim::zobrist::fold_words`.  Two
    /// monitors with the same configuration agree on this value iff they saw
    /// the same event sequence — the end-to-end integrity check of the
    /// frame-batched transport.
    pub stream_fingerprint: u64,
    /// Kernel search counters summed over all segment checks.
    pub search: SearchStats,
}

/// The final report of a monitoring run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MonitorReport {
    /// The verdict.
    pub verdict: MonitorVerdict,
    /// The counters.
    pub stats: MonitorStats,
}

/// An ill-formed input stream (the online analogue of
/// [`History::is_well_formed`] failing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MonitorError {
    /// A process invoked an operation while it already had one pending.
    InvokeWhilePending {
        /// The offending process.
        process: ProcessId,
        /// Global index of the offending event.
        global_index: usize,
    },
    /// A response arrived with no matching pending invocation (or on a
    /// different object than the pending invocation).
    OrphanResponse {
        /// The offending process.
        process: ProcessId,
        /// Global index of the offending event.
        global_index: usize,
    },
}

impl fmt::Display for MonitorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MonitorError::InvokeWhilePending {
                process,
                global_index,
            } => write!(
                f,
                "event {global_index}: {process} invoked while an operation was pending"
            ),
            MonitorError::OrphanResponse {
                process,
                global_index,
            } => write!(
                f,
                "event {global_index}: response by {process} matches no pending invocation"
            ),
        }
    }
}

impl std::error::Error for MonitorError {}

// ---------------------------------------------------------------------------
// Stream fingerprinting
// ---------------------------------------------------------------------------

/// Domain-separation word for invocation events in [`event_word`].
const TAG_WORD_INVOKE: u64 = 0x6576_7431_0000_0011;
/// Domain-separation word for response events in [`event_word`].
const TAG_WORD_RESPOND: u64 = 0x6576_7432_0000_0012;

/// Packs one event into a single fingerprint word.
///
/// The word is a pure function of `(kind, process, object, payload)`, so the
/// fold of a stream's words identifies the stream (up to hash collisions).
/// Integer responses — the overwhelming majority on the counter workloads —
/// use the value directly as the payload; everything else goes through the
/// checker's Fx content hash.  The runtime's frame transport uses this to
/// double-check that the k-way merge reassembled exactly the recorded
/// sequence (segment keys on the monitor side, frame fingerprints on the
/// sender side share the same fold).
pub fn event_word(event: &Event) -> u64 {
    let (tag, payload) = match &event.kind {
        EventKind::Invoke(invocation) => (TAG_WORD_INVOKE, hash_of(invocation)),
        EventKind::Respond(value) => (
            TAG_WORD_RESPOND,
            match value.as_int() {
                Some(i) => i as u64,
                None => hash_of(value),
            },
        ),
    };
    let slot = ((event.process.0 as u64) << 32) ^ (event.object.0 as u64);
    mix(tag ^ mix(slot ^ mix(payload)))
}

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

/// A closed segment awaiting its check.
struct Segment {
    /// Global index of the segment's first event.
    start: usize,
    /// The events.
    history: History,
    /// Distinct objects the segment touches, tracked at ingest so the check
    /// stage never rescans events to discover them.
    objects: Vec<ObjectId>,
    /// Number of completed operations (= response events), tracked at
    /// ingest; replaces per-check `complete_operations()` materialization.
    completed: usize,
    /// Stream fingerprint folded up to and including this segment.
    key: u64,
}

/// An opaque batch of closed segments in flight from [`MonitorIngest`] to
/// [`MonitorCheck`].  Batches are `Send`: a pipelined driver ships them over
/// a channel to a dedicated checker thread, in FIFO order.
pub struct SegmentBatch {
    segments: Vec<Segment>,
    /// Whether the last segment is the stream tail (possibly non-quiescent,
    /// possibly empty) produced by [`MonitorIngest::finish`].
    is_final: bool,
}

impl SegmentBatch {
    /// Number of segments in the batch.
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the batch holds no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total number of events across the batch's segments.
    pub fn events(&self) -> usize {
        self.segments.iter().map(|s| s.history.len()).sum()
    }

    /// The segments' keys: the stream fingerprint folded up to and including
    /// each segment (see [`MonitorStats::stream_fingerprint`]).  The last key
    /// of the final batch *is* the stream fingerprint; transports that frame
    /// the stream can spot-check their reassembly against these mid-stream.
    pub fn segment_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.segments.iter().map(|s| s.key)
    }
}

/// End-of-stream accounting handed from [`MonitorIngest::finish`] to
/// [`MonitorCheck::finish`], so the final report carries the ingest-side
/// counters and the stabilizes-eventually decision sees the operations still
/// pending when the stream ended.
pub struct IngestSummary {
    events: usize,
    peak_window_events: usize,
    stream_fingerprint: u64,
    /// Pending `(object, invocation)` pairs at end of stream (ascending
    /// process order).  Populated only for
    /// [`MonitorCondition::StabilizesEventually`], the one mode whose
    /// decision needs them.
    pending: Vec<(ObjectId, Invocation)>,
}

impl IngestSummary {
    /// Events ingested over the whole stream.
    pub fn events(&self) -> usize {
        self.events
    }

    /// The final stream fingerprint (see [`MonitorStats::stream_fingerprint`]).
    pub fn stream_fingerprint(&self) -> u64 {
        self.stream_fingerprint
    }
}

/// A `t`-linearizability frontier: object-state overrides left behind by an
/// accepting chain of segment witnesses, plus the floaters that chain has not
/// yet linearized.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct TlFrontier {
    /// Final states of the objects touched so far (sorted by object).
    states: Vec<(ObjectId, Value)>,
    /// Forgiven-prefix operations not yet placed (sorted multiset).
    unplaced: Vec<(ObjectId, Invocation)>,
}

/// Per-condition incremental state.
enum ModeState {
    Lin {
        /// Per-object frontier state sets (absent object ⇒ still at its
        /// initial state).
        frontiers: BTreeMap<ObjectId, Vec<Value>>,
    },
    TLin {
        t: usize,
        frontiers: Vec<TlFrontier>,
    },
    Weak {
        /// Per object: how many operations with each invocation have been
        /// *invoked* so far (the optional pool of Definition 1).
        invoked: BTreeMap<ObjectId, BTreeMap<Invocation, u64>>,
        /// Per (process, object): how many operations with each invocation
        /// have *completed* (the required same-process predecessors).
        preds: BTreeMap<(ProcessId, ObjectId), BTreeMap<Invocation, u64>>,
        /// Global operation counter (invocation order), so reported [`OpId`]s
        /// match [`History::operations`] numbering.
        next_op: usize,
    },
    Stab {
        /// Per object: invocation multiset of completed operations.
        completed: BTreeMap<ObjectId, BTreeMap<Invocation, u64>>,
    },
}

/// A fabricated operation record for summarized (count-based) candidates.
/// The kernel only reads the object and the invocation; the indices are
/// chosen so no condition ever derives a precedence edge from them.
fn synth_record(object: ObjectId, invocation: Invocation, id: usize) -> OperationRecord {
    OperationRecord {
        id: OpId(id),
        process: ProcessId(usize::MAX),
        object,
        invocation,
        response: None,
        invoke_index: 0,
        respond_index: None,
    }
}

// ---------------------------------------------------------------------------
// Stage 1: ingest (well-formedness, windowing, quiescent cuts)
// ---------------------------------------------------------------------------

/// The per-event half of the monitor: well-formedness filtering, window
/// maintenance, quiescent-cut detection and stream fingerprinting.  Produces
/// [`SegmentBatch`]es for a [`MonitorCheck`] (see [`stages`]).
///
/// The hot path is allocation-free in the steady state: pending operations
/// live in flat per-process slots (no ordered map), per-segment object lists
/// and completed-operation counts are tracked as events arrive, and the
/// window vector is recycled segment to segment.
pub struct MonitorIngest {
    min_segment_events: usize,
    segment_batch: usize,
    /// `t`-linearizability defers the first cut until the stream has passed
    /// this global index (0 in every other mode).
    cut_floor: usize,
    /// Whether pending invocation values must be retained for the final
    /// summary (stabilizes-eventually needs them; the other modes skip the
    /// clone on the hot path).
    track_invocations: bool,
    /// The open window: events since the last cut.
    window: Vec<Event>,
    /// Global index of the first window event.
    window_start: usize,
    /// One packed fingerprint word per window event.
    word_buf: Vec<u64>,
    /// Distinct objects in the open window (tiny; linear scan beats a set).
    window_objects: Vec<ObjectId>,
    /// Response events in the open window.
    window_completed: usize,
    /// Pending operation's object per process, indexed by `ProcessId.0`.
    pending_objects: Vec<Option<ObjectId>>,
    /// Pending invocations (only maintained when `track_invocations`).
    pending_invocations: Vec<Option<Invocation>>,
    pending_count: usize,
    /// Closed segments awaiting [`MonitorIngest::take_batch`].
    closed: Vec<Segment>,
    /// Total events in `closed`.
    queued_events: usize,
    events: usize,
    peak_window_events: usize,
    /// Fingerprint folded over every closed segment so far.
    stream_fp: u64,
}

impl fmt::Debug for MonitorIngest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorIngest")
            .field("window", &self.window.len())
            .field("window_start", &self.window_start)
            .field("pending", &self.pending_count)
            .field("queued_segments", &self.closed.len())
            .field("events", &self.events)
            .finish()
    }
}

impl MonitorIngest {
    fn new(config: &MonitorConfig) -> Self {
        MonitorIngest {
            min_segment_events: config.min_segment_events.max(1),
            segment_batch: config.segment_batch.max(1),
            cut_floor: match config.condition {
                MonitorCondition::TLinearizability { t } => t,
                _ => 0,
            },
            track_invocations: matches!(config.condition, MonitorCondition::StabilizesEventually),
            window: Vec::new(),
            window_start: 0,
            word_buf: Vec::new(),
            window_objects: Vec::new(),
            window_completed: 0,
            pending_objects: Vec::new(),
            pending_invocations: Vec::new(),
            pending_count: 0,
            closed: Vec::new(),
            queued_events: 0,
            events: 0,
            peak_window_events: 0,
            stream_fp: 0,
        }
    }

    /// Ingests an invocation event (see [`MonitorIngest::ingest`]).
    ///
    /// # Errors
    ///
    /// Returns a [`MonitorError`] if the event makes the stream ill-formed.
    pub fn invoke(
        &mut self,
        process: ProcessId,
        object: ObjectId,
        invocation: Invocation,
    ) -> Result<(), MonitorError> {
        self.ingest(Event::invoke(process, object, invocation))
    }

    /// Ingests a response event (see [`MonitorIngest::ingest`]).
    ///
    /// # Errors
    ///
    /// Returns a [`MonitorError`] if the event makes the stream ill-formed.
    pub fn respond(
        &mut self,
        process: ProcessId,
        object: ObjectId,
        value: Value,
    ) -> Result<(), MonitorError> {
        self.ingest(Event::respond(process, object, value))
    }

    /// Ingests one event, closing the window at quiescent cut points.
    ///
    /// # Errors
    ///
    /// Returns a [`MonitorError`] if the event makes the stream ill-formed
    /// (the event is not ingested; the stage remains usable).
    pub fn ingest(&mut self, event: Event) -> Result<(), MonitorError> {
        let global_index = self.window_start + self.window.len();
        let p = event.process.0;
        match &event.kind {
            EventKind::Invoke(invocation) => {
                if self.pending_objects.len() <= p {
                    self.pending_objects.resize(p + 1, None);
                    if self.track_invocations {
                        self.pending_invocations.resize(p + 1, None);
                    }
                }
                if self.pending_objects[p].is_some() {
                    return Err(MonitorError::InvokeWhilePending {
                        process: event.process,
                        global_index,
                    });
                }
                self.pending_objects[p] = Some(event.object);
                if self.track_invocations {
                    self.pending_invocations[p] = Some(invocation.clone());
                }
                self.pending_count += 1;
            }
            EventKind::Respond(_) => match self.pending_objects.get(p).copied().flatten() {
                Some(object) if object == event.object => {
                    self.pending_objects[p] = None;
                    if self.track_invocations {
                        self.pending_invocations[p] = None;
                    }
                    self.pending_count -= 1;
                    self.window_completed += 1;
                }
                _ => {
                    return Err(MonitorError::OrphanResponse {
                        process: event.process,
                        global_index,
                    });
                }
            },
        }
        if !self.window_objects.contains(&event.object) {
            self.window_objects.push(event.object);
        }
        self.word_buf.push(event_word(&event));
        self.window.push(event);
        self.events += 1;
        let resident = self.window.len() + self.queued_events;
        if resident > self.peak_window_events {
            self.peak_window_events = resident;
        }
        if self.pending_count == 0
            && self.window.len() >= self.min_segment_events
            && self.window_start + self.window.len() >= self.cut_floor
        {
            self.close_window();
        }
        Ok(())
    }

    /// Number of events ingested so far.
    pub fn events(&self) -> usize {
        self.events
    }

    /// Takes the queued segments as a batch once at least
    /// [`MonitorConfig::segment_batch`] of them have closed; `None` below
    /// the threshold.  This is the pipelined analogue of the inline
    /// monitor's automatic pump.
    pub fn take_ready_batch(&mut self) -> Option<SegmentBatch> {
        if self.closed.len() >= self.segment_batch {
            self.take_batch()
        } else {
            None
        }
    }

    /// Takes whatever segments have closed so far as a batch (`None` when
    /// none have) — the pipelined analogue of [`Monitor::pump`].
    pub fn take_batch(&mut self) -> Option<SegmentBatch> {
        if self.closed.is_empty() {
            return None;
        }
        self.queued_events = 0;
        Some(SegmentBatch {
            segments: std::mem::take(&mut self.closed),
            is_final: false,
        })
    }

    /// Closes the stream: the remaining window becomes the final (possibly
    /// non-quiescent, possibly empty) tail segment of the returned batch,
    /// and the summary carries the ingest-side counters for
    /// [`MonitorCheck::finish`].
    pub fn finish(mut self) -> (SegmentBatch, IngestSummary) {
        let key = fold_words(self.stream_fp, &self.word_buf);
        self.stream_fp = key;
        self.word_buf.clear();
        let tail = Segment {
            start: self.window_start,
            history: History::from_events(std::mem::take(&mut self.window)),
            objects: std::mem::take(&mut self.window_objects),
            completed: self.window_completed,
            key,
        };
        let mut segments = std::mem::take(&mut self.closed);
        segments.push(tail);
        let pending = self
            .pending_objects
            .iter()
            .zip(
                self.pending_invocations
                    .iter()
                    .chain(std::iter::repeat(&None)),
            )
            .filter_map(|(object, invocation)| Some(((*object)?, invocation.clone()?)))
            .collect();
        (
            SegmentBatch {
                segments,
                is_final: true,
            },
            IngestSummary {
                events: self.events,
                peak_window_events: self.peak_window_events,
                stream_fingerprint: self.stream_fp,
                pending,
            },
        )
    }

    fn close_window(&mut self) {
        let events = std::mem::take(&mut self.window);
        let start = self.window_start;
        self.window_start = start + events.len();
        self.queued_events += events.len();
        let key = fold_words(self.stream_fp, &self.word_buf);
        self.stream_fp = key;
        self.word_buf.clear();
        self.closed.push(Segment {
            start,
            history: History::from_events(events),
            objects: std::mem::take(&mut self.window_objects),
            completed: std::mem::replace(&mut self.window_completed, 0),
            key,
        });
    }
}

// ---------------------------------------------------------------------------
// Stage 2: check (frontier threading, kernel searches)
// ---------------------------------------------------------------------------

/// The per-segment half of the monitor: consumes [`SegmentBatch`]es in FIFO
/// order, threads frontiers across segments and renders verdicts.  See
/// [`stages`].
pub struct MonitorCheck {
    universe: ObjectUniverse,
    limits: SearchLimits,
    max_frontiers: usize,
    mode: ModeState,
    violation: Option<MonitorViolation>,
    /// Some search was cut off; a subsequent "no" cannot be trusted.
    incomplete: bool,
    /// `events`, `peak_window_events` and `stream_fingerprint` belong to the
    /// ingest stage and are merged in at [`MonitorCheck::finish`] (or by
    /// [`Monitor::stats`]); everything else is authored here.
    stats: MonitorStats,
    /// One pooled kernel scratch per object for the linearizability mode's
    /// per-object chains, threaded through the parallel fan-out and back so
    /// the visited caches and arenas are reused across segment *batches* —
    /// the per-segment memory high-water mark stays flat as the stream grows
    /// (asserted by the `arena_reuse_keeps_peak_bytes_flat` test).
    lin_scratch: BTreeMap<ObjectId, KernelScratch>,
    /// Pooled scratch for the sequential (t-linearizability) chains.
    scratch: KernelScratch,
}

impl fmt::Debug for MonitorCheck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MonitorCheck")
            .field("stats", &self.stats)
            .field("violation", &self.violation)
            .finish()
    }
}

impl MonitorCheck {
    fn new(universe: ObjectUniverse, config: &MonitorConfig) -> Self {
        let mode = match config.condition {
            MonitorCondition::Linearizability => ModeState::Lin {
                frontiers: BTreeMap::new(),
            },
            MonitorCondition::TLinearizability { t } => ModeState::TLin {
                t,
                frontiers: vec![TlFrontier {
                    states: Vec::new(),
                    unplaced: Vec::new(),
                }],
            },
            MonitorCondition::WeakConsistency => ModeState::Weak {
                invoked: BTreeMap::new(),
                preds: BTreeMap::new(),
                next_op: 0,
            },
            MonitorCondition::StabilizesEventually => ModeState::Stab {
                completed: BTreeMap::new(),
            },
        };
        MonitorCheck {
            universe,
            limits: config.limits,
            max_frontiers: config.max_frontiers.max(1),
            mode,
            violation: None,
            incomplete: false,
            stats: MonitorStats::default(),
            lin_scratch: BTreeMap::new(),
            scratch: KernelScratch::new(),
        }
    }

    /// The universe the monitor checks against.
    pub fn universe(&self) -> &ObjectUniverse {
        &self.universe
    }

    /// The verdict over everything checked so far.
    pub fn verdict_so_far(&self) -> MonitorVerdict {
        match &self.violation {
            Some(v) => MonitorVerdict::Violation(v.clone()),
            None if self.incomplete => MonitorVerdict::Unknown,
            None => MonitorVerdict::Ok,
        }
    }

    /// Checks one (non-final) batch of closed segments and reclaims their
    /// memory.  Batches must arrive in the order the ingest stage produced
    /// them; after a violation, further batches are discarded unchecked.
    pub fn check_batch(&mut self, batch: SegmentBatch) {
        debug_assert!(!batch.is_final, "final batches go through finish()");
        self.drain_batch(&batch.segments, false);
    }

    /// Consumes the final batch from [`MonitorIngest::finish`] and renders
    /// the report.  The verdict equals the corresponding offline checker's
    /// verdict on the concatenation of every ingested event.
    pub fn finish(mut self, tail: SegmentBatch, summary: IngestSummary) -> MonitorReport {
        debug_assert!(
            tail.is_final,
            "finish() requires the ingest stage's final batch"
        );
        self.drain_batch(&tail.segments, true);
        // Mode-specific wrap-up for the summarized conditions.
        if self.violation.is_none() {
            if let ModeState::Stab { .. } = &self.mode {
                self.finish_stab(&summary.pending);
            }
        }
        let mut stats = self.stats;
        stats.events = summary.events;
        stats.peak_window_events = summary.peak_window_events;
        stats.stream_fingerprint = summary.stream_fingerprint;
        MonitorReport {
            verdict: self.verdict_so_far(),
            stats,
        }
    }

    /// Dispatches one batch to the mode-specific drain.  `is_final` marks
    /// the last segment as the stream tail.
    fn drain_batch(&mut self, segments: &[Segment], is_final: bool) {
        if self.violation.is_some() {
            return;
        }
        let nonempty = segments.iter().filter(|s| !s.history.is_empty()).count();
        if nonempty == 0 && !is_final {
            return;
        }
        self.stats.segments += nonempty;
        match &self.mode {
            ModeState::Lin { .. } => self.drain_lin(segments, is_final),
            ModeState::TLin { .. } => self.drain_tlin(segments, is_final),
            ModeState::Weak { .. } => self.drain_weak(segments),
            ModeState::Stab { .. } => self.drain_stab(segments),
        }
    }

    /// A copy of the universe re-rooted at the given state overrides.
    fn override_universe(&self, overrides: &[(ObjectId, Value)]) -> ObjectUniverse {
        let mut u = self.universe.clone();
        for (object, state) in overrides {
            u.set_initial_state(*object, state.clone());
        }
        u
    }

    // -- linearizability ---------------------------------------------------

    /// Checks a batch of segments under linearizability: per-object frontier
    /// threading, fanned out across objects, with the fetch&increment fast
    /// path per projection.
    fn drain_lin(&mut self, segments: &[Segment], is_final: bool) {
        let ModeState::Lin { frontiers } = &self.mode else {
            unreachable!("drain_lin requires Lin mode");
        };
        // The union of per-segment object lists (tracked at ingest), sorted
        // for a deterministic fan-out order.
        let mut objects: Vec<ObjectId> = Vec::new();
        for segment in segments {
            for &object in &segment.objects {
                if !objects.contains(&object) {
                    objects.push(object);
                }
            }
        }
        objects.sort_unstable();
        let universe = &self.universe;
        let limits = self.limits;
        let max_frontiers = self.max_frontiers;
        // Move each object's pooled scratch into its parallel chain and take
        // it back with the outcome: segment batches reuse one arena per
        // object instead of churning the allocator per batch.
        let work: Vec<(ObjectId, KernelScratch)> = objects
            .iter()
            .map(|&object| (object, self.lin_scratch.remove(&object).unwrap_or_default()))
            .collect();
        let outcomes = parallel::map_par_into(work, |(object, scratch)| {
            let incoming = frontiers
                .get(&object)
                .cloned()
                .unwrap_or_else(|| vec![universe.initial_state(object).clone()]);
            chase_object_chain(
                universe,
                limits,
                max_frontiers,
                object,
                incoming,
                segments,
                is_final,
                scratch,
            )
        });
        let mut outcomes_only = Vec::with_capacity(outcomes.len());
        for (object, (outcome, scratch)) in objects.iter().zip(outcomes) {
            self.lin_scratch.insert(*object, scratch);
            outcomes_only.push(outcome);
        }
        // Merge: earliest violating segment wins (deterministically).
        let mut best: Option<(usize, ObjectId, String)> = None;
        let mut new_frontiers: Vec<(ObjectId, Vec<Value>)> = Vec::new();
        for (object, outcome) in objects.iter().zip(outcomes_only) {
            self.stats.search.absorb(outcome.stats);
            self.stats.fast_path_segments += outcome.fast_segments;
            if outcome.incomplete {
                self.incomplete = true;
            }
            if let Some((segment_index, detail)) = outcome.violation {
                let replace = match &best {
                    Some((s, _, _)) => segment_index < *s,
                    None => true,
                };
                if replace {
                    best = Some((segment_index, *object, detail));
                }
            }
            new_frontiers.push((*object, outcome.frontier));
        }
        if let Some((segment_index, object, detail)) = best {
            if self.incomplete {
                // The refutation may have relied on a truncated frontier.
                return;
            }
            // Segments before the violating one were verified.
            for segment in &segments[..segment_index] {
                self.stats.checked_ops += segment.completed;
            }
            let segment = &segments[segment_index];
            self.violation = Some(MonitorViolation {
                segment_start: segment.start,
                segment_len: segment.history.len(),
                object: Some(object),
                op: None,
                detail,
            });
            return;
        }
        let ModeState::Lin { frontiers } = &mut self.mode else {
            unreachable!();
        };
        for (object, frontier) in new_frontiers {
            frontiers.insert(object, frontier);
        }
        for segment in segments {
            self.stats.checked_ops += segment.completed;
        }
    }

    // -- t-linearizability -------------------------------------------------

    /// Checks a batch of segments under `t`-linearizability, threading
    /// `(states, unplaced floaters)` frontiers sequentially.
    fn drain_tlin(&mut self, segments: &[Segment], is_final: bool) {
        let ModeState::TLin { t, frontiers } = &self.mode else {
            unreachable!("drain_tlin requires TLin mode");
        };
        let t = *t;
        let mut current: Vec<TlFrontier> = frontiers.clone();
        let mut scratch = std::mem::take(&mut self.scratch);
        for (index, segment) in segments.iter().enumerate() {
            let final_segment = is_final && index + 1 == segments.len();
            if segment.history.is_empty() && !final_segment {
                continue;
            }
            if segment.history.is_empty() {
                // Empty tail: any frontier with no unplaced floaters is a
                // complete witness chain; otherwise the floaters must still
                // be placeable from some frontier's states.
                let placeable = current.iter().any(|fr| {
                    if fr.unplaced.is_empty() {
                        return true;
                    }
                    let ops: Vec<ConstrainedOp> = fr
                        .unplaced
                        .iter()
                        .enumerate()
                        .map(|(i, (object, invocation))| ConstrainedOp {
                            record: synth_record(*object, invocation.clone(), i),
                            required: true,
                            fixed_response: None,
                        })
                        .collect();
                    let problem = SearchProblem {
                        ops,
                        precedence: Vec::new(),
                    };
                    let uni = self.override_universe(&fr.states);
                    let (result, stats) =
                        kernel::solve_with_scratch(&problem, &uni, self.limits, &mut scratch);
                    self.stats.search.absorb(stats);
                    if matches!(result, SearchResult::Unknown) {
                        self.incomplete = true;
                    }
                    result.is_yes()
                });
                if !placeable && !self.incomplete {
                    self.violation = Some(MonitorViolation {
                        segment_start: segment.start,
                        segment_len: 0,
                        object: None,
                        op: None,
                        detail: "forgiven-prefix operations cannot be completed \
                                 by the end of the stream"
                            .to_string(),
                    });
                }
                continue;
            }
            let local_t = t.saturating_sub(segment.start);
            let condition = TLinearizability::new(local_t);
            let mut base = condition.candidates(&segment.history);
            // Forgiven-prefix operations ("floaters") may be linearized in
            // any later segment; demote them to optional-but-tracked unless
            // this is the last segment (nothing to defer to).
            let mut tracked_base: Vec<usize> = Vec::new();
            if local_t > 0 && !final_segment {
                for (i, cop) in base.iter_mut().enumerate() {
                    if cop.required
                        && cop
                            .record
                            .respond_index
                            .map(|r| r < local_t)
                            .unwrap_or(false)
                    {
                        cop.required = false;
                        tracked_base.push(i);
                    }
                }
            }
            let precedence = condition.precedence(&segment.history, &base);
            let base_len = base.len();
            let mut outgoing: BTreeSet<TlFrontier> = BTreeSet::new();
            let mut any_yes = false;
            for fr in &current {
                let mut ops = base.clone();
                let mut tracked = tracked_base.clone();
                for (j, (object, invocation)) in fr.unplaced.iter().enumerate() {
                    tracked.push(ops.len());
                    ops.push(ConstrainedOp {
                        record: synth_record(*object, invocation.clone(), base_len + j),
                        // Carried floaters must finally be placed in the last
                        // segment; before that they may keep floating.
                        required: final_segment,
                        fixed_response: None,
                    });
                }
                let problem = SearchProblem {
                    ops,
                    precedence: precedence.clone(),
                };
                let uni = self.override_universe(&fr.states);
                let (set, stats) =
                    kernel::solve_frontiers(&problem, &uni, self.limits, &tracked, &mut scratch);
                self.stats.search.absorb(stats);
                if !set.complete {
                    self.incomplete = true;
                }
                for entry in set.entries {
                    any_yes = true;
                    if final_segment {
                        continue; // nothing consumes the outgoing frontier
                    }
                    let mut states: BTreeMap<ObjectId, Value> = fr.states.iter().cloned().collect();
                    for (object, state) in entry.states {
                        states.insert(object, state);
                    }
                    let mut unplaced: Vec<(ObjectId, Invocation)> = Vec::new();
                    for (k, &op_index) in tracked.iter().enumerate() {
                        if !entry.placed[k] {
                            let record = &problem.ops[op_index].record;
                            unplaced.push((record.object, record.invocation.clone()));
                        }
                    }
                    unplaced.sort();
                    outgoing.insert(TlFrontier {
                        states: states.into_iter().collect(),
                        unplaced,
                    });
                }
            }
            if !any_yes {
                if !self.incomplete {
                    self.violation = Some(MonitorViolation {
                        segment_start: segment.start,
                        segment_len: segment.history.len(),
                        object: None,
                        op: None,
                        detail: format!(
                            "no {local_t}-linearization of the segment extends any \
                             verified frontier"
                        ),
                    });
                }
                self.scratch = scratch;
                return;
            }
            self.stats.checked_ops += segment.completed;
            if final_segment {
                break;
            }
            if outgoing.len() > self.max_frontiers {
                self.incomplete = true;
                self.scratch = scratch;
                return;
            }
            current = outgoing.into_iter().collect();
        }
        self.scratch = scratch;
        let ModeState::TLin { frontiers, .. } = &mut self.mode else {
            unreachable!();
        };
        *frontiers = current;
    }

    // -- weak consistency --------------------------------------------------

    /// Checks a batch of segments under weak consistency: replay the events
    /// against the invocation counters, emit one search problem per
    /// completed operation, and solve them all in parallel.
    fn drain_weak(&mut self, segments: &[Segment]) {
        let ModeState::Weak {
            invoked,
            preds,
            next_op,
        } = &mut self.mode
        else {
            unreachable!("drain_weak requires Weak mode");
        };
        // (op id, segment index, problem) per completed operation.
        let mut checks: Vec<(OpId, usize, SearchProblem)> = Vec::new();
        for (segment_index, segment) in segments.iter().enumerate() {
            let mut live: BTreeMap<ProcessId, (ObjectId, Invocation, usize)> = BTreeMap::new();
            for event in segment.history.events() {
                match &event.kind {
                    EventKind::Invoke(invocation) => {
                        let id = *next_op;
                        *next_op += 1;
                        live.insert(event.process, (event.object, invocation.clone(), id));
                        *invoked
                            .entry(event.object)
                            .or_default()
                            .entry(invocation.clone())
                            .or_insert(0) += 1;
                    }
                    EventKind::Respond(value) => {
                        let Some((object, invocation, id)) = live.remove(&event.process) else {
                            continue; // well-formedness was enforced at ingest
                        };
                        let problem = weak_problem(
                            invoked.get(&object),
                            preds.get(&(event.process, object)),
                            object,
                            &invocation,
                            value,
                        );
                        checks.push((OpId(id), segment_index, problem));
                        *preds
                            .entry((event.process, object))
                            .or_default()
                            .entry(invocation)
                            .or_insert(0) += 1;
                    }
                }
            }
        }
        let universe = &self.universe;
        let limits = self.limits;
        // Chunked fan-out with one pooled scratch per chunk, so the
        // per-operation searches stop churning fresh kernel tables.
        let results = parallel::map_par_chunked(
            &checks,
            32,
            KernelScratch::new,
            |scratch, (_, _, problem)| {
                kernel::solve_with_scratch(problem, universe, limits, scratch)
            },
        );
        self.stats.checked_ops += checks.len();
        let mut first: Option<(OpId, usize)> = None;
        for ((op, segment_index, _), (result, stats)) in checks.iter().zip(results) {
            self.stats.search.absorb(stats);
            match result {
                SearchResult::Yes(_) => {}
                SearchResult::Unknown => self.incomplete = true,
                SearchResult::No => {
                    if first.map(|(o, _)| *op < o).unwrap_or(true) {
                        first = Some((*op, *segment_index));
                    }
                }
            }
        }
        if let Some((op, segment_index)) = first {
            let segment = &segments[segment_index];
            self.violation = Some(MonitorViolation {
                segment_start: segment.start,
                segment_len: segment.history.len(),
                object: None,
                op: Some(op),
                detail: format!("{op} has no Definition-1 justification"),
            });
        }
    }

    // -- eventual stabilization (liveness half) ----------------------------

    /// Accumulates the invocation multisets; the decision happens in
    /// [`MonitorCheck::finish_stab`].
    fn drain_stab(&mut self, segments: &[Segment]) {
        let ModeState::Stab { completed } = &mut self.mode else {
            unreachable!("drain_stab requires Stab mode");
        };
        for segment in segments {
            let mut live: BTreeMap<ProcessId, (ObjectId, Invocation)> = BTreeMap::new();
            for event in segment.history.events() {
                match &event.kind {
                    EventKind::Invoke(invocation) => {
                        live.insert(event.process, (event.object, invocation.clone()));
                    }
                    EventKind::Respond(_) => {
                        if let Some((object, invocation)) = live.remove(&event.process) {
                            *completed
                                .entry(object)
                                .or_default()
                                .entry(invocation)
                                .or_insert(0) += 1;
                            self.stats.checked_ops += 1;
                        }
                    }
                }
            }
        }
    }

    /// Decides "stabilizes eventually": with every response and the whole
    /// real-time order forgiven, is there a legal arrangement of all
    /// completed operations (plus any subset of the pending ones)?  There
    /// are no cross-object constraints, so the objects are decided
    /// independently, in parallel.
    fn finish_stab(&mut self, pending: &[(ObjectId, Invocation)]) {
        let ModeState::Stab { completed } = &self.mode else {
            unreachable!("finish_stab requires Stab mode");
        };
        // Pending operations may optionally be completed by the witness.
        let mut pending_by_object: BTreeMap<ObjectId, BTreeMap<Invocation, u64>> = BTreeMap::new();
        for (object, invocation) in pending {
            *pending_by_object
                .entry(*object)
                .or_default()
                .entry(invocation.clone())
                .or_insert(0) += 1;
        }
        let mut objects: BTreeSet<ObjectId> = completed.keys().copied().collect();
        objects.extend(pending_by_object.keys().copied());
        let objects: Vec<ObjectId> = objects.into_iter().collect();
        let empty = BTreeMap::new();
        let universe = &self.universe;
        let limits = self.limits;
        let verdicts = parallel::map_par(&objects, |&object| {
            let mut ops: Vec<ConstrainedOp> = Vec::new();
            let groups = [
                (completed.get(&object).unwrap_or(&empty), true),
                (pending_by_object.get(&object).unwrap_or(&empty), false),
            ];
            for (counts, required) in groups {
                for (invocation, &count) in counts {
                    for _ in 0..count {
                        ops.push(ConstrainedOp {
                            record: synth_record(object, invocation.clone(), ops.len()),
                            required,
                            fixed_response: None,
                        });
                    }
                }
            }
            let problem = SearchProblem {
                ops,
                precedence: Vec::new(),
            };
            kernel::solve(&problem, universe, limits)
        });
        for (object, (result, stats)) in objects.iter().zip(verdicts) {
            self.stats.search.absorb(stats);
            match result {
                SearchResult::Yes(_) => {}
                SearchResult::Unknown => self.incomplete = true,
                SearchResult::No => {
                    if self.violation.is_none() {
                        self.violation = Some(MonitorViolation {
                            segment_start: 0,
                            segment_len: self.stats.events,
                            object: Some(*object),
                            op: None,
                            detail: format!(
                                "no legal arrangement of the completed operations on {object} \
                                 exists even with all responses forgiven"
                            ),
                        });
                    }
                }
            }
        }
    }
}

/// Builds the two pipeline stages of a monitor over `universe`: the
/// per-event [`MonitorIngest`] and the per-segment [`MonitorCheck`].  The
/// pair is exactly a [`Monitor`] taken apart — feeding every batch from one
/// into the other in FIFO order reproduces the inline monitor's verdict and
/// counters bit for bit, but the two halves may now run on different
/// threads.
pub fn stages(universe: ObjectUniverse, config: MonitorConfig) -> (MonitorIngest, MonitorCheck) {
    (
        MonitorIngest::new(&config),
        MonitorCheck::new(universe, &config),
    )
}

// ---------------------------------------------------------------------------
// The glued-together monitor
// ---------------------------------------------------------------------------

/// The streaming online consistency monitor: a [`MonitorIngest`] and a
/// [`MonitorCheck`] glued together behind a single-threaded API.  See the
/// module documentation for the segmentation argument and the per-condition
/// strategies, and [`stages`] for the pipelined two-thread form.
pub struct Monitor {
    ingest: MonitorIngest,
    check: MonitorCheck,
}

impl fmt::Debug for Monitor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Monitor")
            .field("ingest", &self.ingest)
            .field("stats", &self.stats())
            .finish()
    }
}

impl Monitor {
    /// Creates a monitor over `universe` with the given configuration.
    pub fn new(universe: ObjectUniverse, config: MonitorConfig) -> Self {
        let (ingest, check) = stages(universe, config);
        Monitor { ingest, check }
    }

    /// The universe the monitor checks against.
    pub fn universe(&self) -> &ObjectUniverse {
        self.check.universe()
    }

    /// Counters so far (ingest- and check-side merged).
    pub fn stats(&self) -> MonitorStats {
        let mut stats = self.check.stats;
        stats.events = self.ingest.events;
        stats.peak_window_events = self.ingest.peak_window_events;
        stats.stream_fingerprint = self.ingest.stream_fp;
        stats
    }

    /// The verdict over everything *checked* so far (closed segments only;
    /// call [`Monitor::finish`] for the verdict over the whole stream).
    pub fn verdict_so_far(&self) -> MonitorVerdict {
        self.check.verdict_so_far()
    }

    /// Ingests an invocation event.
    ///
    /// # Errors
    ///
    /// Returns a [`MonitorError`] if the event makes the stream ill-formed.
    pub fn invoke(
        &mut self,
        process: ProcessId,
        object: ObjectId,
        invocation: Invocation,
    ) -> Result<(), MonitorError> {
        self.ingest(Event::invoke(process, object, invocation))
    }

    /// Ingests a response event.
    ///
    /// # Errors
    ///
    /// Returns a [`MonitorError`] if the event makes the stream ill-formed.
    pub fn respond(
        &mut self,
        process: ProcessId,
        object: ObjectId,
        value: Value,
    ) -> Result<(), MonitorError> {
        self.ingest(Event::respond(process, object, value))
    }

    /// Ingests one event.  Closed segments are checked (and their memory
    /// reclaimed) automatically every [`MonitorConfig::segment_batch`] cuts;
    /// call [`Monitor::pump`] to force a check earlier.
    ///
    /// # Errors
    ///
    /// Returns a [`MonitorError`] if the event makes the stream ill-formed
    /// (the event is not ingested; the monitor remains usable).
    pub fn ingest(&mut self, event: Event) -> Result<(), MonitorError> {
        self.ingest.ingest(event)?;
        if let Some(batch) = self.ingest.take_ready_batch() {
            self.check.check_batch(batch);
        }
        Ok(())
    }

    /// Ingests a batch of events (stopping at the first error).
    ///
    /// # Errors
    ///
    /// Returns the first [`MonitorError`] encountered, if any.
    pub fn ingest_all<I: IntoIterator<Item = Event>>(
        &mut self,
        events: I,
    ) -> Result<(), MonitorError> {
        for event in events {
            self.ingest(event)?;
        }
        Ok(())
    }

    /// Checks every closed segment queued so far and reclaims its memory.
    /// Returns the verdict over everything checked.
    pub fn pump(&mut self) -> MonitorVerdict {
        if let Some(batch) = self.ingest.take_batch() {
            self.check.check_batch(batch);
        }
        self.check.verdict_so_far()
    }

    /// Closes the remaining tail (which may contain pending operations),
    /// checks everything still queued and returns the final report.
    ///
    /// The verdict equals the corresponding offline checker's verdict on the
    /// concatenation of every ingested event.
    pub fn finish(self) -> MonitorReport {
        let (tail, summary) = self.ingest.finish();
        self.check.finish(tail, summary)
    }
}

// ---------------------------------------------------------------------------
// Per-object linearizability chain (free function so map_par can use it)
// ---------------------------------------------------------------------------

struct ObjectOutcome {
    frontier: Vec<Value>,
    /// `(index into the segment batch, detail)`.
    violation: Option<(usize, String)>,
    incomplete: bool,
    stats: SearchStats,
    fast_segments: usize,
}

/// Threads one object's frontier set through its projections of a segment
/// batch, reusing (and returning) the caller's pooled scratch.
#[allow(clippy::too_many_arguments)] // private helper of drain_lin
fn chase_object_chain(
    universe: &ObjectUniverse,
    limits: SearchLimits,
    max_frontiers: usize,
    object: ObjectId,
    mut frontier: Vec<Value>,
    segments: &[Segment],
    is_final: bool,
    mut scratch: KernelScratch,
) -> (ObjectOutcome, KernelScratch) {
    let mut outcome = ObjectOutcome {
        frontier: Vec::new(),
        violation: None,
        incomplete: false,
        stats: SearchStats::default(),
        fast_segments: 0,
    };
    let fast_eligible = universe.object_type(object).name() == "fetch&increment";
    for (segment_index, segment) in segments.iter().enumerate() {
        let final_segment = is_final && segment_index + 1 == segments.len();
        if !segment.objects.contains(&object) {
            continue;
        }
        // Single-object segments (the common case on the counter workloads,
        // tracked at ingest) are checked by borrowing the segment history —
        // no projection clone, and the completed-operation count comes
        // straight from the ingest-side tally.
        let owned_projection;
        let projection: &History;
        let completed: usize;
        if segment.objects.len() == 1 {
            projection = &segment.history;
            completed = segment.completed;
        } else {
            owned_projection = segment.history.project_object(object);
            completed = owned_projection
                .events()
                .iter()
                .filter(|e| matches!(e.kind, EventKind::Respond(_)))
                .count();
            projection = &owned_projection;
        }
        if projection.is_empty() {
            continue;
        }
        let pending = projection.len() - 2 * completed;
        // Fast path: a pure fetch&increment projection from an integer state
        // has a unique outgoing state (initial + operation count), so the
        // near-linear specialized checker replaces the kernel search.
        if fast_eligible && frontier.iter().all(|s| s.as_int().is_some()) {
            match fi_step(projection, completed, pending, &frontier, final_segment) {
                Ok(Some(next)) => {
                    outcome.fast_segments += 1;
                    if next.is_empty() {
                        outcome.violation = Some((
                            segment_index,
                            format!(
                                "{object}: fetch&increment projection is not linearizable \
                                 from any frontier state"
                            ),
                        ));
                        outcome.frontier = frontier;
                        return (outcome, scratch);
                    }
                    frontier = next;
                    continue;
                }
                Ok(None) => {} // not a pure fetch&inc segment: fall through
                Err(()) => {}  // ditto
            }
        }
        let condition = TLinearizability::new(0);
        let problem = condition.problem(projection);
        let mut outgoing: BTreeSet<Value> = BTreeSet::new();
        let mut any_yes = false;
        for state in &frontier {
            let mut uni = universe.clone();
            uni.set_initial_state(object, state.clone());
            if final_segment {
                // Nothing consumes the outgoing frontier: a plain witness
                // search decides the tail (pending operations included).
                let (result, stats) =
                    kernel::solve_with_scratch(&problem, &uni, limits, &mut scratch);
                outcome.stats.absorb(stats);
                match result {
                    SearchResult::Yes(_) => {
                        any_yes = true;
                        break;
                    }
                    SearchResult::Unknown => outcome.incomplete = true,
                    SearchResult::No => {}
                }
            } else {
                let (set, stats) =
                    kernel::solve_frontiers(&problem, &uni, limits, &[], &mut scratch);
                outcome.stats.absorb(stats);
                if !set.complete {
                    outcome.incomplete = true;
                }
                for entry in set.entries {
                    any_yes = true;
                    for (o, v) in entry.states {
                        if o == object {
                            outgoing.insert(v);
                        }
                    }
                }
            }
        }
        if !any_yes {
            outcome.violation = Some((
                segment_index,
                format!("{object}: segment has no linearization from any frontier state"),
            ));
            outcome.frontier = frontier;
            return (outcome, scratch);
        }
        if final_segment {
            break;
        }
        if outgoing.len() > max_frontiers {
            outcome.incomplete = true;
            outcome.frontier = frontier;
            return (outcome, scratch);
        }
        frontier = outgoing.into_iter().collect();
    }
    outcome.frontier = frontier;
    (outcome, scratch)
}

/// Fast-path step: decides a pure fetch&increment projection from every
/// frontier state with [`crate::fi`] and returns the outgoing frontier.
/// `completed`/`pending` are the projection's operation counts, supplied by
/// the caller (tracked at ingest for single-object segments).
///
/// `Ok(None)`/`Err(())` mean "not eligible — use the kernel".  For the final
/// segment the outgoing frontier is unused; a singleton dummy is returned on
/// success.
fn fi_step(
    projection: &History,
    completed: usize,
    pending: usize,
    frontier: &[Value],
    is_final: bool,
) -> Result<Option<Vec<Value>>, ()> {
    if !is_final && pending > 0 {
        // Mid-stream segments are quiescent by construction; be safe.
        return Ok(None);
    }
    let mut outgoing = Vec::new();
    for state in frontier {
        let initial = state.as_int().ok_or(())?;
        match fi::is_linearizable(projection, initial) {
            Ok(true) => {
                if is_final {
                    return Ok(Some(vec![Value::from(initial)]));
                }
                // All operations are complete, so every witness linearizes
                // exactly `completed` operations: the outgoing state is
                // unique per incoming state.
                outgoing.push(Value::from(initial + completed as i64));
            }
            Ok(false) => {}
            Err(_) => return Ok(None), // not a pure fetch&inc projection
        }
    }
    Ok(Some(outgoing))
}

/// Builds the Definition-1 problem for one completed operation from the
/// summarized invocation counters.
fn weak_problem(
    invoked: Option<&BTreeMap<Invocation, u64>>,
    preds: Option<&BTreeMap<Invocation, u64>>,
    object: ObjectId,
    invocation: &Invocation,
    response: &Value,
) -> SearchProblem {
    let empty = BTreeMap::new();
    let invoked = invoked.unwrap_or(&empty);
    let preds = preds.unwrap_or(&empty);
    let mut ops: Vec<ConstrainedOp> = Vec::new();
    // Required same-process predecessors, with free responses.
    for (inv, &count) in preds {
        for _ in 0..count {
            ops.push(ConstrainedOp {
                record: synth_record(object, inv.clone(), ops.len()),
                required: true,
                fixed_response: None,
            });
        }
    }
    let required_len = ops.len();
    // Optional pool: every other operation on the object invoked before this
    // one's response (the counters are snapshots at exactly that moment),
    // minus the required predecessors and the operation itself.
    for (inv, &count) in invoked {
        let mut optional = count - preds.get(inv).copied().unwrap_or(0);
        if inv == invocation {
            optional = optional.saturating_sub(1);
        }
        for _ in 0..optional {
            ops.push(ConstrainedOp {
                record: synth_record(object, inv.clone(), ops.len()),
                required: false,
                fixed_response: None,
            });
        }
    }
    // The operation itself, last, with its response fixed; the witness must
    // end with it, so every required predecessor precedes it.
    let last = ops.len();
    ops.push(ConstrainedOp {
        record: synth_record(object, invocation.clone(), last),
        required: true,
        fixed_response: Some(response.clone()),
    });
    let precedence = (0..required_len).map(|i| (i, last)).collect();
    SearchProblem { ops, precedence }
}

// ---------------------------------------------------------------------------
// Per-object shard routing
// ---------------------------------------------------------------------------

impl MonitorCondition {
    /// Whether the condition decomposes exactly into per-object checks.
    ///
    /// This mirrors [`crate::kernel::Locality::Exact`] as declared by the
    /// offline conditions: classical linearizability is local (the
    /// Herlihy–Wing locality theorem, the basis of the kernel's
    /// [`crate::kernel::check_local`] pre-pass), and `t = 0`
    /// `t`-linearizability *is* linearizability.  Every other condition
    /// carries global state — `t`-linearizability's forgiven prefix is
    /// counted over the whole stream, and the multiset summaries of weak
    /// consistency and stabilization are not declared local — so a router
    /// must not split their streams.
    pub fn is_object_local(&self) -> bool {
        match self {
            MonitorCondition::Linearizability => true,
            MonitorCondition::TLinearizability { t } => *t == 0,
            MonitorCondition::WeakConsistency | MonitorCondition::StabilizesEventually => false,
        }
    }
}

/// Routes events to monitor shards by object, honouring condition locality.
///
/// A pool of monitor replicas can check a stream in per-object slices only
/// when the condition decomposes exactly over objects
/// ([`MonitorCondition::is_object_local`]); the router therefore collapses to
/// a single shard for non-local conditions instead of silently computing a
/// wrong verdict.  Routing is a pure function of the [`ObjectId`], so every
/// event of one object — and hence every invoke/respond pair — lands on the
/// same shard, which keeps each shard's substream well-formed whenever the
/// input stream is.
///
/// ```
/// use evlin_checker::monitor::{MonitorCondition, ShardRouter};
/// use evlin_history::ObjectId;
///
/// let router = ShardRouter::new(MonitorCondition::Linearizability, 4);
/// assert_eq!(router.effective_shards(), 4);
/// assert_eq!(router.route(ObjectId(6)), 2);
///
/// // A non-local condition refuses to split.
/// let router = ShardRouter::new(MonitorCondition::TLinearizability { t: 3 }, 4);
/// assert_eq!(router.effective_shards(), 1);
/// assert_eq!(router.route(ObjectId(6)), 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ShardRouter {
    shards: usize,
}

impl ShardRouter {
    /// Builds a router over `shards` monitor replicas for `condition`,
    /// collapsing to one shard when the condition is not object-local.
    pub fn new(condition: MonitorCondition, shards: usize) -> Self {
        let shards = if condition.is_object_local() {
            shards.max(1)
        } else {
            1
        };
        ShardRouter { shards }
    }

    /// How many shards actually receive traffic.
    pub fn effective_shards(&self) -> usize {
        self.shards
    }

    /// The shard that checks `object`.
    pub fn route(&self, object: ObjectId) -> usize {
        object.0 % self.shards
    }
}

/// Recomposes per-shard verdicts into the verdict on the whole stream.
///
/// For an object-local condition this is the Herlihy–Wing composition
/// direction: the stream is correct iff every per-object projection is, so
/// the first shard violation (in shard order) decides, an `Unknown` from any
/// shard (an exhausted budget) taints the composition, and otherwise the
/// verdict is `Ok`.
pub fn recompose_verdicts<I>(verdicts: I) -> MonitorVerdict
where
    I: IntoIterator<Item = MonitorVerdict>,
{
    let mut out = MonitorVerdict::Ok;
    for verdict in verdicts {
        match verdict {
            MonitorVerdict::Violation(v) => return MonitorVerdict::Violation(v),
            MonitorVerdict::Unknown => out = MonitorVerdict::Unknown,
            MonitorVerdict::Ok => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{eventual, linearizability, t_linearizability, weak_consistency};
    use evlin_history::HistoryBuilder;
    use evlin_spec::{FetchIncrement, Register};

    fn fi_universe() -> (ObjectUniverse, ObjectId) {
        let mut u = ObjectUniverse::new();
        let x = u.add_object(FetchIncrement::new());
        (u, x)
    }

    fn run_monitor(
        universe: &ObjectUniverse,
        history: &History,
        condition: MonitorCondition,
    ) -> MonitorReport {
        let mut m = Monitor::new(universe.clone(), MonitorConfig::for_condition(condition));
        m.ingest_all(history.iter().cloned()).expect("well-formed");
        m.finish()
    }

    /// Drives the same stream through the split stages, pulling batches at
    /// the given cadence (0 = only at the end), and returns the report.
    fn run_staged(
        universe: &ObjectUniverse,
        history: &History,
        condition: MonitorCondition,
        pull_every: usize,
    ) -> MonitorReport {
        let (mut ingest, mut check) =
            stages(universe.clone(), MonitorConfig::for_condition(condition));
        for (i, event) in history.iter().cloned().enumerate() {
            ingest.ingest(event).expect("well-formed");
            if pull_every > 0 && i % pull_every == 0 {
                if let Some(batch) = ingest.take_batch() {
                    check.check_batch(batch);
                }
            } else if let Some(batch) = ingest.take_ready_batch() {
                check.check_batch(batch);
            }
        }
        let (tail, summary) = ingest.finish();
        check.finish(tail, summary)
    }

    #[test]
    fn sequential_counting_is_ok_and_gcs_the_window() {
        let (u, x) = fi_universe();
        let mut b = HistoryBuilder::new();
        for k in 0..50i64 {
            b = b.complete(
                ProcessId((k % 3) as usize),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(k),
            );
        }
        let h = b.build();
        let report = run_monitor(&u, &h, MonitorCondition::Linearizability);
        assert!(report.verdict.is_ok(), "{report:?}");
        assert_eq!(report.stats.events, 100);
        assert_eq!(report.stats.checked_ops, 50);
        // Each op closes its own segment: the resident window never exceeds
        // one batch of tiny segments.
        assert!(report.stats.peak_window_events <= 2 * 64);
        assert!(report.stats.fast_path_segments > 0);
    }

    #[test]
    fn duplicate_zero_is_flagged_online() {
        let (u, x) = fi_universe();
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .build();
        let report = run_monitor(&u, &h, MonitorCondition::Linearizability);
        assert!(matches!(report.verdict, MonitorVerdict::Violation(_)));
        // ...but the duplicate is forgiven with t = 2 and weakly consistent.
        let report = run_monitor(&u, &h, MonitorCondition::TLinearizability { t: 2 });
        assert!(report.verdict.is_ok(), "{report:?}");
        let report = run_monitor(&u, &h, MonitorCondition::WeakConsistency);
        assert!(report.verdict.is_ok(), "{report:?}");
    }

    #[test]
    fn floaters_cross_segment_boundaries() {
        // op0 returns 0 and completes; a quiescent cut follows; then op1 also
        // returns 0.  With t = 2 the offline witness linearizes op0 *after*
        // op1 — the monitor must let op0 float across the cut.
        let (u, x) = fi_universe();
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        assert!(t_linearizability::is_t_linearizable(&h, &u, 2));
        let report = run_monitor(&u, &h, MonitorCondition::TLinearizability { t: 2 });
        assert!(report.verdict.is_ok(), "{report:?}");
        assert!(!t_linearizability::is_t_linearizable(&h, &u, 1));
        let report = run_monitor(&u, &h, MonitorCondition::TLinearizability { t: 1 });
        assert!(matches!(report.verdict, MonitorVerdict::Violation(_)));
    }

    #[test]
    fn register_frontiers_keep_both_write_orders() {
        // Two concurrent writes can be ordered either way; a later read of
        // either value must be accepted, a read of a third value rejected.
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        for (read_value, ok) in [(1i64, true), (2i64, true), (7i64, false)] {
            let h = HistoryBuilder::new()
                .invoke(ProcessId(0), r, Register::write(Value::from(1i64)))
                .invoke(ProcessId(1), r, Register::write(Value::from(2i64)))
                .respond(ProcessId(0), r, Value::Unit)
                .respond(ProcessId(1), r, Value::Unit)
                .complete(ProcessId(0), r, Register::read(), Value::from(read_value))
                .build();
            assert_eq!(linearizability::is_linearizable(&h, &u), ok);
            let report = run_monitor(&u, &h, MonitorCondition::Linearizability);
            assert_eq!(report.verdict.is_ok(), ok, "read {read_value}: {report:?}");
        }
    }

    #[test]
    fn pending_tail_is_treated_like_offline() {
        let (u, x) = fi_universe();
        // A pending fetch&inc justifies the gap at 0.
        let h = HistoryBuilder::new()
            .invoke(ProcessId(0), x, FetchIncrement::fetch_inc())
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        assert!(linearizability::is_linearizable(&h, &u));
        let report = run_monitor(&u, &h, MonitorCondition::Linearizability);
        assert!(report.verdict.is_ok(), "{report:?}");
    }

    #[test]
    fn weak_mode_matches_offline_on_the_key_distinction() {
        let (u, x) = fi_universe();
        // Same process returning 0 twice: weakly inconsistent.
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .build();
        assert!(!weak_consistency::is_weakly_consistent(&h, &u));
        let report = run_monitor(&u, &h, MonitorCondition::WeakConsistency);
        let MonitorVerdict::Violation(v) = &report.verdict else {
            panic!("expected violation: {report:?}");
        };
        assert_eq!(v.op, Some(OpId(1)));
    }

    #[test]
    fn stabilizes_eventually_matches_offline() {
        let (u, x) = fi_universe();
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(41i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(7i64),
            )
            .build();
        // Nonsense responses are forgiven by the liveness half.
        assert!(eventual::analyze(&h, &u).min_stabilization.is_some());
        let report = run_monitor(&u, &h, MonitorCondition::StabilizesEventually);
        assert!(report.verdict.is_ok(), "{report:?}");
    }

    #[test]
    fn ill_formed_streams_are_rejected() {
        let (_, x) = fi_universe();
        let mut m = Monitor::new(fi_universe().0, MonitorConfig::default());
        m.invoke(ProcessId(0), x, FetchIncrement::fetch_inc())
            .unwrap();
        assert!(matches!(
            m.invoke(ProcessId(0), x, FetchIncrement::fetch_inc()),
            Err(MonitorError::InvokeWhilePending { .. })
        ));
        assert!(matches!(
            m.respond(ProcessId(1), x, Value::from(0i64)),
            Err(MonitorError::OrphanResponse { .. })
        ));
        // The rejected events were not ingested; the stream stays usable.
        m.respond(ProcessId(0), x, Value::from(0i64)).unwrap();
        assert!(m.finish().verdict.is_ok());
    }

    #[test]
    fn chunked_feeding_matches_offline_regardless_of_boundaries() {
        // The monitor's verdict may not depend on how the caller batches its
        // ingest calls — quiescent cuts are found by the monitor itself.
        let (u, x) = fi_universe();
        let h = HistoryBuilder::new()
            .invoke(ProcessId(0), x, FetchIncrement::fetch_inc())
            .invoke(ProcessId(1), x, FetchIncrement::fetch_inc())
            .respond(ProcessId(0), x, Value::from(0i64))
            .respond(ProcessId(1), x, Value::from(1i64))
            .complete(
                ProcessId(2),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(2i64),
            )
            .build();
        for chunk in 1..=h.len() {
            let mut m = Monitor::new(u.clone(), MonitorConfig::default());
            for events in h.events().chunks(chunk) {
                m.ingest_all(events.iter().cloned()).unwrap();
                m.pump();
            }
            assert!(m.finish().verdict.is_ok(), "chunk size {chunk}");
        }
    }

    #[test]
    fn staged_pipeline_matches_the_inline_monitor() {
        // The split stages, driven at any batch-pull cadence, must reproduce
        // the inline monitor's verdict, counters and stream fingerprint for
        // every condition.
        let (u, x) = fi_universe();
        let mut b = HistoryBuilder::new();
        for k in 0..12i64 {
            b = b
                .invoke(ProcessId(0), x, FetchIncrement::fetch_inc())
                .invoke(ProcessId(1), x, FetchIncrement::fetch_inc())
                .respond(ProcessId(0), x, Value::from(2 * k))
                .respond(ProcessId(1), x, Value::from(2 * k + 1));
        }
        let h = b.build();
        for condition in [
            MonitorCondition::Linearizability,
            MonitorCondition::TLinearizability { t: 3 },
            MonitorCondition::WeakConsistency,
            MonitorCondition::StabilizesEventually,
        ] {
            let inline = run_monitor(&u, &h, condition);
            for pull_every in [0, 1, 3, 7] {
                let staged = run_staged(&u, &h, condition, pull_every);
                assert_eq!(staged.verdict, inline.verdict, "{condition:?}/{pull_every}");
                // Residency legitimately depends on how eagerly batches are
                // pulled; everything else must match exactly.
                let mut a = staged.stats;
                let mut b = inline.stats;
                a.peak_window_events = 0;
                b.peak_window_events = 0;
                assert_eq!(a, b, "{condition:?}/{pull_every}");
            }
        }
    }

    #[test]
    fn stream_fingerprint_identifies_the_event_sequence() {
        // Same stream, same config => same fingerprint, regardless of pump
        // timing; a reordered stream fingerprints differently.
        let (u, x) = fi_universe();
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        let fp = |history: &History, pump: bool| {
            let mut m = Monitor::new(u.clone(), MonitorConfig::default());
            for e in history.iter().cloned() {
                m.ingest(e).unwrap();
                if pump {
                    m.pump();
                }
            }
            m.finish().stats.stream_fingerprint
        };
        assert_eq!(fp(&h, false), fp(&h, true));
        // The same two operations completed in the opposite process order is
        // a different (well-formed) stream: different fingerprint.
        let swapped = HistoryBuilder::new()
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        assert_ne!(fp(&h, false), fp(&swapped, false));
        // The per-event words the fold consumes separate kinds and slots.
        let e = &h.events()[0];
        assert_ne!(event_word(e), event_word(&h.events()[1]));
        assert_eq!(event_word(e), event_word(&e.clone()));
    }

    #[test]
    fn arena_reuse_keeps_peak_bytes_flat_across_segments() {
        // Identical register segments, checked through the kernel (registers
        // have no fast path): after the first batch has sized the pooled
        // per-object scratch, further batches must reuse it — the memory
        // high-water mark reported in `stats.search.arena_bytes` stays
        // exactly flat no matter how many more segments stream through.
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let mut m = Monitor::new(
            u,
            MonitorConfig {
                segment_batch: 4,
                ..MonitorConfig::default()
            },
        );
        let feed_batch = |m: &mut Monitor| {
            for _ in 0..8 {
                m.invoke(ProcessId(0), r, Register::write(Value::from(1i64)))
                    .unwrap();
                m.invoke(ProcessId(1), r, Register::read()).unwrap();
                m.respond(ProcessId(0), r, Value::Unit).unwrap();
                m.respond(ProcessId(1), r, Value::from(1i64)).unwrap();
            }
            m.pump();
        };
        feed_batch(&mut m);
        let after_first = m.stats().search.arena_bytes;
        assert!(after_first > 0, "kernel searches must report arena bytes");
        for _ in 0..10 {
            feed_batch(&mut m);
        }
        assert!(m.verdict_so_far().is_ok());
        assert_eq!(
            m.stats().search.arena_bytes,
            after_first,
            "per-segment arena reuse must keep the peak flat across batches"
        );
    }

    #[test]
    fn min_segment_events_delays_cuts_but_not_verdicts() {
        let (u, x) = fi_universe();
        let mut b = HistoryBuilder::new();
        for k in 0..40i64 {
            b = b.complete(
                ProcessId((k % 2) as usize),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(k),
            );
        }
        let h = b.build();
        let config = MonitorConfig {
            min_segment_events: 16,
            ..MonitorConfig::default()
        };
        let mut m = Monitor::new(u.clone(), config);
        m.ingest_all(h.iter().cloned()).unwrap();
        let report = m.finish();
        assert!(report.verdict.is_ok());
        assert!(report.stats.segments < 40, "{report:?}");
    }
}
