//! Batched, multi-core checking of many histories at once.
//!
//! The exhaustive experiments (E2, E4, E5, E10) and the parallel explorer
//! produce *batches* of histories whose verdicts are independent, so checking
//! them is embarrassingly parallel.  The functions here fan a batch out over
//! all cores with rayon, preserving input order, and return exactly what the
//! sequential loops would: one verdict per history.
//!
//! Each function has a `_par` variant and a sequential twin with identical
//! semantics; the twins exist so that benchmarks (`checker_scaling`) and the
//! E10 experiment can measure the speedup honestly, and so that determinism
//! tests can compare the two outputs element for element.

use crate::{eventual, fi, linearizability, t_linearizability};
use evlin_history::{History, ObjectUniverse};
use rayon::prelude::*;

/// The one fan-out primitive shared by every batch entry point in this
/// module *and* by the kernel's locality pre-pass (per-object subproblems)
/// and the weak-consistency projection split: map `f` over `items` on all
/// cores, preserving input order.
pub(crate) fn map_par<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync + Send) -> Vec<R> {
    items.par_iter().map(f).collect()
}

/// Owned-item twin of [`map_par`]: moves each item into `f`.  The monitor
/// uses this to thread its per-object [`crate::kernel::KernelScratch`] pools
/// through the parallel per-object segment checks and get them back, so the
/// pooled arenas survive from one segment batch to the next.
pub(crate) fn map_par_into<T: Send, R: Send>(
    items: Vec<T>,
    f: impl Fn(T) -> R + Sync + Send,
) -> Vec<R> {
    items.into_par_iter().map(f).collect()
}

/// Chunked variant of [`map_par`] with per-chunk mutable state: `items` is
/// split into runs of `chunk`, each run gets one fresh `init()` value
/// threaded through its calls to `f`, and the flattened results preserve
/// input order.  The monitor's weak-consistency drain uses this to give each
/// run of per-operation kernel searches a pooled
/// [`crate::kernel::KernelScratch`] instead of building fresh tables per
/// operation, without giving up order-determinism.
pub(crate) fn map_par_chunked<T: Sync, S, R: Send>(
    items: &[T],
    chunk: usize,
    init: impl Fn() -> S + Sync + Send,
    f: impl Fn(&mut S, &T) -> R + Sync + Send,
) -> Vec<R> {
    let chunks: Vec<&[T]> = items.chunks(chunk.max(1)).collect();
    map_par(&chunks, |run| {
        let mut state = init();
        run.iter()
            .map(|item| f(&mut state, item))
            .collect::<Vec<R>>()
    })
    .into_iter()
    .flatten()
    .collect()
}

/// Sequential baseline of [`check_histories_par`].
pub fn check_histories(histories: &[History], universe: &ObjectUniverse) -> Vec<bool> {
    histories
        .iter()
        .map(|h| linearizability::is_linearizable(h, universe))
        .collect()
}

/// Decides linearizability for every history in the batch, in parallel.
///
/// The result is index-aligned with `histories` and identical to
/// [`check_histories`] on the same input — parallelism never changes a
/// verdict, only wall-clock time.
pub fn check_histories_par(histories: &[History], universe: &ObjectUniverse) -> Vec<bool> {
    map_par(histories, |h| linearizability::is_linearizable(h, universe))
}

/// Sequential baseline of [`min_stabilizations_par`].
pub fn min_stabilizations(
    histories: &[History],
    universe: &ObjectUniverse,
    limit: Option<usize>,
) -> Vec<Option<usize>> {
    histories
        .iter()
        .map(|h| t_linearizability::min_stabilization(h, universe, limit))
        .collect()
}

/// Computes the minimal stabilization index of every history in the batch,
/// in parallel (index-aligned with the input).
pub fn min_stabilizations_par(
    histories: &[History],
    universe: &ObjectUniverse,
    limit: Option<usize>,
) -> Vec<Option<usize>> {
    map_par(histories, |h| {
        t_linearizability::min_stabilization(h, universe, limit)
    })
}

/// Runs the full eventual-linearizability analysis on every history in the
/// batch, in parallel (index-aligned with the input).
pub fn analyze_par(
    histories: &[History],
    universe: &ObjectUniverse,
) -> Vec<eventual::EventualReport> {
    map_par(histories, |h| eventual::analyze(h, universe))
}

/// Decides whether *every* history in the batch is `t`-linearizable
/// according to the specialized fetch&increment checker, in parallel.
///
/// A history the specialized checker cannot handle (see
/// [`crate::fi::FiError`]) counts as *not* `t`-linearizable, matching the
/// conservative treatment used by the stability search in `evlin-sim`.
pub fn fi_all_t_linearizable_par(histories: &[History], initial: i64, t: usize) -> bool {
    map_par(histories, |h| {
        fi::is_t_linearizable(h, initial, t).unwrap_or(false)
    })
    .into_iter()
    .all(|ok| ok)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_history::generator::{concurrentize, random_sequential_legal, WorkloadSpec};
    use evlin_spec::{FetchIncrement, Register, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn universe() -> ObjectUniverse {
        let mut u = ObjectUniverse::new();
        u.add_object(Register::new(Value::from(0i64)));
        u.add_object(FetchIncrement::new());
        u
    }

    fn batch(u: &ObjectUniverse, n: usize) -> Vec<History> {
        (0..n)
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed as u64);
                let seq = random_sequential_legal(
                    u,
                    &WorkloadSpec {
                        processes: 3,
                        operations: 8,
                    },
                    &mut rng,
                );
                concurrentize(&seq, 2, &mut rng)
            })
            .collect()
    }

    #[test]
    fn parallel_verdicts_match_sequential() {
        let u = universe();
        let histories = batch(&u, 24);
        let sequential = check_histories(&histories, &u);
        let parallel = check_histories_par(&histories, &u);
        assert_eq!(sequential, parallel);
        // Generated-by-construction histories are all linearizable.
        assert!(sequential.iter().all(|&ok| ok));
    }

    #[test]
    fn parallel_stabilizations_match_sequential() {
        let u = universe();
        let histories = batch(&u, 16);
        let sequential = min_stabilizations(&histories, &u, None);
        let parallel = min_stabilizations_par(&histories, &u, None);
        assert_eq!(sequential, parallel);
        assert!(sequential.iter().all(|t| *t == Some(0)));
    }

    #[test]
    fn parallel_reports_are_index_aligned() {
        let u = universe();
        let histories = batch(&u, 8);
        let reports = analyze_par(&histories, &u);
        assert_eq!(reports.len(), histories.len());
        for report in reports {
            assert!(report.is_linearizable());
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let u = universe();
        assert!(check_histories_par(&[], &u).is_empty());
        assert!(min_stabilizations_par(&[], &u, None).is_empty());
        assert!(fi_all_t_linearizable_par(&[], 0, 0));
    }

    #[test]
    fn fi_batch_matches_per_history_verdicts() {
        use evlin_history::{HistoryBuilder, ProcessId};
        let x = evlin_history::ObjectId(0);
        let good: Vec<History> = (0..4)
            .map(|_| {
                let mut b = HistoryBuilder::new();
                for k in 0..6i64 {
                    b = b.complete(
                        ProcessId((k % 2) as usize),
                        x,
                        FetchIncrement::fetch_inc(),
                        Value::from(k),
                    );
                }
                b.build()
            })
            .collect();
        assert!(fi_all_t_linearizable_par(&good, 0, 0));
        let mut with_bad = good.clone();
        with_bad.push(
            HistoryBuilder::new()
                .complete(
                    ProcessId(0),
                    x,
                    FetchIncrement::fetch_inc(),
                    Value::from(0i64),
                )
                .complete(
                    ProcessId(1),
                    x,
                    FetchIncrement::fetch_inc(),
                    Value::from(0i64),
                )
                .build(),
        );
        assert!(!fi_all_t_linearizable_par(&with_bad, 0, 0));
        // …but the duplicate zeros are forgiven at t = 2.
        assert!(fi_all_t_linearizable_par(&with_bad, 0, 2));
    }
}
