//! Small utilities shared by the checkers.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The Fx hash function (as used by rustc): a fast, non-cryptographic hasher
/// for the kernel's hot-path tables, where SipHash's per-hash setup cost
/// dominates on the small keys (interned ids, boxed `u32` slices) the
/// searcher produces at every node.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A hash map using [`FxHasher`].
pub(crate) type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// A hash set using [`FxHasher`].
pub(crate) type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// The splitmix64 finalizer: the key-derivation function behind the kernel's
/// incremental (Zobrist-style) visited-cache keys.  Mirrors
/// `evlin_sim::zobrist::mix` — the two crates are independent, so the three
/// lines are duplicated rather than coupling the checker to the simulator.
#[inline]
pub(crate) fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The derived Zobrist key of one part of a composite search state: `tag`
/// separates domains (class counts vs object states), `slot` the position,
/// `payload` the value.  A state's key is the XOR of its parts, so one
/// linearization step updates it with four mixes instead of re-serializing
/// the `(linearized-multiset, object-states)` pair.
#[inline]
pub(crate) fn zkey(tag: u64, slot: u64, payload: u64) -> u64 {
    mix(tag ^ mix(slot ^ mix(payload)))
}

/// Domain-separation tag for [`fold_words`] batch fingerprints.  Mirrors
/// `evlin_sim::zobrist::TAG_FOLD` (same value, same independence rationale
/// as the `mix` mirror above).
pub(crate) const TAG_FOLD: u64 = 0x666f_6c64_0000_0004;

/// Folds a slice of words into one fingerprint, one `mix` round per word —
/// the batch counterpart of [`zkey`], mirroring
/// `evlin_sim::zobrist::fold_words` bit for bit so a stream fingerprinted on
/// the runtime side (frame hashing) and re-fingerprinted by the monitor's
/// segment keys agree without coupling the two crates.  Order-sensitive and
/// length-separated.
#[inline]
pub(crate) fn fold_words(seed: u64, words: &[u64]) -> u64 {
    let mut acc = mix(seed ^ TAG_FOLD);
    for &w in words {
        acc = mix(acc ^ w);
    }
    mix(acc ^ (words.len() as u64))
}

/// The content hash of a `Hash` value under [`FxHasher`] (the checker's
/// counterpart of `evlin_sim::zobrist::hash_of`; note the two crates'
/// hashers differ on multi-byte `write` calls, so cross-crate agreement is
/// only for word-shaped keys).
#[inline]
pub(crate) fn hash_of<T: std::hash::Hash + ?Sized>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

/// A dynamically sized bit set used by the kernel to track which operations
/// have already been linearized in a search state.  The kernel's
/// backtracking and scratch-reuse paths rely on [`BitSet::clear`] (retract
/// one step, release a witness's bits) and [`BitSet::count`] (the emptiness
/// invariant between reused searches).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub(crate) struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// Creates a bit set able to hold `n` bits, all clear.
    pub fn with_capacity(n: usize) -> Self {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Sets bit `i`.
    pub fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i`.
    pub fn clear(&mut self, i: usize) {
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Whether bit `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of set bits.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fold_words_matches_order_and_length_separation() {
        assert_eq!(fold_words(0, &[1, 2, 3]), fold_words(0, &[1, 2, 3]));
        assert_ne!(fold_words(0, &[1, 2, 3]), fold_words(0, &[3, 2, 1]));
        assert_ne!(fold_words(0, &[1, 2]), fold_words(0, &[1, 2, 0]));
        assert_ne!(fold_words(0, &[1]), fold_words(1, &[1]));
    }

    #[test]
    fn set_clear_contains_count() {
        let mut b = BitSet::with_capacity(130);
        assert!(!b.contains(0));
        b.set(0);
        b.set(65);
        b.set(129);
        assert!(b.contains(0) && b.contains(65) && b.contains(129));
        assert!(!b.contains(64));
        assert_eq!(b.count(), 3);
        b.clear(65);
        assert!(!b.contains(65));
        assert_eq!(b.count(), 2);
    }

    #[test]
    fn equality_and_hash_reflect_contents() {
        use std::collections::HashSet;
        let mut a = BitSet::with_capacity(10);
        let mut b = BitSet::with_capacity(10);
        a.set(3);
        b.set(3);
        assert_eq!(a, b);
        let mut set = HashSet::new();
        set.insert(a.clone());
        assert!(set.contains(&b));
    }

    #[test]
    fn word_boundaries_are_exact() {
        // Bits 63 and 64 straddle the first word boundary; each must land in
        // its own word without touching the neighbour.
        let mut b = BitSet::with_capacity(128);
        b.set(63);
        assert!(b.contains(63));
        assert!(!b.contains(64));
        b.set(64);
        assert!(b.contains(64));
        b.clear(63);
        assert!(!b.contains(63) && b.contains(64));
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn capacity_rounds_up_to_whole_words() {
        // 1 bit still allocates one word; 65 bits allocate two.
        let a = BitSet::with_capacity(1);
        assert!(!a.contains(0));
        let mut b = BitSet::with_capacity(65);
        b.set(64);
        assert!(b.contains(64));
        assert_eq!(b.count(), 1);
    }

    #[test]
    fn set_is_idempotent_and_clear_of_unset_is_noop() {
        let mut b = BitSet::with_capacity(16);
        b.set(5);
        b.set(5);
        assert_eq!(b.count(), 1);
        b.clear(6);
        assert_eq!(b.count(), 1);
        assert!(b.contains(5));
    }

    #[test]
    fn default_is_empty() {
        let b = BitSet::default();
        assert_eq!(b.count(), 0);
        assert_eq!(b, BitSet::with_capacity(0));
    }

    #[test]
    fn differing_contents_are_unequal() {
        let mut a = BitSet::with_capacity(70);
        let mut b = BitSet::with_capacity(70);
        a.set(0);
        b.set(69);
        assert_ne!(a, b);
        assert_eq!(a.count(), b.count());
    }
}
