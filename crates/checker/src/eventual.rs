//! Eventual linearizability (Definitions 3 and 4).
//!
//! A history is *eventually linearizable* when it is weakly consistent and
//! `t`-linearizable for some `t`.  For a finite history the second condition
//! always holds (take `t` to be the history length — see Section 3.2 of the
//! paper, which notes that being `t`-linearizable for some `t` is a liveness
//! property), so the interesting quantity reported here is the *minimal*
//! stabilization index.  Experiments over growing prefixes of long executions
//! use that index to decide whether an implementation's executions actually
//! stabilize or whether the index keeps chasing the end of the history (the
//! tell-tale of an implementation that is not eventually linearizable).
//!
//! Both halves run through the shared Wing–Gong kernel: the safety half is
//! the [`crate::weak_consistency::WeakOperation`] condition per completed
//! operation, the liveness half is [`StabilizesEventually`] (equivalently,
//! the `t`-sweep of [`crate::t_linearizability::TLinearizability`] that
//! computes the minimal stabilization index).  This module contains no
//! search logic of its own.

use crate::kernel::{ConsistencyCondition, ConstrainedOp};
use crate::t_linearizability::TLinearizability;
use crate::{t_linearizability, weak_consistency};
use evlin_history::{History, ObjectUniverse, OpId};
use serde::{Deserialize, Serialize};

/// The liveness half of eventual linearizability as a kernel condition:
/// "`t`-linearizable for *some* `t`", which for a finite history is
/// `|H|`-linearizability — every completed operation must be arrangeable
/// into *some* legal sequential order, with all responses and the real-time
/// order forgiven.
///
/// The safety half (weak consistency) and the quantitative refinement (the
/// *minimal* such `t`) are obtained from the other kernel conditions; this
/// type exists so that all four of the paper's conditions are expressible as
/// [`ConsistencyCondition`] values over the same searcher.
#[derive(Debug, Clone, Copy, Default)]
pub struct StabilizesEventually;

impl ConsistencyCondition for StabilizesEventually {
    fn name(&self) -> &'static str {
        "eventual linearizability (liveness half)"
    }

    fn candidates(&self, history: &History) -> Vec<ConstrainedOp> {
        TLinearizability::new(history.len()).candidates(history)
    }

    fn precedence(&self, history: &History, candidates: &[ConstrainedOp]) -> Vec<(usize, usize)> {
        TLinearizability::new(history.len()).precedence(history, candidates)
    }
}

/// The outcome of the eventual-linearizability analysis of a (finite)
/// history.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventualReport {
    /// Whether the history is weakly consistent (the safety half).
    pub weakly_consistent: bool,
    /// The smallest `t` for which the history is `t`-linearizable, if one was
    /// found within the search limits (the liveness half).
    pub min_stabilization: Option<usize>,
    /// Number of events in the analysed history.
    pub history_len: usize,
    /// Number of completed operations in the analysed history.
    pub completed_operations: usize,
}

impl EventualReport {
    /// Whether the history is eventually linearizable (finite-history
    /// reading: weakly consistent and `t`-linearizable for some `t`).
    pub fn is_eventually_linearizable(&self) -> bool {
        self.weakly_consistent && self.min_stabilization.is_some()
    }

    /// Whether the history is linearizable outright (stabilization index 0).
    pub fn is_linearizable(&self) -> bool {
        self.weakly_consistent && self.min_stabilization == Some(0)
    }
}

/// Analyses a history: weak consistency plus the minimal stabilization index.
pub fn analyze(history: &History, universe: &ObjectUniverse) -> EventualReport {
    EventualReport {
        weakly_consistent: weak_consistency::is_weakly_consistent(history, universe),
        min_stabilization: t_linearizability::min_stabilization(history, universe, None),
        history_len: history.len(),
        completed_operations: history.complete_operations().len(),
    }
}

/// Convenience predicate: weakly consistent and `t`-linearizable for some
/// `t ≤ history.len()`.
pub fn is_eventually_linearizable(history: &History, universe: &ObjectUniverse) -> bool {
    analyze(history, universe).is_eventually_linearizable()
}

/// Details of a weak-consistency violation found by [`diagnose`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnosis {
    /// The overall report.
    pub report: EventualReport,
    /// Operations violating Definition 1, if any.
    pub weak_violations: Vec<OpId>,
}

/// Like [`analyze`] but also lists the operations violating weak consistency.
pub fn diagnose(history: &History, universe: &ObjectUniverse) -> Diagnosis {
    let weak_violations = weak_consistency::violations(history, universe);
    let report = EventualReport {
        weakly_consistent: weak_violations.is_empty(),
        min_stabilization: t_linearizability::min_stabilization(history, universe, None),
        history_len: history.len(),
        completed_operations: history.complete_operations().len(),
    };
    Diagnosis {
        report,
        weak_violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_history::{HistoryBuilder, ProcessId};
    use evlin_spec::{FetchIncrement, Register, Value};

    #[test]
    fn linearizable_history_report() {
        let mut u = ObjectUniverse::new();
        let x = u.add_object(FetchIncrement::new());
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        let r = analyze(&h, &u);
        assert!(r.is_linearizable());
        assert!(r.is_eventually_linearizable());
        assert_eq!(r.min_stabilization, Some(0));
        assert_eq!(r.completed_operations, 2);
        assert_eq!(r.history_len, 4);
    }

    #[test]
    fn stale_but_weakly_consistent_history_report() {
        let mut u = ObjectUniverse::new();
        let x = u.add_object(FetchIncrement::new());
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .build();
        let r = analyze(&h, &u);
        assert!(!r.is_linearizable());
        assert!(r.is_eventually_linearizable());
        assert_eq!(r.min_stabilization, Some(2));
    }

    #[test]
    fn weak_violation_is_diagnosed() {
        let mut u = ObjectUniverse::new();
        let reg = u.add_object(Register::new(Value::from(0i64)));
        let h = HistoryBuilder::new()
            .complete(ProcessId(0), reg, Register::read(), Value::from(42i64))
            .build();
        let d = diagnose(&h, &u);
        assert!(!d.report.weakly_consistent);
        assert!(!d.report.is_eventually_linearizable());
        assert_eq!(d.weak_violations, vec![OpId(0)]);
        // The liveness half still holds for the finite history.
        assert!(d.report.min_stabilization.is_some());
    }

    #[test]
    fn empty_history_is_eventually_linearizable() {
        let u = ObjectUniverse::new();
        let r = analyze(&History::new(), &u);
        assert!(r.is_eventually_linearizable());
        assert!(r.is_linearizable());
    }

    #[test]
    fn liveness_condition_agrees_with_min_stabilization() {
        use crate::kernel::{self, SearchLimits};
        let mut u = ObjectUniverse::new();
        let x = u.add_object(FetchIncrement::new());
        // Stale duplicate zeros: stabilizes (t = 2), so the liveness-half
        // condition accepts even though the history is not linearizable.
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .build();
        let verdict = kernel::check(&StabilizesEventually, &h, &u, SearchLimits::default());
        assert!(verdict.is_yes());
        assert_eq!(
            t_linearizability::min_stabilization(&h, &u, None).is_some(),
            verdict.is_yes()
        );
    }
}
