//! Locality of the consistency conditions (Lemmas 7–9, Proposition 9).
//!
//! * Lemma 7: a history `H` over finitely many objects is `t`-linearizable
//!   for some `t` iff each projection `H|o` is `t_o`-linearizable for some
//!   `t_o`.
//! * Lemma 8: `H` is weakly consistent iff each `H|o` is weakly consistent.
//! * Proposition 9: eventual linearizability is local for histories over
//!   finitely many objects — and the paper exhibits an infinite-object
//!   counterexample, reproduced (in truncated form) by experiment E3.
//!
//! The functions here compute per-object stabilization indices and compose
//! them into a global index exactly the way the proof of Lemma 7 does: choose
//! `t` large enough that the first `t` events of `H` contain the first `t_o`
//! events of `H|o` for every `o`.
//!
//! These are the *diagnostic* faces of locality — per-object reports and the
//! composed (upper-bound) index.  The *decision* faces live in the kernel:
//! [`crate::kernel::check_local`] decomposes linearizability checks per
//! object, and [`crate::weak_consistency::is_weakly_consistent`] splits
//! multi-object histories by Lemma 8.  The per-object analyses here run in
//! parallel across objects via [`crate::parallel`].

use crate::{parallel, t_linearizability, weak_consistency};
use evlin_history::{History, ObjectId, ObjectUniverse};

/// Per-object analysis of a history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectReport {
    /// The object.
    pub object: ObjectId,
    /// Number of events of `H|o`.
    pub events: usize,
    /// Whether `H|o` is weakly consistent.
    pub weakly_consistent: bool,
    /// Minimal `t_o` (counted in events of `H|o`) such that `H|o` is
    /// `t_o`-linearizable, if found.
    pub min_stabilization: Option<usize>,
    /// The index (in `H`) of the last event of the `t_o`-prefix of `H|o`,
    /// i.e. the smallest global prefix length containing those events.
    /// `Some(0)` when `t_o = 0`.
    pub global_prefix_needed: Option<usize>,
}

/// Analyses every object of the universe separately (Lemmas 7 and 8), in
/// parallel across objects.  The report order follows the universe's object
/// order regardless of thread count.
pub fn per_object_reports(history: &History, universe: &ObjectUniverse) -> Vec<ObjectReport> {
    parallel::map_par(&universe.object_ids(), |&object| {
        let (projection, indices) = history.project_object_indexed(object);
        let min_stab = t_linearizability::min_stabilization(&projection, universe, None);
        let global_prefix_needed = min_stab.map(|t| if t == 0 { 0 } else { indices[t - 1] + 1 });
        ObjectReport {
            object,
            events: projection.len(),
            weakly_consistent: weak_consistency::is_weakly_consistent(&projection, universe),
            min_stabilization: min_stab,
            global_prefix_needed,
        }
    })
}

/// Composes per-object stabilization indices into a global stabilization
/// index, following the proof of Lemma 7: the global `t` must be large enough
/// that the first `t` events of `H` include the first `t_o` events of `H|o`
/// for every object `o`.  Returns `None` if some object failed to stabilize.
pub fn compose_stabilization(reports: &[ObjectReport]) -> Option<usize> {
    let mut t = 0usize;
    for r in reports {
        match r.global_prefix_needed {
            Some(g) => t = t.max(g),
            None => return None,
        }
    }
    Some(t)
}

/// Convenience: per-object analysis followed by composition.  The result is
/// an upper bound on the true minimal global stabilization index (the
/// composition of Lemma 7 is not guaranteed to be tight), and `None` iff some
/// projection fails to stabilize.
pub fn composed_stabilization(history: &History, universe: &ObjectUniverse) -> Option<usize> {
    compose_stabilization(&per_object_reports(history, universe))
}

/// Whether every per-object projection is weakly consistent (equivalent to
/// global weak consistency by Lemma 8).
pub fn all_projections_weakly_consistent(history: &History, universe: &ObjectUniverse) -> bool {
    universe
        .object_ids()
        .into_iter()
        .all(|o| weak_consistency::is_weakly_consistent(&history.project_object(o), universe))
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_history::{HistoryBuilder, ProcessId};
    use evlin_spec::{FetchIncrement, Register, Value};

    /// A two-object history whose register part needs stabilization but whose
    /// counter part is clean.
    fn mixed_history() -> (ObjectUniverse, History) {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let x = u.add_object(FetchIncrement::new());
        let h = HistoryBuilder::new()
            // Garbage-free counter operations.
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            // A read that ignores the earlier write (needs t > 0).
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(0i64))
            .complete(ProcessId(1), r, Register::read(), Value::from(1i64))
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        (u, h)
    }

    #[test]
    fn per_object_reports_cover_all_objects() {
        let (u, h) = mixed_history();
        let reports = per_object_reports(&h, &u);
        assert_eq!(reports.len(), 2);
        let reg = &reports[0];
        let counter = &reports[1];
        assert_eq!(reg.events, 6);
        assert_eq!(counter.events, 4);
        assert!(reg.weakly_consistent);
        assert!(counter.weakly_consistent);
        assert_eq!(counter.min_stabilization, Some(0));
        assert!(reg.min_stabilization.unwrap() > 0);
    }

    #[test]
    fn composition_bounds_global_stabilization() {
        let (u, h) = mixed_history();
        let composed = composed_stabilization(&h, &u).unwrap();
        let direct = t_linearizability::min_stabilization(&h, &u, None).unwrap();
        assert!(
            composed >= direct,
            "composition ({composed}) must upper-bound the direct answer ({direct})"
        );
        // And the composed index really does make the history t-linearizable.
        assert!(t_linearizability::is_t_linearizable(&h, &u, composed));
    }

    #[test]
    fn weak_consistency_locality_lemma_8() {
        let (u, h) = mixed_history();
        assert_eq!(
            all_projections_weakly_consistent(&h, &u),
            weak_consistency::is_weakly_consistent(&h, &u)
        );
    }

    #[test]
    fn truncated_infinite_object_counterexample_shape() {
        // The paper's counterexample to locality with infinitely many objects
        // (Section 3.2): for registers R1, R2, …, process p writes 1 to Ri
        // and q then reads 0 from Ri.  Each projection stabilizes after its
        // own 4 events, but the global index needed grows linearly with the
        // number of registers — with infinitely many registers there is no
        // single t.  We verify the growth on a truncated version.
        let k = 5usize;
        let mut u = ObjectUniverse::new();
        let regs: Vec<_> = (0..k)
            .map(|_| u.add_object(Register::new(Value::from(0i64))))
            .collect();
        let mut b = HistoryBuilder::new();
        for &reg in &regs {
            b = b
                .complete(
                    ProcessId(0),
                    reg,
                    Register::write(Value::from(1i64)),
                    Value::Unit,
                )
                .complete(ProcessId(1), reg, Register::read(), Value::from(0i64));
        }
        let h = b.build();
        let reports = per_object_reports(&h, &u);
        // Every projection needs a positive t_o (the stale read) but each is
        // small and constant…
        for r in &reports {
            assert!(r.min_stabilization.unwrap() > 0);
            assert!(r.min_stabilization.unwrap() <= 4);
        }
        // …while the composed global index grows with the object count: the
        // last register's stale read forces the prefix to cover almost the
        // whole history.
        let composed = compose_stabilization(&reports).unwrap();
        assert!(composed >= 4 * (k - 1));
    }

    #[test]
    fn composition_fails_if_any_object_fails() {
        let reports = vec![
            ObjectReport {
                object: ObjectId(0),
                events: 2,
                weakly_consistent: true,
                min_stabilization: Some(0),
                global_prefix_needed: Some(0),
            },
            ObjectReport {
                object: ObjectId(1),
                events: 2,
                weakly_consistent: true,
                min_stabilization: None,
                global_prefix_needed: None,
            },
        ];
        assert_eq!(compose_stabilization(&reports), None);
    }
}
