//! The constrained-linearization search engine.
//!
//! Linearizability (Definition in [Herlihy & Wing 1990]) and
//! `t`-linearizability (Definition 2 of the paper) both reduce to the same
//! question: *is there a legal sequential arrangement of a set of operations
//! that (a) includes every required operation, (b) assigns each operation a
//! legal response, matching the fixed response where one is imposed, and
//! (c) respects a given precedence relation between operations?*
//!
//! [`SearchProblem`] captures that question and [`search`] answers it with a
//! depth-first search over partial linearizations, memoizing visited
//! (linearized-set, object-states) pairs — the classic Wing–Gong approach
//! generalized to per-operation constraints.

use crate::util::BitSet;
use evlin_history::{ObjectUniverse, OperationRecord};
use evlin_spec::Value;
use std::collections::HashSet;

/// One operation of a search problem, together with its constraints.
#[derive(Debug, Clone)]
pub struct ConstrainedOp {
    /// The underlying operation (object, invocation, original indices).
    pub record: OperationRecord,
    /// Whether the operation must appear in the sequential witness.
    /// Operations that completed in the history are required; pending
    /// operations are optional.
    pub required: bool,
    /// The response the witness must assign, or `None` if any legal response
    /// is acceptable (pending operations, and operations whose response fell
    /// in the unconstrained prefix for `t`-linearizability).
    pub fixed_response: Option<Value>,
}

/// A constrained-linearization problem.
#[derive(Debug, Clone)]
pub struct SearchProblem {
    /// The operations, with their constraints.
    pub ops: Vec<ConstrainedOp>,
    /// Precedence edges `(i, j)`: if both operations appear in the witness,
    /// operation `i` must be placed before operation `j`.
    ///
    /// All reductions in this crate only create edges whose source is a
    /// *required* operation, which lets the search treat an edge as "source
    /// must already be linearized before the target can be taken".
    pub precedence: Vec<(usize, usize)>,
}

/// A successful search outcome: a witness linearization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Indices (into [`SearchProblem::ops`]) of the operations included in
    /// the witness, in linearization order.
    pub order: Vec<usize>,
    /// The response assigned to each included operation, in the same order.
    pub responses: Vec<Value>,
}

/// Limits placed on the search to keep worst-case behaviour under control.
#[derive(Debug, Clone, Copy)]
pub struct SearchLimits {
    /// Maximum number of search nodes to expand before giving up.
    pub max_nodes: usize,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_nodes: 2_000_000,
        }
    }
}

/// The verdict of a search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchResult {
    /// A witness linearization exists.
    Yes(Witness),
    /// No witness linearization exists.
    No,
    /// The search gave up after expanding [`SearchLimits::max_nodes`] nodes.
    Unknown,
}

impl SearchResult {
    /// `true` iff the result is [`SearchResult::Yes`].
    pub fn is_yes(&self) -> bool {
        matches!(self, SearchResult::Yes(_))
    }

    /// Extracts the witness, if any.
    pub fn witness(self) -> Option<Witness> {
        match self {
            SearchResult::Yes(w) => Some(w),
            _ => None,
        }
    }
}

/// Counters describing one search run (exposed by [`search_with_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Search nodes expanded.
    pub nodes: usize,
    /// Nodes cut off because their `(linearized-set, object-states)` pair had
    /// already been visited — the Wing–Gong memoization at work.
    pub memo_hits: usize,
}

struct Searcher<'a> {
    problem: &'a SearchProblem,
    universe: &'a ObjectUniverse,
    /// predecessors[j] = indices i with an edge (i, j).
    predecessors: Vec<Vec<usize>>,
    required_count: usize,
    visited: HashSet<(BitSet, Vec<Value>)>,
    limits: SearchLimits,
    nodes: usize,
    memo_hits: usize,
    exhausted: bool,
}

impl<'a> Searcher<'a> {
    fn new(problem: &'a SearchProblem, universe: &'a ObjectUniverse, limits: SearchLimits) -> Self {
        let n = problem.ops.len();
        let mut predecessors = vec![Vec::new(); n];
        for &(i, j) in &problem.precedence {
            predecessors[j].push(i);
        }
        let required_count = problem.ops.iter().filter(|o| o.required).count();
        Searcher {
            problem,
            universe,
            predecessors,
            required_count,
            visited: HashSet::new(),
            limits,
            nodes: 0,
            memo_hits: 0,
            exhausted: false,
        }
    }

    fn run(&mut self) -> SearchResult {
        let n = self.problem.ops.len();
        let taken = BitSet::with_capacity(n.max(1));
        let states: Vec<Value> = self
            .universe
            .object_ids()
            .iter()
            .map(|id| self.universe.initial_state(*id).clone())
            .collect();
        let mut order = Vec::new();
        let mut responses = Vec::new();
        if self.dfs(taken, states, 0, &mut order, &mut responses) {
            SearchResult::Yes(Witness { order, responses })
        } else if self.exhausted {
            SearchResult::Unknown
        } else {
            SearchResult::No
        }
    }

    fn dfs(
        &mut self,
        taken: BitSet,
        states: Vec<Value>,
        required_taken: usize,
        order: &mut Vec<usize>,
        responses: &mut Vec<Value>,
    ) -> bool {
        if required_taken == self.required_count {
            return true;
        }
        self.nodes += 1;
        if self.nodes > self.limits.max_nodes {
            self.exhausted = true;
            return false;
        }
        if !self.visited.insert((taken.clone(), states.clone())) {
            self.memo_hits += 1;
            return false;
        }
        let n = self.problem.ops.len();
        for i in 0..n {
            if taken.contains(i) {
                continue;
            }
            // All (required) predecessors must already be linearized.
            if self.predecessors[i]
                .iter()
                .any(|&p| self.problem.ops[p].required && !taken.contains(p))
            {
                continue;
            }
            let cop = &self.problem.ops[i];
            // Greedy pruning: linearizing an *optional* operation only helps
            // if some required operation is still missing, which is always
            // the case here (required_taken < required_count), so we try it.
            let object = cop.record.object;
            let state = &states[object.index()];
            let ty = self.universe.object_type(object);
            let transitions = ty.transitions(state, &cop.record.invocation);
            for tr in transitions {
                if let Some(fixed) = &cop.fixed_response {
                    if &tr.response != fixed {
                        continue;
                    }
                }
                let mut new_taken = taken.clone();
                new_taken.set(i);
                let mut new_states = states.clone();
                new_states[object.index()] = tr.next_state.clone();
                order.push(i);
                responses.push(tr.response.clone());
                let new_required = required_taken + usize::from(cop.required);
                if self.dfs(new_taken, new_states, new_required, order, responses) {
                    return true;
                }
                order.pop();
                responses.pop();
            }
        }
        false
    }
}

/// Runs the constrained-linearization search.
///
/// Returns [`SearchResult::Yes`] with a witness if a legal arrangement
/// exists, [`SearchResult::No`] if provably none exists, and
/// [`SearchResult::Unknown`] if the node budget was exhausted first.
pub fn search(
    problem: &SearchProblem,
    universe: &ObjectUniverse,
    limits: SearchLimits,
) -> SearchResult {
    search_with_stats(problem, universe, limits).0
}

/// Like [`search`], additionally returning node and memoization counters
/// (used by tests and diagnostics to observe the Wing–Gong cache working).
pub fn search_with_stats(
    problem: &SearchProblem,
    universe: &ObjectUniverse,
    limits: SearchLimits,
) -> (SearchResult, SearchStats) {
    let mut searcher = Searcher::new(problem, universe, limits);
    let result = searcher.run();
    (
        result,
        SearchStats {
            nodes: searcher.nodes,
            memo_hits: searcher.memo_hits,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_history::{HistoryBuilder, ObjectId, ProcessId};
    use evlin_spec::{Register, Value};

    fn problem_from(
        history: &evlin_history::History,
        fix_all: bool,
    ) -> (SearchProblem, Vec<(usize, usize)>) {
        let ops = history.operations();
        let mut cops = Vec::new();
        for op in &ops {
            cops.push(ConstrainedOp {
                required: op.is_complete(),
                fixed_response: if fix_all { op.response.clone() } else { None },
                record: op.clone(),
            });
        }
        let mut precedence = Vec::new();
        for (i, a) in ops.iter().enumerate() {
            for (j, b) in ops.iter().enumerate() {
                if i != j && a.precedes(b) {
                    precedence.push((i, j));
                }
            }
        }
        (
            SearchProblem {
                ops: cops,
                precedence: precedence.clone(),
            },
            precedence,
        )
    }

    #[test]
    fn accepts_simple_register_history() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(1i64))
            .build();
        let (p, _) = problem_from(&h, true);
        let result = search(&p, &u, SearchLimits::default());
        let w = result.witness().expect("should be linearizable");
        assert_eq!(w.order.len(), 2);
        assert_eq!(w.responses[0], Value::Unit);
    }

    #[test]
    fn rejects_stale_read_after_write() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        // write(1) completes strictly before read() starts, yet read returns 0.
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(0i64))
            .build();
        let (p, _) = problem_from(&h, true);
        assert_eq!(search(&p, &u, SearchLimits::default()), SearchResult::No);
    }

    #[test]
    fn pending_write_can_justify_a_read() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        // p0's write(5) never completes, but p1 reads 5: linearizable by
        // including the pending write.
        let h = HistoryBuilder::new()
            .invoke(ProcessId(0), r, Register::write(Value::from(5i64)))
            .complete(ProcessId(1), r, Register::read(), Value::from(5i64))
            .build();
        let (p, _) = problem_from(&h, true);
        let w = search(&p, &u, SearchLimits::default())
            .witness()
            .expect("linearizable with pending write");
        assert_eq!(w.order.len(), 2); // the pending write was included
    }

    #[test]
    fn unfixed_responses_relax_the_problem() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(99i64))
            .build();
        // With fixed responses the read of 99 is illegal...
        let (fixed, _) = problem_from(&h, true);
        assert_eq!(
            search(&fixed, &u, SearchLimits::default()),
            SearchResult::No
        );
        // ...but if responses are left free the operations can be arranged.
        let (free, _) = problem_from(&h, false);
        assert!(search(&free, &u, SearchLimits::default()).is_yes());
    }

    #[test]
    fn node_budget_reports_unknown() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let mut b = HistoryBuilder::new();
        for i in 0..6 {
            b = b
                .invoke(ProcessId(i), r, Register::write(Value::from(i as i64)))
                .invoke(ProcessId(i + 6), r, Register::read());
        }
        for i in 0..6 {
            b = b.respond(ProcessId(i), r, Value::Unit).respond(
                ProcessId(i + 6),
                r,
                Value::from(((i + 1) % 6) as i64),
            );
        }
        let h = b.build();
        let (p, _) = problem_from(&h, true);
        let result = search(&p, &u, SearchLimits { max_nodes: 3 });
        assert_eq!(result, SearchResult::Unknown);
    }

    #[test]
    fn memoization_hits_on_revisited_set_and_states() {
        // Four concurrent reads leave the register state unchanged, so the
        // search reaches the same (linearized-set, object-states) pair along
        // every permutation of the reads; together with an unsatisfiable
        // fixed response (read of 7 that nothing wrote) the search must
        // backtrack through all of them, and every arrival after the first
        // at a given pair must be answered by the Wing–Gong cache.
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let mut b = HistoryBuilder::new();
        for p in 0..4 {
            b = b.invoke(ProcessId(p), r, Register::read());
        }
        for p in 0..4 {
            b = b.respond(ProcessId(p), r, Value::from(0i64));
        }
        let h = b
            .complete(ProcessId(4), r, Register::read(), Value::from(7i64))
            .build();
        let (p, _) = problem_from(&h, true);
        let (result, stats) = search_with_stats(&p, &u, SearchLimits::default());
        assert_eq!(result, SearchResult::No);
        assert!(stats.nodes > 0);
        assert!(
            stats.memo_hits > 0,
            "revisited (set, states) pairs must hit the cache: {stats:?}"
        );
        // With 4 interchangeable reads there are 2^4 distinct subsets but
        // 4! orders of taking them; the cache must absorb the difference.
        assert!(stats.memo_hits >= 4, "stats: {stats:?}");
    }

    #[test]
    fn memoization_is_cheaper_than_the_tree() {
        // The number of *expanded* nodes with memoization is bounded by the
        // number of distinct (subset, states) pairs, far below the plain
        // permutation tree: for n interchangeable reads that is 2^n vs n!.
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let n = 7usize;
        let mut b = HistoryBuilder::new();
        for p in 0..n {
            b = b.invoke(ProcessId(p), r, Register::read());
        }
        for p in 0..n {
            b = b.respond(ProcessId(p), r, Value::from(0i64));
        }
        let h = b
            .complete(ProcessId(n), r, Register::read(), Value::from(7i64))
            .build();
        let (p, _) = problem_from(&h, true);
        let (result, stats) = search_with_stats(&p, &u, SearchLimits::default());
        assert_eq!(result, SearchResult::No);
        let factorial: usize = (1..=n).product();
        assert!(
            stats.nodes < factorial,
            "memoized search expanded {} nodes, unmemoized would need ≥ {}",
            stats.nodes,
            factorial
        );
    }

    #[test]
    fn empty_problem_is_trivially_satisfiable() {
        let u = ObjectUniverse::new();
        let p = SearchProblem {
            ops: Vec::new(),
            precedence: Vec::new(),
        };
        assert!(search(&p, &u, SearchLimits::default()).is_yes());
    }

    #[test]
    fn witness_respects_precedence() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let o = ObjectId(0);
        assert_eq!(r, o);
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(2i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(2i64))
            .build();
        let (p, precedence) = problem_from(&h, true);
        let w = search(&p, &u, SearchLimits::default()).witness().unwrap();
        let pos = |i: usize| w.order.iter().position(|&x| x == i).unwrap();
        for (a, b) in precedence {
            assert!(pos(a) < pos(b), "edge ({a},{b}) violated");
        }
    }
}
