//! The legacy entry point of the constrained-linearization search.
//!
//! Linearizability (Definition in [Herlihy & Wing 1990]) and
//! `t`-linearizability (Definition 2 of the paper) both reduce to the same
//! question: *is there a legal sequential arrangement of a set of operations
//! that (a) includes every required operation, (b) assigns each operation a
//! legal response, matching the fixed response where one is imposed, and
//! (c) respects a given precedence relation between operations?*
//!
//! [`SearchProblem`] captures that question.  Since the kernel refactor the
//! actual searcher lives in [`crate::kernel`] — one iterative Wing–Gong
//! engine shared by every consistency condition — and this module is a thin
//! facade kept for callers that already hold a prebuilt [`SearchProblem`]:
//! [`search`] and [`search_with_stats`] delegate to [`kernel::solve`].

use crate::kernel;
pub use crate::kernel::{
    ConstrainedOp, SearchLimits, SearchProblem, SearchResult, SearchStats, Witness,
};
use evlin_history::ObjectUniverse;

/// Runs the constrained-linearization search.
///
/// Returns [`SearchResult::Yes`] with a witness if a legal arrangement
/// exists, [`SearchResult::No`] if provably none exists, and
/// [`SearchResult::Unknown`] if the node budget was exhausted first.
pub fn search(
    problem: &SearchProblem,
    universe: &ObjectUniverse,
    limits: SearchLimits,
) -> SearchResult {
    kernel::solve(problem, universe, limits).0
}

/// Like [`search`], additionally returning node and memoization counters
/// (used by tests and diagnostics to observe the Wing–Gong cache working).
pub fn search_with_stats(
    problem: &SearchProblem,
    universe: &ObjectUniverse,
    limits: SearchLimits,
) -> (SearchResult, SearchStats) {
    kernel::solve(problem, universe, limits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_history::{HistoryBuilder, ObjectId, ProcessId};
    use evlin_spec::{Register, Value};

    fn problem_from(
        history: &evlin_history::History,
        fix_all: bool,
    ) -> (SearchProblem, Vec<(usize, usize)>) {
        let ops = history.operations();
        let mut cops = Vec::new();
        for op in &ops {
            cops.push(ConstrainedOp {
                required: op.is_complete(),
                fixed_response: if fix_all { op.response.clone() } else { None },
                record: op.clone(),
            });
        }
        let mut precedence = Vec::new();
        for (i, a) in ops.iter().enumerate() {
            for (j, b) in ops.iter().enumerate() {
                if i != j && a.precedes(b) {
                    precedence.push((i, j));
                }
            }
        }
        (
            SearchProblem {
                ops: cops,
                precedence: precedence.clone(),
            },
            precedence,
        )
    }

    #[test]
    fn accepts_simple_register_history() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(1i64))
            .build();
        let (p, _) = problem_from(&h, true);
        let result = search(&p, &u, SearchLimits::default());
        let w = result.witness().expect("should be linearizable");
        assert_eq!(w.order.len(), 2);
        assert_eq!(w.responses[0], Value::Unit);
    }

    #[test]
    fn rejects_stale_read_after_write() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        // write(1) completes strictly before read() starts, yet read returns 0.
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(0i64))
            .build();
        let (p, _) = problem_from(&h, true);
        assert_eq!(search(&p, &u, SearchLimits::default()), SearchResult::No);
    }

    #[test]
    fn pending_write_can_justify_a_read() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        // p0's write(5) never completes, but p1 reads 5: linearizable by
        // including the pending write.
        let h = HistoryBuilder::new()
            .invoke(ProcessId(0), r, Register::write(Value::from(5i64)))
            .complete(ProcessId(1), r, Register::read(), Value::from(5i64))
            .build();
        let (p, _) = problem_from(&h, true);
        let w = search(&p, &u, SearchLimits::default())
            .witness()
            .expect("linearizable with pending write");
        assert_eq!(w.order.len(), 2); // the pending write was included
    }

    #[test]
    fn unfixed_responses_relax_the_problem() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(99i64))
            .build();
        // With fixed responses the read of 99 is illegal...
        let (fixed, _) = problem_from(&h, true);
        assert_eq!(
            search(&fixed, &u, SearchLimits::default()),
            SearchResult::No
        );
        // ...but if responses are left free the operations can be arranged.
        let (free, _) = problem_from(&h, false);
        assert!(search(&free, &u, SearchLimits::default()).is_yes());
    }

    #[test]
    fn node_budget_reports_unknown() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let mut b = HistoryBuilder::new();
        for i in 0..6 {
            b = b
                .invoke(ProcessId(i), r, Register::write(Value::from(i as i64)))
                .invoke(ProcessId(i + 6), r, Register::read());
        }
        for i in 0..6 {
            b = b.respond(ProcessId(i), r, Value::Unit).respond(
                ProcessId(i + 6),
                r,
                Value::from(((i + 1) % 6) as i64),
            );
        }
        let h = b.build();
        let (p, _) = problem_from(&h, true);
        let result = search(&p, &u, SearchLimits { max_nodes: 3 });
        assert_eq!(result, SearchResult::Unknown);
    }

    #[test]
    fn memoization_hits_on_revisited_set_and_states() {
        // Three concurrent writes on three *distinct* registers, plus an
        // unsatisfiable fixed response (a read of 7 that nothing wrote): the
        // search must explore every subset of the writes, and different
        // interleavings of distinct operations reach the same
        // (linearized-multiset, object-states) key — every arrival after the
        // first must be answered by the Wing–Gong cache.  (Identical
        // operations no longer produce cache hits: the kernel merges them
        // into one interchangeability class up front.)
        let mut u = ObjectUniverse::new();
        let regs: Vec<_> = (0..3)
            .map(|_| u.add_object(Register::new(Value::from(0i64))))
            .collect();
        let bad = u.add_object(Register::new(Value::from(0i64)));
        let mut b = HistoryBuilder::new();
        for (p, &r) in regs.iter().enumerate() {
            b = b.invoke(ProcessId(p), r, Register::write(Value::from(1i64)));
        }
        for (p, &r) in regs.iter().enumerate() {
            b = b.respond(ProcessId(p), r, Value::Unit);
        }
        let h = b
            .complete(ProcessId(3), bad, Register::read(), Value::from(7i64))
            .build();
        let (p, _) = problem_from(&h, true);
        let (result, stats) = search_with_stats(&p, &u, SearchLimits::default());
        assert_eq!(result, SearchResult::No);
        assert!(stats.nodes > 0);
        // 2^3 subsets of the writes, reachable along 3! orders: the cache
        // must absorb the difference (3 * 2^2 - (2^3 - 1) = 5 hits).
        assert!(
            stats.memo_hits >= 4,
            "revisited (multiset, states) keys must hit the cache: {stats:?}"
        );
    }

    #[test]
    fn memoization_is_cheaper_than_the_tree() {
        // The number of *expanded* nodes with memoization and class merging
        // is far below the plain permutation tree: for n interchangeable
        // reads it is linear in n, vs n! without.
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let n = 7usize;
        let mut b = HistoryBuilder::new();
        for p in 0..n {
            b = b.invoke(ProcessId(p), r, Register::read());
        }
        for p in 0..n {
            b = b.respond(ProcessId(p), r, Value::from(0i64));
        }
        let h = b
            .complete(ProcessId(n), r, Register::read(), Value::from(7i64))
            .build();
        let (p, _) = problem_from(&h, true);
        let (result, stats) = search_with_stats(&p, &u, SearchLimits::default());
        assert_eq!(result, SearchResult::No);
        let factorial: usize = (1..=n).product();
        assert!(
            stats.nodes < factorial,
            "memoized search expanded {} nodes, unmemoized would need ≥ {}",
            stats.nodes,
            factorial
        );
    }

    #[test]
    fn empty_problem_is_trivially_satisfiable() {
        let u = ObjectUniverse::new();
        let p = SearchProblem {
            ops: Vec::new(),
            precedence: Vec::new(),
        };
        assert!(search(&p, &u, SearchLimits::default()).is_yes());
    }

    #[test]
    fn witness_respects_precedence() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let o = ObjectId(0);
        assert_eq!(r, o);
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(2i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(2i64))
            .build();
        let (p, precedence) = problem_from(&h, true);
        let w = search(&p, &u, SearchLimits::default()).witness().unwrap();
        let pos = |i: usize| w.order.iter().position(|&x| x == i).unwrap();
        for (a, b) in precedence {
            assert!(pos(a) < pos(b), "edge ({a},{b}) violated");
        }
    }
}
