//! Classical linearizability (Herlihy & Wing), i.e. `0`-linearizability.
//!
//! "0-linearizability is equivalent to linearizability" (paper, Section 3.2),
//! so [`Linearizability`] is a thin [`ConsistencyCondition`] delegating to
//! [`crate::t_linearizability::TLinearizability`] with `t = 0`, plus helpers
//! for obtaining a witness linearization as a legal sequential [`History`].
//!
//! Linearizability is *local* (the Herlihy–Wing locality theorem), so the
//! kernel's pre-pass splits multi-object histories into independent
//! per-object subproblems — the single biggest algorithmic speedup available
//! to the checker — and composes the per-object witnesses back together.

use crate::kernel::{ConsistencyCondition, ConstrainedOp, Locality, Witness};
use crate::t_linearizability::{self, TLinearizability};
use evlin_history::{History, ObjectUniverse};

/// Linearizability as a kernel condition: `t`-linearizability with `t = 0`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Linearizability;

impl ConsistencyCondition for Linearizability {
    fn name(&self) -> &'static str {
        "linearizability"
    }

    fn candidates(&self, history: &History) -> Vec<ConstrainedOp> {
        TLinearizability::new(0).candidates(history)
    }

    fn precedence(&self, history: &History, candidates: &[ConstrainedOp]) -> Vec<(usize, usize)> {
        TLinearizability::new(0).precedence(history, candidates)
    }

    fn locality(&self) -> Locality {
        Locality::Exact
    }
}

/// Decides whether `history` is linearizable with respect to `universe`.
///
/// Pending operations may be completed (with any legal response) or dropped,
/// as in the standard definition.
pub fn is_linearizable(history: &History, universe: &ObjectUniverse) -> bool {
    t_linearizability::is_t_linearizable(history, universe, 0)
}

/// Returns a witness linearization if one exists.
pub fn linearization_witness(history: &History, universe: &ObjectUniverse) -> Option<Witness> {
    t_linearizability::t_linearization(history, universe, 0)
}

/// Renders a witness produced by [`linearization_witness`] (or by the
/// `t`-linearizability search) as a legal sequential [`History`], useful for
/// debugging and for displaying counterexamples in the experiment binaries.
pub fn witness_to_history(history: &History, witness: &Witness) -> History {
    let ops = history.operations();
    let mut out = History::new();
    for (k, &idx) in witness.order.iter().enumerate() {
        let op = &ops[idx];
        out.push_invoke(op.process, op.object, op.invocation.clone());
        out.push_respond(op.process, op.object, witness.responses[k].clone());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_history::{legal, HistoryBuilder, ProcessId};
    use evlin_spec::{Consensus, FetchIncrement, Queue, Register, Value};

    #[test]
    fn sequential_legal_histories_are_linearizable() {
        let mut u = ObjectUniverse::new();
        let q = u.add_object(Queue::new());
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                q,
                Queue::enqueue(Value::from(1i64)),
                Value::Unit,
            )
            .complete(
                ProcessId(1),
                q,
                Queue::enqueue(Value::from(2i64)),
                Value::Unit,
            )
            .complete(ProcessId(0), q, Queue::dequeue(), Value::from(1i64))
            .build();
        assert!(is_linearizable(&h, &u));
    }

    #[test]
    fn queue_fifo_violation_is_rejected() {
        let mut u = ObjectUniverse::new();
        let q = u.add_object(Queue::new());
        // enqueue(1) then enqueue(2) strictly before any dequeue, yet the
        // first dequeue returns 2.
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                q,
                Queue::enqueue(Value::from(1i64)),
                Value::Unit,
            )
            .complete(
                ProcessId(0),
                q,
                Queue::enqueue(Value::from(2i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), q, Queue::dequeue(), Value::from(2i64))
            .build();
        assert!(!is_linearizable(&h, &u));
    }

    #[test]
    fn overlapping_fetch_inc_operations_may_commute() {
        let mut u = ObjectUniverse::new();
        let x = u.add_object(FetchIncrement::new());
        // Two overlapping operations returning 1 and 0 respectively: the
        // linearization order is the reverse of the invocation order, which
        // is allowed because they overlap.
        let h = HistoryBuilder::new()
            .invoke(ProcessId(0), x, FetchIncrement::fetch_inc())
            .invoke(ProcessId(1), x, FetchIncrement::fetch_inc())
            .respond(ProcessId(0), x, Value::from(1i64))
            .respond(ProcessId(1), x, Value::from(0i64))
            .build();
        assert!(is_linearizable(&h, &u));
    }

    #[test]
    fn consensus_disagreement_is_not_linearizable() {
        let mut u = ObjectUniverse::new();
        let c = u.add_object(Consensus::new());
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                c,
                Consensus::propose(Value::from(0i64)),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                c,
                Consensus::propose(Value::from(1i64)),
                Value::from(1i64),
            )
            .build();
        assert!(!is_linearizable(&h, &u));
    }

    #[test]
    fn witness_history_is_legal_and_sequential() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let h = HistoryBuilder::new()
            .invoke(ProcessId(0), r, Register::write(Value::from(3i64)))
            .complete(ProcessId(1), r, Register::read(), Value::from(3i64))
            .respond(ProcessId(0), r, Value::Unit)
            .build();
        let w = linearization_witness(&h, &u).expect("linearizable");
        let s = witness_to_history(&h, &w);
        assert!(s.is_sequential());
        assert!(legal::is_legal_sequential(&s, &u));
        // The write must be linearized before the read for the read of 3 to
        // be legal.
        assert_eq!(
            s.complete_operations()[0].invocation,
            Register::write(Value::from(3i64))
        );
    }

    #[test]
    fn multi_object_histories_compose() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let x = u.add_object(FetchIncrement::new());
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(1i64))
            .build();
        assert!(is_linearizable(&h, &u));
        // Break only the register part: the whole history becomes
        // non-linearizable (locality).
        let bad = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(0i64))
            .build();
        assert!(!is_linearizable(&bad, &u));
    }

    #[test]
    fn generated_linearizable_histories_are_accepted() {
        use evlin_history::generator::{concurrentize, random_sequential_legal, WorkloadSpec};
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut u = ObjectUniverse::new();
        u.add_object(Register::new(Value::from(0i64)));
        u.add_object(FetchIncrement::new());
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let spec = WorkloadSpec {
                processes: 3,
                operations: 10,
            };
            let seq = random_sequential_legal(&u, &spec, &mut rng);
            let conc = concurrentize(&seq, 2, &mut rng);
            assert!(
                is_linearizable(&conc, &u),
                "linearizable-by-construction history rejected (seed {seed})"
            );
        }
    }
}
