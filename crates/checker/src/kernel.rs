//! The unified Wing–Gong check kernel.
//!
//! Every consistency condition of the paper reduces to the same question:
//! *is there a legal sequential arrangement of a set of operations that
//! (a) includes every required operation, (b) assigns each operation a legal
//! response, matching the fixed response where one is imposed, and
//! (c) respects a given precedence relation between operations?*
//!
//! This module is the single decision procedure behind all of them:
//!
//! * [`ConsistencyCondition`] — how a condition turns a history into that
//!   question: candidate-operation enumeration ([`candidates`]), per-operation
//!   constraints ([`ConstrainedOp`]), precedence edges ([`precedence`]) and an
//!   acceptance predicate ([`accepted`]).  `linearizability`,
//!   `t_linearizability`, `weak_consistency` and `eventual` are all thin
//!   implementations of this trait;
//! * [`solve`] — one iterative (non-recursive) Wing–Gong searcher over
//!   partial linearizations.  Object states and responses are interned to
//!   dense `u32` identifiers, transition lookups are memoized per
//!   `(invocation, state)` pair into a pooled span arena, interchangeable
//!   operations are merged into classes, and the visited
//!   `(linearized-multiset, object-states)` cache keys on an *incrementally
//!   maintained* Zobrist fold — one linearization step updates the key with
//!   four word mixes instead of serializing the pair.  The fold identifies
//!   states up to a 64-bit hash: a key collision (probability ~nodes²/2⁶⁵
//!   per search) could prune a genuinely new subtree, the same vanishing
//!   risk the simulator's fingerprint deduplication documents and accepts —
//!   the debug cross-check guards against maintenance drift, and the
//!   brute-force differential suite fuzzes the end-to-end verdicts;
//! * [`check_local`] — the locality pre-pass: for conditions whose
//!   decomposition is [`Locality::Exact`] (the Herlihy–Wing locality theorem
//!   for linearizability, Lemma 8 for weak consistency), a multi-object
//!   history is split into independent per-object subproblems, checked in
//!   parallel via [`crate::parallel`], and the per-object witnesses are
//!   composed back into a global one;
//! * [`KernelScratch`] — reusable search state (visited cache, taken-set,
//!   and the pooled searcher tables and arenas) so that e.g. the binary
//!   search of `min_stabilization`, the weak-consistency per-operation loop
//!   and the monitor's per-segment chains run allocation-free after their
//!   first search.
//!
//! [`candidates`]: ConsistencyCondition::candidates
//! [`precedence`]: ConsistencyCondition::precedence
//! [`accepted`]: ConsistencyCondition::accepted

use crate::parallel;
use crate::util::{self, BitSet, FxHashMap, FxHashSet};
use evlin_history::{History, ObjectId, ObjectUniverse, OperationRecord};
use evlin_spec::{Invocation, Value};

// ---------------------------------------------------------------------------
// Problem statement types
// ---------------------------------------------------------------------------

/// One operation of a search problem, together with its constraints.
#[derive(Debug, Clone)]
pub struct ConstrainedOp {
    /// The underlying operation (object, invocation, original indices).
    pub record: OperationRecord,
    /// Whether the operation must appear in the sequential witness.
    /// Operations that completed in the history are required; pending
    /// operations are optional.
    pub required: bool,
    /// The response the witness must assign, or `None` if any legal response
    /// is acceptable (pending operations, and operations whose response fell
    /// in the unconstrained prefix for `t`-linearizability).
    pub fixed_response: Option<Value>,
}

/// A constrained-linearization problem.
#[derive(Debug, Clone)]
pub struct SearchProblem {
    /// The operations, with their constraints.
    pub ops: Vec<ConstrainedOp>,
    /// Precedence edges `(i, j)`: if both operations appear in the witness,
    /// operation `i` must be placed before operation `j`.
    ///
    /// All reductions in this crate only create edges whose source is a
    /// *required* operation, which lets the search treat an edge as "source
    /// must already be linearized before the target can be taken".
    pub precedence: Vec<(usize, usize)>,
}

/// A successful search outcome: a witness linearization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Indices (into [`SearchProblem::ops`]) of the operations included in
    /// the witness, in linearization order.
    pub order: Vec<usize>,
    /// The response assigned to each included operation, in the same order.
    pub responses: Vec<Value>,
}

/// Limits placed on the search to keep worst-case behaviour under control.
#[derive(Debug, Clone, Copy)]
pub struct SearchLimits {
    /// Maximum number of search nodes to expand before giving up.
    pub max_nodes: usize,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_nodes: 2_000_000,
        }
    }
}

/// The verdict of a search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchResult {
    /// A witness linearization exists.
    Yes(Witness),
    /// No witness linearization exists.
    No,
    /// The search gave up after expanding [`SearchLimits::max_nodes`] nodes.
    Unknown,
}

impl SearchResult {
    /// `true` iff the result is [`SearchResult::Yes`].
    pub fn is_yes(&self) -> bool {
        matches!(self, SearchResult::Yes(_))
    }

    /// Extracts the witness, if any.
    pub fn witness(self) -> Option<Witness> {
        match self {
            SearchResult::Yes(w) => Some(w),
            _ => None,
        }
    }
}

/// Counters describing one search run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Search nodes expanded (summed over subproblems when the locality
    /// pre-pass decomposed the history).
    pub nodes: usize,
    /// Nodes cut off because their `(linearized-multiset, object-states)`
    /// key had already been visited — the Wing–Gong memoization at work.
    pub memo_hits: usize,
    /// Peak bytes of live kernel bookkeeping (visited cache, interners,
    /// transition arena, per-op tables) across this run and every absorbed
    /// one — a function of the explored key sets and problem sizes, so it is
    /// deterministic across thread counts.  Because [`KernelScratch`] pools
    /// these buffers, repeated searches reuse rather than re-grow them; the
    /// monitor's per-segment accounting test pins that down.
    pub arena_bytes: usize,
}

impl SearchStats {
    /// Accumulates another run's counters into this one (used when a check
    /// is split into subproblems — per object, per segment, per probe).
    /// Node counters add; the memory high-water mark takes the maximum.
    pub fn absorb(&mut self, other: SearchStats) {
        self.nodes += other.nodes;
        self.memo_hits += other.memo_hits;
        self.arena_bytes = self.arena_bytes.max(other.arena_bytes);
    }
}

/// Progress snapshot handed to [`ConsistencyCondition::accepted`].
#[derive(Debug, Clone, Copy)]
pub struct SearchProgress {
    /// Required operations linearized so far.
    pub required_taken: usize,
    /// Total number of required operations in the problem.
    pub required_total: usize,
    /// Operations (required or optional) linearized so far.
    pub taken_total: usize,
}

// ---------------------------------------------------------------------------
// The condition trait
// ---------------------------------------------------------------------------

/// How a condition decomposes across objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// The condition holds of a history iff it holds of every per-object
    /// projection, *and* the condition's [`ConsistencyCondition::candidates`]
    /// returns exactly one candidate per operation of the history, in
    /// [`History::operations`] order (needed to map per-object witnesses back
    /// to global operation indices).  Linearizability is the canonical
    /// example (the Herlihy–Wing locality theorem).
    Exact,
    /// No sound per-object decomposition; the history must be checked whole.
    /// `t`-linearizability for a fixed `t > 0` is the canonical example:
    /// Lemma 7 only decomposes "`t`-linearizable for *some* `t`", and the
    /// composed index is not tight.
    Global,
}

/// A consistency condition, expressed as the ingredients of a
/// constrained-linearization search: which operations may appear in the
/// sequential witness and under which constraints, which precedence edges
/// the witness must respect, and when a partial linearization is accepted.
pub trait ConsistencyCondition: Sync {
    /// Human-readable name (used in diagnostics).
    fn name(&self) -> &'static str;

    /// Enumerates the candidate operations of the search, with their
    /// constraints.
    fn candidates(&self, history: &History) -> Vec<ConstrainedOp>;

    /// Precedence edges `(i, j)` over `candidates`: if both appear in the
    /// witness, `i` must precede `j`.  Sources must be required candidates.
    fn precedence(&self, history: &History, candidates: &[ConstrainedOp]) -> Vec<(usize, usize)>;

    /// Acceptance predicate: when is a partial linearization a witness?
    /// The default — every required candidate has been linearized — is what
    /// all the paper's conditions use.
    fn accepted(&self, progress: &SearchProgress) -> bool {
        progress.required_taken == progress.required_total
    }

    /// Whether the condition admits the exact per-object decomposition used
    /// by [`check_local`].
    fn locality(&self) -> Locality {
        Locality::Global
    }

    /// Builds the full search problem for a history.
    fn problem(&self, history: &History) -> SearchProblem {
        let ops = self.candidates(history);
        let precedence = self.precedence(history, &ops);
        SearchProblem { ops, precedence }
    }
}

// ---------------------------------------------------------------------------
// Reusable scratch state
// ---------------------------------------------------------------------------

/// Reusable search state: the visited cache, the taken-set, and the pooled
/// searcher buffers (interners, per-operation tables, the transition arena,
/// the DFS frame stack).
///
/// Every allocation of a search survives into the next one, so repeated
/// probes — the binary search of `min_stabilization`, the per-operation loop
/// of the weak-consistency checker, the monitor's per-segment chains — run
/// allocation-free after warm-up (the allocation-count smoke test in
/// `tests/alloc_smoke.rs` enforces this).  `BitSet::clear` and
/// `BitSet::count` keep the taken-set sound across reuses: bits left set by
/// a successful search are cleared one by one, and the emptiness invariant is
/// asserted before the next run.
#[derive(Default)]
pub struct KernelScratch {
    visited: FxHashSet<u64>,
    taken: BitSet,
    capacity: usize,
    bufs: SearcherBufs,
    /// Distinct accepting frontiers seen by [`solve_frontiers`].
    frontier_seen: FxHashSet<Box<[u32]>>,
}

impl KernelScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        KernelScratch::default()
    }

    /// Prepares the scratch for a problem with `n` operations: clears the
    /// visited cache (keeping its allocation) and ensures the taken-set has
    /// capacity for `n` bits and is empty.
    fn prepare(&mut self, n: usize) {
        self.visited.clear();
        if self.capacity < n || self.capacity == 0 {
            self.taken = BitSet::with_capacity(n.max(1));
            self.capacity = n.max(1);
        }
        debug_assert_eq!(
            self.taken.count(),
            0,
            "taken-set must be empty between searches"
        );
    }
}

/// Retention cap for the thread-local scratch: a pool grown past this many
/// live bytes by one unusually large search is dropped after the call
/// instead of pinning peak-sized buffers to the thread for the process
/// lifetime (long-lived rayon workers and monitor threads would otherwise
/// never release them).
const THREAD_SCRATCH_RETAIN_BYTES: usize = 1 << 20;

/// Runs `f` with a thread-local [`KernelScratch`], so entry points without a
/// caller-provided scratch ([`solve`], [`check`], the `is_linearizable`
/// facades) still reuse one warm buffer pool per thread instead of
/// reallocating per call.  Falls back to a fresh scratch on re-entrant use.
fn with_thread_scratch<R>(f: impl FnOnce(&mut KernelScratch) -> R) -> R {
    use std::cell::RefCell;
    thread_local! {
        static SCRATCH: RefCell<KernelScratch> = RefCell::new(KernelScratch::new());
    }
    SCRATCH.with(|cell| match cell.try_borrow_mut() {
        Ok(mut scratch) => {
            let result = f(&mut scratch);
            if scratch.bufs.live_bytes() + scratch.visited.len() * std::mem::size_of::<u64>()
                > THREAD_SCRATCH_RETAIN_BYTES
            {
                *scratch = KernelScratch::new();
            }
            result
        }
        Err(_) => f(&mut KernelScratch::new()),
    })
}

/// The pooled per-search arrays of the searcher, owned by [`KernelScratch`]
/// between runs.  Everything is flat: variable-length per-item lists
/// (precedence predecessors, interchangeability-class members, memoized
/// transition lists) are spans into shared arena vectors instead of nested
/// `Vec<Vec<_>>`, so a search allocates nothing once the pool is warm.
#[derive(Default)]
struct SearcherBufs {
    /// Active objects, in first-appearance order.
    slots: Vec<ObjectId>,
    /// Interned `Value` table (object states and responses).
    values: Vec<Value>,
    /// Value-id lookup, engaged only past [`LINEAR_INTERN_MAX`] entries (the
    /// small-problem fast path scans `values` linearly instead of paying
    /// hash-map setup).
    value_map: FxHashMap<Value, u32>,
    /// Interned `(slot, invocation)` table (the object repeated for
    /// transition lookups).
    inv_table: Vec<(u32, ObjectId, Invocation)>,
    /// Invocation-id lookup, engaged only past [`LINEAR_INTERN_MAX`] rows.
    inv_map: FxHashMap<(u32, Invocation), u32>,
    // --- per-operation tables ---
    op_inv: Vec<u32>,
    op_slot: Vec<u32>,
    op_required: Vec<bool>,
    /// Fixed-response value id, or `INVALID` for a free response.
    op_fixed: Vec<u32>,
    incident: Vec<bool>,
    /// CSR of required predecessors: `pred_data[pred_offsets[j]..pred_offsets[j+1]]`.
    pred_offsets: Vec<u32>,
    pred_data: Vec<u32>,
    class_of: Vec<u32>,
    /// One `(inv, required, fixed, class)` row per mergeable class.
    class_reps: Vec<(u32, bool, u32, u32)>,
    /// Class lookup, engaged only past [`LINEAR_INTERN_MAX`] classes.
    class_map: FxHashMap<(u32, bool, u32), u32>,
    /// CSR of class members in ascending operation order.
    class_offsets: Vec<u32>,
    class_data: Vec<u32>,
    /// Reused counting-sort cursor.
    cursor: Vec<u32>,
    // --- mutable search state ---
    class_counts: Vec<u16>,
    states: Vec<u32>,
    order: Vec<u32>,
    responses: Vec<u32>,
    // --- memoized transitions ---
    /// `((inv as u64) << 32 | state)` → index into `trans_spans`.
    trans_index: FxHashMap<u64, u32>,
    /// `(start, len)` spans into `trans_data`.
    trans_spans: Vec<(u32, u32)>,
    trans_data: Vec<(u32, u32)>,
    /// Pooled DFS frame stack.
    frames: Vec<Frame>,
}

impl SearcherBufs {
    /// Clears every table (keeping capacity) for the next search.
    fn reset(&mut self) {
        self.slots.clear();
        self.values.clear();
        self.value_map.clear();
        self.inv_table.clear();
        self.inv_map.clear();
        self.op_inv.clear();
        self.op_slot.clear();
        self.op_required.clear();
        self.op_fixed.clear();
        self.incident.clear();
        self.pred_offsets.clear();
        self.pred_data.clear();
        self.class_of.clear();
        self.class_reps.clear();
        self.class_map.clear();
        self.class_offsets.clear();
        self.class_data.clear();
        self.cursor.clear();
        self.class_counts.clear();
        self.states.clear();
        self.order.clear();
        self.responses.clear();
        self.trans_index.clear();
        self.trans_spans.clear();
        self.trans_data.clear();
        self.frames.clear();
    }

    /// Bytes of live bookkeeping (by current lengths, not capacities, so the
    /// figure is a deterministic function of the search itself).
    fn live_bytes(&self) -> usize {
        use std::mem::size_of;
        self.slots.len() * size_of::<ObjectId>()
            + self.values.len() * size_of::<Value>()
            + self.inv_table.len() * size_of::<(u32, ObjectId, Invocation)>()
            + (self.op_inv.len() + self.op_slot.len() + self.op_fixed.len()) * size_of::<u32>()
            + self.op_required.len()
            + (self.pred_offsets.len() + self.pred_data.len()) * size_of::<u32>()
            + self.class_of.len() * size_of::<u32>()
            + self.class_reps.len() * size_of::<(u32, bool, u32, u32)>()
            + (self.class_offsets.len() + self.class_data.len()) * size_of::<u32>()
            + self.class_counts.len() * size_of::<u16>()
            + (self.states.len() + self.order.len() + self.responses.len()) * size_of::<u32>()
            + self.trans_index.len() * size_of::<(u64, u32)>()
            + self.trans_spans.len() * size_of::<(u32, u32)>()
            + self.trans_data.len() * size_of::<(u32, u32)>()
    }
}

/// Linear-scan interning bound: problems whose value table stays at or below
/// this size (the overwhelmingly common case — unit-test histories, bench
/// histories up to ~20 operations, per-object monitor segments) never touch
/// a hash map during setup.
const LINEAR_INTERN_MAX: usize = 32;

/// Domain tag of class-count components of the incremental visited key.
const TAG_CLASS: u64 = 0x636c_6173_7300_0001;
/// Domain tag of object-state components of the incremental visited key.
const TAG_STATE: u64 = 0x7374_6174_6500_0002;

// ---------------------------------------------------------------------------
// The iterative searcher
// ---------------------------------------------------------------------------

const INVALID: u32 = u32::MAX;

/// Raw frontier as collected by the searcher: interned per-slot final states
/// plus the taken-flags of the tracked operations.
type RawFrontier = (Vec<u32>, Vec<bool>);

/// One level of the explicit DFS stack: which candidate operation is being
/// explored and which of its transitions comes next, plus the undo record of
/// the step that produced this level.
struct Frame {
    /// Candidate operation currently being enumerated at this level.
    i: usize,
    /// Next transition index for operation `i`.
    k: u32,
    /// Index into the transition-span arena of operation `i`'s transitions at
    /// this level's entry state, or `INVALID` before it is computed.
    trans: u32,
    /// How this level's node was produced (`None` only for the root).
    undo: Option<Undo>,
}

/// Everything needed to retract one linearization step.
struct Undo {
    op: usize,
    class: usize,
    slot: usize,
    prev_state: u32,
    required: bool,
}

/// The iterative Wing–Gong searcher over one interned problem.
///
/// All of its arrays live in [`SearcherBufs`], borrowed from the caller's
/// [`KernelScratch`] for the duration of the search and returned afterwards,
/// so a warm scratch makes both construction and the search itself
/// allocation-free.  The visited cache keys on an *incrementally maintained*
/// Zobrist fold of the `(per-class taken counts, object states)` pair
/// ([`Searcher::vkey`]): one linearization step XORs out and in at most four
/// [`crate::util::zkey`] components instead of serializing a fresh boxed key
/// per node.
struct Searcher<'a> {
    universe: &'a ObjectUniverse,
    limits: SearchLimits,
    n: usize,
    required_count: usize,
    /// The pooled tables (see [`SearcherBufs`]).
    b: SearcherBufs,
    /// The incremental visited-cache key of the current search state.
    vkey: u64,
    // --- mutable search state ---
    required_taken: usize,
    nodes: usize,
    memo_hits: usize,
    exhausted: bool,
}

/// Interns `v` into the pooled value table: linear scan while the table is
/// small (the small-problem fast path — no hash-map setup for the common
/// tiny searches), hash lookup once it grows past [`LINEAR_INTERN_MAX`].
fn intern_value(b: &mut SearcherBufs, v: &Value) -> u32 {
    if b.value_map.is_empty() {
        if let Some(i) = b.values.iter().position(|x| x == v) {
            return i as u32;
        }
        let id = b.values.len() as u32;
        b.values.push(v.clone());
        if b.values.len() > LINEAR_INTERN_MAX {
            // Grown past the linear bound: engage the map from here on.
            for (i, x) in b.values.iter().enumerate() {
                b.value_map.insert(x.clone(), i as u32);
            }
        }
        return id;
    }
    if let Some(&i) = b.value_map.get(v) {
        return i;
    }
    let id = b.values.len() as u32;
    b.values.push(v.clone());
    b.value_map.insert(v.clone(), id);
    id
}

impl<'a> Searcher<'a> {
    /// Builds the interned problem inside `bufs` (taken from a
    /// [`KernelScratch`]; returned via [`Searcher::into_bufs`]).
    fn new(
        problem: &SearchProblem,
        universe: &'a ObjectUniverse,
        limits: SearchLimits,
        mut b: SearcherBufs,
    ) -> Self {
        b.reset();
        let n = problem.ops.len();

        // Active objects -> slots, and per-op interned invocations.  All
        // lookups are linear scans over the (small) tables — see
        // `LINEAR_INTERN_MAX` for the value interner's fallback.
        for i in 0..n {
            let cop = &problem.ops[i];
            let slot = match b.slots.iter().position(|&o| o == cop.record.object) {
                Some(s) => s,
                None => {
                    b.slots.push(cop.record.object);
                    b.slots.len() - 1
                }
            };
            b.op_slot.push(slot as u32);
            // Linear scan while the table is small; hash lookup once it
            // grows past the small-problem bound (mirrors `intern_value`, so
            // setup stays O(n) on large histories too).
            let found = if b.inv_map.is_empty() {
                b.inv_table
                    .iter()
                    .position(|(s, _, inv)| *s == slot as u32 && *inv == cop.record.invocation)
                    .map(|idx| idx as u32)
            } else {
                b.inv_map
                    .get(&(slot as u32, cop.record.invocation.clone()))
                    .copied()
            };
            let inv = match found {
                Some(idx) => idx,
                None => {
                    let id = b.inv_table.len() as u32;
                    b.inv_table.push((
                        slot as u32,
                        cop.record.object,
                        cop.record.invocation.clone(),
                    ));
                    if b.inv_table.len() > LINEAR_INTERN_MAX {
                        if b.inv_map.is_empty() {
                            for (idx, (s, _, inv)) in b.inv_table.iter().enumerate() {
                                b.inv_map.insert((*s, inv.clone()), idx as u32);
                            }
                        } else {
                            b.inv_map
                                .insert((slot as u32, cop.record.invocation.clone()), id);
                        }
                    }
                    id
                }
            };
            b.op_inv.push(inv);
            b.op_required.push(cop.required);
            let fixed = match &cop.fixed_response {
                Some(v) => intern_value(&mut b, v),
                None => INVALID,
            };
            b.op_fixed.push(fixed);
        }

        // Required predecessors as a CSR (edges with optional sources impose
        // nothing, matching the reductions in this crate, which only create
        // edges with required sources).
        b.incident.resize(n, false);
        b.cursor.resize(n, 0);
        for &(i, j) in &problem.precedence {
            b.incident[i] = true;
            b.incident[j] = true;
            if problem.ops[i].required {
                b.cursor[j] += 1;
            }
        }
        b.pred_offsets.reserve(n + 1);
        let mut acc = 0u32;
        for j in 0..n {
            b.pred_offsets.push(acc);
            acc += b.cursor[j];
        }
        b.pred_offsets.push(acc);
        b.pred_data.resize(acc as usize, 0);
        b.cursor.copy_from_slice(&b.pred_offsets[..n]);
        for &(i, j) in &problem.precedence {
            if problem.ops[i].required {
                b.pred_data[b.cursor[j] as usize] = i as u32;
                b.cursor[j] += 1;
            }
        }

        // Interchangeability classes: operations with the same interned
        // invocation, the same constraints and no incident precedence edge
        // are indistinguishable, so the search only ever takes the first
        // untaken member of a class and the visited cache keys on per-class
        // counts instead of exact subsets.  Class lookup is a linear scan
        // over the representative table (no hash map on this setup path).
        let mut class_count = 0u32;
        for i in 0..n {
            let class = if b.incident[i] {
                let c = class_count;
                class_count += 1;
                c
            } else {
                let key = (b.op_inv[i], b.op_required[i], b.op_fixed[i]);
                let found = if b.class_map.is_empty() {
                    b.class_reps
                        .iter()
                        .find(|(inv, req, fixed, _)| (*inv, *req, *fixed) == key)
                        .map(|&(_, _, _, c)| c)
                } else {
                    b.class_map.get(&key).copied()
                };
                match found {
                    Some(c) => c,
                    None => {
                        let c = class_count;
                        class_count += 1;
                        b.class_reps.push((key.0, key.1, key.2, c));
                        if b.class_reps.len() > LINEAR_INTERN_MAX {
                            if b.class_map.is_empty() {
                                for &(inv, req, fixed, c) in b.class_reps.iter() {
                                    b.class_map.insert((inv, req, fixed), c);
                                }
                            } else {
                                b.class_map.insert(key, c);
                            }
                        }
                        c
                    }
                }
            };
            b.class_of.push(class);
        }
        // Class members (ascending operation order) as a CSR.
        let class_count = class_count as usize;
        b.cursor.clear();
        b.cursor.resize(class_count, 0);
        for i in 0..n {
            b.cursor[b.class_of[i] as usize] += 1;
        }
        b.class_offsets.reserve(class_count + 1);
        let mut acc = 0u32;
        for c in 0..class_count {
            b.class_offsets.push(acc);
            acc += b.cursor[c];
        }
        b.class_offsets.push(acc);
        b.class_data.resize(n, 0);
        b.cursor.copy_from_slice(&b.class_offsets[..class_count]);
        for i in 0..n {
            let c = b.class_of[i] as usize;
            b.class_data[b.cursor[c] as usize] = i as u32;
            b.cursor[c] += 1;
        }
        b.class_counts.resize(class_count, 0);

        // Initial object states and the initial visited key.
        for slot in 0..b.slots.len() {
            let object = b.slots[slot];
            let id = intern_value(&mut b, universe.initial_state(object));
            b.states.push(id);
        }
        let mut vkey = 0u64;
        for (slot, &state) in b.states.iter().enumerate() {
            vkey ^= util::zkey(TAG_STATE, slot as u64, state as u64);
        }

        let required_count = problem.ops.iter().filter(|o| o.required).count();
        Searcher {
            universe,
            limits,
            n,
            required_count,
            b,
            vkey,
            required_taken: 0,
            nodes: 0,
            memo_hits: 0,
            exhausted: false,
        }
    }

    /// Releases the pooled buffers back to the scratch.
    fn into_bufs(self) -> SearcherBufs {
        self.b
    }

    fn stats(&self, scratch: &KernelScratch) -> SearchStats {
        use std::mem::size_of;
        // The frontier-dedup keys of `solve_frontiers` are part of the
        // search's working set too — without them a frontier-dominated
        // monitor segment would under-report its peak.
        let frontier_bytes: usize = scratch
            .frontier_seen
            .iter()
            .map(|k| size_of::<Box<[u32]>>() + k.len() * size_of::<u32>())
            .sum();
        SearchStats {
            nodes: self.nodes,
            memo_hits: self.memo_hits,
            arena_bytes: self.b.live_bytes()
                + scratch.visited.len() * size_of::<u64>()
                + frontier_bytes,
        }
    }

    /// The transitions of invocation `inv` in state `state`, memoized as a
    /// span into the pooled transition arena.
    fn transitions(&mut self, inv: u32, state: u32) -> u32 {
        let key = ((inv as u64) << 32) | state as u64;
        if let Some(&idx) = self.b.trans_index.get(&key) {
            return idx;
        }
        let (_, object, invocation) = self.b.inv_table[inv as usize].clone();
        let raw = self
            .universe
            .object_type(object)
            .transitions(&self.b.values[state as usize], &invocation);
        let start = self.b.trans_data.len() as u32;
        for t in raw {
            let r = intern_value(&mut self.b, &t.response);
            let s = intern_value(&mut self.b, &t.next_state);
            self.b.trans_data.push((r, s));
        }
        let len = self.b.trans_data.len() as u32 - start;
        let idx = self.b.trans_spans.len() as u32;
        self.b.trans_spans.push((start, len));
        self.b.trans_index.insert(key, idx);
        idx
    }

    /// Whether `i` is the first untaken member of its class (the canonical
    /// representative tried by the search).
    fn canonical(&self, i: usize, taken: &BitSet) -> bool {
        let c = self.b.class_of[i] as usize;
        let members = &self.b.class_data
            [self.b.class_offsets[c] as usize..self.b.class_offsets[c + 1] as usize];
        members.iter().find(|&&m| !taken.contains(m as usize)) == Some(&(i as u32))
    }

    fn preds_taken(&self, i: usize, taken: &BitSet) -> bool {
        let preds =
            &self.b.pred_data[self.b.pred_offsets[i] as usize..self.b.pred_offsets[i + 1] as usize];
        preds.iter().all(|&p| taken.contains(p as usize))
    }

    /// Recomputes the visited key from scratch — the debug cross-check for
    /// the incrementally maintained [`Searcher::vkey`] (run on every
    /// apply/retract under `debug_assertions`, i.e. by the whole test suite
    /// including the nightly differential fuzz job; compiled out of release
    /// builds).
    fn recomputed_vkey(&self) -> u64 {
        let mut key = 0u64;
        for (c, &count) in self.b.class_counts.iter().enumerate() {
            if count > 0 {
                key ^= util::zkey(TAG_CLASS, c as u64, count as u64);
            }
        }
        for (slot, &state) in self.b.states.iter().enumerate() {
            key ^= util::zkey(TAG_STATE, slot as u64, state as u64);
        }
        key
    }

    fn progress(&self) -> SearchProgress {
        SearchProgress {
            required_taken: self.required_taken,
            required_total: self.required_count,
            taken_total: self.b.order.len(),
        }
    }

    fn apply(&mut self, i: usize, resp: u32, next_state: u32, taken: &mut BitSet) -> Undo {
        let slot = self.b.op_slot[i] as usize;
        let class = self.b.class_of[i] as usize;
        let undo = Undo {
            op: i,
            class,
            slot,
            prev_state: self.b.states[slot],
            required: self.b.op_required[i],
        };
        taken.set(i);
        let count = self.b.class_counts[class];
        if count > 0 {
            self.vkey ^= util::zkey(TAG_CLASS, class as u64, count as u64);
        }
        self.vkey ^= util::zkey(TAG_CLASS, class as u64, (count + 1) as u64);
        self.b.class_counts[class] = count + 1;
        self.vkey ^= util::zkey(TAG_STATE, slot as u64, undo.prev_state as u64)
            ^ util::zkey(TAG_STATE, slot as u64, next_state as u64);
        self.b.states[slot] = next_state;
        self.b.order.push(i as u32);
        self.b.responses.push(resp);
        if undo.required {
            self.required_taken += 1;
        }
        debug_assert_eq!(self.vkey, self.recomputed_vkey(), "visited key drifted");
        undo
    }

    fn retract(&mut self, undo: Undo, taken: &mut BitSet) {
        taken.clear(undo.op);
        let count = self.b.class_counts[undo.class];
        self.vkey ^= util::zkey(TAG_CLASS, undo.class as u64, count as u64);
        if count > 1 {
            self.vkey ^= util::zkey(TAG_CLASS, undo.class as u64, (count - 1) as u64);
        }
        self.b.class_counts[undo.class] = count - 1;
        self.vkey ^= util::zkey(TAG_STATE, undo.slot as u64, self.b.states[undo.slot] as u64)
            ^ util::zkey(TAG_STATE, undo.slot as u64, undo.prev_state as u64);
        self.b.states[undo.slot] = undo.prev_state;
        self.b.order.pop();
        self.b.responses.pop();
        if undo.required {
            self.required_taken -= 1;
        }
        debug_assert_eq!(self.vkey, self.recomputed_vkey(), "visited key drifted");
    }

    fn witness(&self) -> Witness {
        Witness {
            order: self.b.order.iter().map(|&i| i as usize).collect(),
            responses: self
                .b
                .responses
                .iter()
                .map(|&r| self.b.values[r as usize].clone())
                .collect(),
        }
    }

    /// The iterative Wing–Gong search.
    fn run(
        &mut self,
        scratch: &mut KernelScratch,
        accept: &dyn Fn(&SearchProgress) -> bool,
    ) -> SearchResult {
        scratch.prepare(self.n);
        if accept(&self.progress()) {
            return SearchResult::Yes(self.witness());
        }
        self.nodes += 1;
        if self.nodes > self.limits.max_nodes {
            return SearchResult::Unknown;
        }
        scratch.visited.insert(self.vkey);

        let mut frames = std::mem::take(&mut self.b.frames);
        frames.push(Frame {
            i: 0,
            k: 0,
            trans: INVALID,
            undo: None,
        });
        // Split `taken` out of the scratch so `self` methods can borrow
        // freely; it is put back (empty) before returning.
        let mut taken = std::mem::take(&mut scratch.taken);

        let result = 'outer: loop {
            let Some(mut f) = frames.pop() else {
                break if self.exhausted {
                    SearchResult::Unknown
                } else {
                    SearchResult::No
                };
            };
            loop {
                if f.i >= self.n {
                    // This level is exhausted: retract the step that
                    // produced it and resume the parent.
                    if let Some(undo) = f.undo.take() {
                        self.retract(undo, &mut taken);
                    }
                    continue 'outer;
                }
                let i = f.i;
                if taken.contains(i) || !self.canonical(i, &taken) || !self.preds_taken(i, &taken) {
                    f.i += 1;
                    f.k = 0;
                    f.trans = INVALID;
                    continue;
                }
                if f.trans == INVALID {
                    f.trans = self
                        .transitions(self.b.op_inv[i], self.b.states[self.b.op_slot[i] as usize]);
                    f.k = 0;
                }
                let (start, len) = self.b.trans_spans[f.trans as usize];
                while f.k < len {
                    let (resp, next_state) = self.b.trans_data[(start + f.k) as usize];
                    f.k += 1;
                    let fixed = self.b.op_fixed[i];
                    if fixed != INVALID && resp != fixed {
                        continue;
                    }
                    let undo = self.apply(i, resp, next_state, &mut taken);
                    if accept(&self.progress()) {
                        let witness = self.witness();
                        // Leave the taken-set empty for the next reuse of
                        // the scratch.
                        for &op in &self.b.order {
                            taken.clear(op as usize);
                        }
                        break 'outer SearchResult::Yes(witness);
                    }
                    self.nodes += 1;
                    if self.nodes > self.limits.max_nodes {
                        self.exhausted = true;
                        self.retract(undo, &mut taken);
                        continue;
                    }
                    if !scratch.visited.insert(self.vkey) {
                        self.memo_hits += 1;
                        self.retract(undo, &mut taken);
                        continue;
                    }
                    frames.push(f);
                    frames.push(Frame {
                        i: 0,
                        k: 0,
                        trans: INVALID,
                        undo: Some(undo),
                    });
                    continue 'outer;
                }
                f.i += 1;
                f.k = 0;
                f.trans = INVALID;
            }
        };
        // Either every step was retracted on the way out (No/Unknown) or the
        // witness path cleared its bits explicitly; put the empty taken-set
        // back for the next reuse of the scratch.
        debug_assert_eq!(taken.count(), 0, "taken-set must be released empty");
        scratch.taken = taken;
        frames.clear();
        self.b.frames = frames;
        result
    }

    /// Exhaustive variant of [`Searcher::run`]: instead of stopping at the
    /// first accepting node, explore the whole (memoized) space and collect
    /// every *distinct accepting frontier* — the interned object-state vector
    /// together with which of the `tracked` operations were linearized.
    ///
    /// Returns `(frontiers, complete)`; `complete` is `false` when the node
    /// budget was exhausted, in which case the collection may be missing
    /// entries (but every returned entry is genuinely reachable).
    fn run_frontiers(
        &mut self,
        scratch: &mut KernelScratch,
        accept: &dyn Fn(&SearchProgress) -> bool,
        tracked: &[usize],
    ) -> (Vec<RawFrontier>, bool) {
        scratch.prepare(self.n);
        scratch.frontier_seen.clear();
        let mut out: Vec<RawFrontier> = Vec::new();
        let mut frames = std::mem::take(&mut self.b.frames);
        frames.push(Frame {
            i: 0,
            k: 0,
            trans: INVALID,
            undo: None,
        });
        let mut taken = std::mem::take(&mut scratch.taken);
        // Records the current node's frontier if it is accepting and new.
        // (A node reached twice is pruned by the visited cache before this
        // runs again, so `seen` only guards against distinct accepting nodes
        // that share a frontier.)
        fn record(
            searcher: &Searcher<'_>,
            taken: &BitSet,
            tracked: &[usize],
            seen: &mut FxHashSet<Box<[u32]>>,
            out: &mut Vec<(Vec<u32>, Vec<bool>)>,
        ) {
            let placed: Vec<bool> = tracked.iter().map(|&op| taken.contains(op)).collect();
            let mut key = Vec::with_capacity(searcher.b.states.len() + placed.len());
            key.extend_from_slice(&searcher.b.states);
            key.extend(placed.iter().map(|&b| b as u32));
            if seen.insert(key.into_boxed_slice()) {
                out.push((searcher.b.states.clone(), placed));
            }
        }

        self.nodes += 1;
        scratch.visited.insert(self.vkey);
        if accept(&self.progress()) {
            record(self, &taken, tracked, &mut scratch.frontier_seen, &mut out);
        }
        'outer: while let Some(mut f) = frames.pop() {
            loop {
                if f.i >= self.n {
                    if let Some(undo) = f.undo.take() {
                        self.retract(undo, &mut taken);
                    }
                    continue 'outer;
                }
                let i = f.i;
                if taken.contains(i) || !self.canonical(i, &taken) || !self.preds_taken(i, &taken) {
                    f.i += 1;
                    f.k = 0;
                    f.trans = INVALID;
                    continue;
                }
                if f.trans == INVALID {
                    f.trans = self
                        .transitions(self.b.op_inv[i], self.b.states[self.b.op_slot[i] as usize]);
                    f.k = 0;
                }
                let (start, len) = self.b.trans_spans[f.trans as usize];
                while f.k < len {
                    let (resp, next_state) = self.b.trans_data[(start + f.k) as usize];
                    f.k += 1;
                    let fixed = self.b.op_fixed[i];
                    if fixed != INVALID && resp != fixed {
                        continue;
                    }
                    let undo = self.apply(i, resp, next_state, &mut taken);
                    self.nodes += 1;
                    if self.nodes > self.limits.max_nodes {
                        self.exhausted = true;
                        self.retract(undo, &mut taken);
                        continue;
                    }
                    if !scratch.visited.insert(self.vkey) {
                        self.memo_hits += 1;
                        self.retract(undo, &mut taken);
                        continue;
                    }
                    // A new node: record its frontier if accepting, then keep
                    // exploring below it — unlike `run`, acceptance is not a
                    // stopping condition, because deeper nodes (more optional
                    // operations linearized) reach *different* frontiers.
                    if accept(&self.progress()) {
                        record(self, &taken, tracked, &mut scratch.frontier_seen, &mut out);
                    }
                    frames.push(f);
                    frames.push(Frame {
                        i: 0,
                        k: 0,
                        trans: INVALID,
                        undo: Some(undo),
                    });
                    continue 'outer;
                }
                f.i += 1;
                f.k = 0;
                f.trans = INVALID;
            }
        }
        debug_assert_eq!(taken.count(), 0, "taken-set must be released empty");
        scratch.taken = taken;
        frames.clear();
        self.b.frames = frames;
        (out, !self.exhausted)
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Solves a prebuilt constrained-linearization problem with the default
/// acceptance predicate (all required operations linearized).
pub fn solve(
    problem: &SearchProblem,
    universe: &ObjectUniverse,
    limits: SearchLimits,
) -> (SearchResult, SearchStats) {
    with_thread_scratch(|scratch| solve_with_scratch(problem, universe, limits, scratch))
}

/// Like [`solve`], reusing a caller-provided [`KernelScratch`] so repeated
/// solves over same-sized problems share their allocations.
pub fn solve_with_scratch(
    problem: &SearchProblem,
    universe: &ObjectUniverse,
    limits: SearchLimits,
    scratch: &mut KernelScratch,
) -> (SearchResult, SearchStats) {
    let bufs = std::mem::take(&mut scratch.bufs);
    let mut searcher = Searcher::new(problem, universe, limits, bufs);
    let result = searcher.run(scratch, &|p| p.required_taken == p.required_total);
    let stats = searcher.stats(scratch);
    scratch.bufs = searcher.into_bufs();
    (result, stats)
}

/// One distinct *accepting frontier* of a search problem: the final state of
/// every active object under some accepting linearization, together with
/// which of the caller's tracked operations that linearization included.
///
/// The online monitor ([`crate::monitor`]) threads these through a stream of
/// quiescent-cut segments: the frontiers of segment `k` become the candidate
/// initial states of segment `k + 1`, and the tracked operations are the
/// "floaters" of `t`-linearizability — forgiven-prefix operations that may be
/// linearized in any later segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frontier {
    /// Final state of each object that appears in the problem.
    pub states: Vec<(ObjectId, Value)>,
    /// For each tracked operation (in the caller's order), whether it was
    /// linearized by the accepting linearization reaching this frontier.
    pub placed: Vec<bool>,
}

/// The collection of accepting frontiers of a problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierSet {
    /// The distinct frontiers, in discovery order.
    pub entries: Vec<Frontier>,
    /// `false` when the node budget was exhausted before the search space was
    /// covered: the entries are all reachable, but some may be missing.
    pub complete: bool,
}

impl FrontierSet {
    /// Whether at least one accepting linearization exists (and the
    /// collection can be trusted to witness it).
    pub fn is_satisfiable(&self) -> bool {
        !self.entries.is_empty()
    }
}

/// Exhaustively solves a constrained-linearization problem, returning every
/// distinct accepting frontier instead of the first witness.
///
/// `tracked` lists problem operation indices whose inclusion the caller wants
/// reported per frontier (see [`Frontier::placed`]); pass `&[]` when only the
/// final states matter.  Unlike [`solve`], acceptance does not stop the
/// search: nodes below an accepting node are still explored, because
/// linearizing further optional operations reaches different frontiers.
pub fn solve_frontiers(
    problem: &SearchProblem,
    universe: &ObjectUniverse,
    limits: SearchLimits,
    tracked: &[usize],
    scratch: &mut KernelScratch,
) -> (FrontierSet, SearchStats) {
    let bufs = std::mem::take(&mut scratch.bufs);
    let mut searcher = Searcher::new(problem, universe, limits, bufs);
    let (raw, complete) =
        searcher.run_frontiers(scratch, &|p| p.required_taken == p.required_total, tracked);
    let entries = raw
        .into_iter()
        .map(|(states, placed)| Frontier {
            states: states
                .iter()
                .enumerate()
                .map(|(slot, &id)| {
                    (
                        searcher.b.slots[slot],
                        searcher.b.values[id as usize].clone(),
                    )
                })
                .collect(),
            placed,
        })
        .collect();
    let stats = searcher.stats(scratch);
    scratch.bufs = searcher.into_bufs();
    (FrontierSet { entries, complete }, stats)
}

/// Checks `condition` on the whole history (no locality decomposition).
pub fn check(
    condition: &dyn ConsistencyCondition,
    history: &History,
    universe: &ObjectUniverse,
    limits: SearchLimits,
) -> SearchResult {
    check_with_stats(condition, history, universe, limits).0
}

/// Like [`check`], additionally returning the search counters.
pub fn check_with_stats(
    condition: &dyn ConsistencyCondition,
    history: &History,
    universe: &ObjectUniverse,
    limits: SearchLimits,
) -> (SearchResult, SearchStats) {
    with_thread_scratch(|scratch| check_with_scratch(condition, history, universe, limits, scratch))
}

/// Like [`check_with_stats`], reusing a caller-provided [`KernelScratch`]
/// (the per-operation loop of the weak-consistency checker runs one search
/// per completed operation over the same history and shares one scratch
/// across them).
pub fn check_with_scratch(
    condition: &dyn ConsistencyCondition,
    history: &History,
    universe: &ObjectUniverse,
    limits: SearchLimits,
    scratch: &mut KernelScratch,
) -> (SearchResult, SearchStats) {
    let problem = condition.problem(history);
    let bufs = std::mem::take(&mut scratch.bufs);
    let mut searcher = Searcher::new(&problem, universe, limits, bufs);
    let result = searcher.run(scratch, &|p| condition.accepted(p));
    let stats = searcher.stats(scratch);
    scratch.bufs = searcher.into_bufs();
    (result, stats)
}

/// Checks `condition` with the locality pre-pass: a multi-object history is
/// split into per-object projections, each checked independently (in
/// parallel across objects via [`crate::parallel`]), and — when every
/// subproblem has a witness — the per-object witnesses are composed into a
/// global one.
///
/// For conditions whose [`ConsistencyCondition::locality`] is
/// [`Locality::Global`], and for histories touching at most one object, this
/// is exactly [`check`].
pub fn check_local(
    condition: &dyn ConsistencyCondition,
    history: &History,
    universe: &ObjectUniverse,
    limits: SearchLimits,
) -> SearchResult {
    check_local_with_stats(condition, history, universe, limits).0
}

/// Like [`check_local`], additionally returning the search counters (summed
/// over the per-object subproblems when the history was decomposed).
pub fn check_local_with_stats(
    condition: &dyn ConsistencyCondition,
    history: &History,
    universe: &ObjectUniverse,
    limits: SearchLimits,
) -> (SearchResult, SearchStats) {
    let objects = history.objects();
    if condition.locality() != Locality::Exact || objects.len() <= 1 {
        return check_with_stats(condition, history, universe, limits);
    }
    // Greedy probe: most histories produced by generators and recorders are
    // satisfiable and the depth-first searcher resolves them in roughly one
    // descent, where projecting and recomposing would only add overhead.
    // Give the whole-history search a budget linear in the operation count;
    // any definitive answer within it is final, and only a blown budget —
    // the signature of a combinatorial (product-space) search — pays for the
    // per-object decomposition.
    let probe_budget = (4 * history.operations().len() + 16).min(limits.max_nodes);
    let probe_limits = SearchLimits {
        max_nodes: probe_budget,
    };
    let (probe_result, mut stats) = check_with_stats(condition, history, universe, probe_limits);
    if !matches!(probe_result, SearchResult::Unknown) {
        return (probe_result, stats);
    }
    // Per-object subproblems, checked independently across all cores.
    let sub: Vec<(ObjectId, SearchResult, SearchStats)> = parallel::map_par(&objects, |&object| {
        let projection = history.project_object(object);
        let (result, stats) = check_with_stats(condition, &projection, universe, limits);
        (object, result, stats)
    });
    let mut unknown = false;
    for (_, result, s) in &sub {
        stats.absorb(*s);
        match result {
            SearchResult::No => return (SearchResult::No, stats),
            SearchResult::Unknown => unknown = true,
            SearchResult::Yes(_) => {}
        }
    }
    if unknown {
        return (SearchResult::Unknown, stats);
    }
    match compose_witnesses(condition, history, &sub) {
        Some(witness) => (SearchResult::Yes(witness), stats),
        None => {
            // Composition found a cycle, which the locality theorem rules
            // out for Locality::Exact conditions; fall back to the global
            // search rather than give a wrong answer.
            let (result, global_stats) = check_with_stats(condition, history, universe, limits);
            stats.absorb(global_stats);
            (result, stats)
        }
    }
}

/// Composes per-object witnesses into a global witness: the union of the
/// per-object linearization orders and the real-time precedence between the
/// included operations is acyclic (Herlihy–Wing locality), so a topological
/// sort interleaves them.  Ties are broken by smallest operation index, which
/// makes the composed witness deterministic.
fn compose_witnesses(
    condition: &dyn ConsistencyCondition,
    history: &History,
    sub: &[(ObjectId, SearchResult, SearchStats)],
) -> Option<Witness> {
    let candidates = condition.candidates(history);
    // Global candidate indices of each object's operations, in order — the
    // j-th operation of the projection is the j-th candidate on that object
    // (Locality::Exact guarantees the 1:1, order-preserving alignment).
    let mut included: Vec<(usize, Value)> = Vec::new();
    let mut chains: Vec<Vec<usize>> = Vec::new();
    for (object, result, _) in sub {
        let SearchResult::Yes(w) = result else {
            return None;
        };
        let on_object: Vec<usize> = (0..candidates.len())
            .filter(|&i| candidates[i].record.object == *object)
            .collect();
        let mut chain = Vec::with_capacity(w.order.len());
        for (j, &local) in w.order.iter().enumerate() {
            let global = *on_object.get(local)?;
            chain.push(global);
            included.push((global, w.responses[j].clone()));
        }
        chains.push(chain);
    }
    // Edges: consecutive pairs of each per-object chain, plus real-time
    // precedence between included operations.
    let mut position: FxHashMap<usize, usize> = FxHashMap::default();
    for (pos, (global, _)) in included.iter().enumerate() {
        position.insert(*global, pos);
    }
    let m = included.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut indegree = vec![0usize; m];
    let add_edge = |a: usize, b: usize, succs: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>| {
        succs[a].push(b);
        indeg[b] += 1;
    };
    for chain in &chains {
        for w in chain.windows(2) {
            add_edge(position[&w[0]], position[&w[1]], &mut succs, &mut indegree);
        }
    }
    for (pa, (a, _)) in included.iter().enumerate() {
        for (pb, (b, _)) in included.iter().enumerate() {
            if a != b
                && candidates[*a].record.object != candidates[*b].record.object
                && candidates[*a].record.precedes(&candidates[*b].record)
            {
                add_edge(pa, pb, &mut succs, &mut indegree);
            }
        }
    }
    // Kahn's algorithm with smallest-global-index tie-break.
    let mut order = Vec::with_capacity(m);
    let mut responses = Vec::with_capacity(m);
    let mut done = vec![false; m];
    for _ in 0..m {
        let next = (0..m)
            .filter(|&p| !done[p] && indegree[p] == 0)
            .min_by_key(|&p| included[p].0)?;
        done[next] = true;
        order.push(included[next].0);
        responses.push(included[next].1.clone());
        for &s in &succs[next] {
            indegree[s] -= 1;
        }
    }
    Some(Witness { order, responses })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linearizability::Linearizability;
    use evlin_history::{HistoryBuilder, ProcessId};
    use evlin_spec::{FetchIncrement, Register, Value};

    fn two_object_history() -> (ObjectUniverse, History) {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let x = u.add_object(FetchIncrement::new());
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(ProcessId(0), r, Register::read(), Value::from(1i64))
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        (u, h)
    }

    #[test]
    fn local_and_global_checks_agree() {
        let (u, h) = two_object_history();
        let limits = SearchLimits::default();
        let global = check(&Linearizability, &h, &u, limits);
        let local = check_local(&Linearizability, &h, &u, limits);
        assert!(global.is_yes());
        assert!(local.is_yes());
    }

    #[test]
    fn composed_witness_respects_real_time_and_legality() {
        let (u, h) = two_object_history();
        let w = check_local(&Linearizability, &h, &u, SearchLimits::default())
            .witness()
            .expect("linearizable");
        assert_eq!(w.order.len(), 4);
        // Real-time precedence between the included operations must hold in
        // the composed order.
        let candidates = Linearizability.candidates(&h);
        let pos = |i: usize| w.order.iter().position(|&x| x == i).unwrap();
        for a in 0..candidates.len() {
            for b in 0..candidates.len() {
                if a != b && candidates[a].record.precedes(&candidates[b].record) {
                    assert!(pos(a) < pos(b), "edge ({a},{b}) violated in {:?}", w.order);
                }
            }
        }
        // And the rendered sequential history is legal.
        let s = crate::linearizability::witness_to_history(&h, &w);
        assert!(s.is_sequential());
        assert!(evlin_history::legal::is_legal_sequential(&s, &u));
    }

    #[test]
    fn locality_rejects_when_one_object_is_broken() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let x = u.add_object(FetchIncrement::new());
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            // Stale read strictly after the write: the register projection is
            // not linearizable.
            .complete(ProcessId(0), r, Register::read(), Value::from(0i64))
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .build();
        assert_eq!(
            check_local(&Linearizability, &h, &u, SearchLimits::default()),
            SearchResult::No
        );
    }

    #[test]
    fn scratch_reuse_is_sound_across_outcomes() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let good = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(1i64))
            .build();
        let bad = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(7i64))
            .build();
        let mut scratch = KernelScratch::new();
        let limits = SearchLimits::default();
        for _ in 0..3 {
            let p = Linearizability.problem(&good);
            assert!(solve_with_scratch(&p, &u, limits, &mut scratch).0.is_yes());
            let p = Linearizability.problem(&bad);
            assert_eq!(
                solve_with_scratch(&p, &u, limits, &mut scratch).0,
                SearchResult::No
            );
        }
    }

    #[test]
    fn interchangeable_operations_are_merged_not_permuted() {
        // n identical concurrent reads: the canonical-representative rule
        // explores each multiset once, so the node count stays linear in n
        // instead of exponential (and far below n!).
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let n = 7usize;
        // The impossible read overlaps all the others, so there are no
        // precedence edges and the identical reads share one class.
        let mut b = HistoryBuilder::new().invoke(ProcessId(n), r, Register::read());
        for p in 0..n {
            b = b.invoke(ProcessId(p), r, Register::read());
        }
        for p in 0..n {
            b = b.respond(ProcessId(p), r, Value::from(0i64));
        }
        let h = b.respond(ProcessId(n), r, Value::from(7i64)).build();
        let p = Linearizability.problem(&h);
        let (result, stats) = solve(&p, &u, SearchLimits::default());
        assert_eq!(result, SearchResult::No);
        assert!(
            stats.nodes <= 2 * (n + 1),
            "interchangeable reads must collapse into one chain: {stats:?}"
        );
    }
}
