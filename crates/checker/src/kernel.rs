//! The unified Wing–Gong check kernel.
//!
//! Every consistency condition of the paper reduces to the same question:
//! *is there a legal sequential arrangement of a set of operations that
//! (a) includes every required operation, (b) assigns each operation a legal
//! response, matching the fixed response where one is imposed, and
//! (c) respects a given precedence relation between operations?*
//!
//! This module is the single decision procedure behind all of them:
//!
//! * [`ConsistencyCondition`] — how a condition turns a history into that
//!   question: candidate-operation enumeration ([`candidates`]), per-operation
//!   constraints ([`ConstrainedOp`]), precedence edges ([`precedence`]) and an
//!   acceptance predicate ([`accepted`]).  `linearizability`,
//!   `t_linearizability`, `weak_consistency` and `eventual` are all thin
//!   implementations of this trait;
//! * [`solve`] — one iterative (non-recursive) Wing–Gong searcher over
//!   partial linearizations.  Object states and responses are interned to
//!   dense `u32` identifiers, transition lookups are memoized per
//!   `(invocation, state)` pair, interchangeable operations are merged into
//!   classes, and visited `(linearized-multiset, object-states)` keys are
//!   stored as compact boxed `u32` slices;
//! * [`check_local`] — the locality pre-pass: for conditions whose
//!   decomposition is [`Locality::Exact`] (the Herlihy–Wing locality theorem
//!   for linearizability, Lemma 8 for weak consistency), a multi-object
//!   history is split into independent per-object subproblems, checked in
//!   parallel via [`crate::parallel`], and the per-object witnesses are
//!   composed back into a global one;
//! * [`KernelScratch`] — reusable search state (visited cache, taken-set)
//!   so that e.g. the binary search of `min_stabilization` does not
//!   reallocate per probe.
//!
//! [`candidates`]: ConsistencyCondition::candidates
//! [`precedence`]: ConsistencyCondition::precedence
//! [`accepted`]: ConsistencyCondition::accepted

use crate::parallel;
use crate::util::{BitSet, FxHashMap, FxHashSet};
use evlin_history::{History, ObjectId, ObjectUniverse, OperationRecord};
use evlin_spec::{Invocation, Value};

// ---------------------------------------------------------------------------
// Problem statement types
// ---------------------------------------------------------------------------

/// One operation of a search problem, together with its constraints.
#[derive(Debug, Clone)]
pub struct ConstrainedOp {
    /// The underlying operation (object, invocation, original indices).
    pub record: OperationRecord,
    /// Whether the operation must appear in the sequential witness.
    /// Operations that completed in the history are required; pending
    /// operations are optional.
    pub required: bool,
    /// The response the witness must assign, or `None` if any legal response
    /// is acceptable (pending operations, and operations whose response fell
    /// in the unconstrained prefix for `t`-linearizability).
    pub fixed_response: Option<Value>,
}

/// A constrained-linearization problem.
#[derive(Debug, Clone)]
pub struct SearchProblem {
    /// The operations, with their constraints.
    pub ops: Vec<ConstrainedOp>,
    /// Precedence edges `(i, j)`: if both operations appear in the witness,
    /// operation `i` must be placed before operation `j`.
    ///
    /// All reductions in this crate only create edges whose source is a
    /// *required* operation, which lets the search treat an edge as "source
    /// must already be linearized before the target can be taken".
    pub precedence: Vec<(usize, usize)>,
}

/// A successful search outcome: a witness linearization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Indices (into [`SearchProblem::ops`]) of the operations included in
    /// the witness, in linearization order.
    pub order: Vec<usize>,
    /// The response assigned to each included operation, in the same order.
    pub responses: Vec<Value>,
}

/// Limits placed on the search to keep worst-case behaviour under control.
#[derive(Debug, Clone, Copy)]
pub struct SearchLimits {
    /// Maximum number of search nodes to expand before giving up.
    pub max_nodes: usize,
}

impl Default for SearchLimits {
    fn default() -> Self {
        SearchLimits {
            max_nodes: 2_000_000,
        }
    }
}

/// The verdict of a search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SearchResult {
    /// A witness linearization exists.
    Yes(Witness),
    /// No witness linearization exists.
    No,
    /// The search gave up after expanding [`SearchLimits::max_nodes`] nodes.
    Unknown,
}

impl SearchResult {
    /// `true` iff the result is [`SearchResult::Yes`].
    pub fn is_yes(&self) -> bool {
        matches!(self, SearchResult::Yes(_))
    }

    /// Extracts the witness, if any.
    pub fn witness(self) -> Option<Witness> {
        match self {
            SearchResult::Yes(w) => Some(w),
            _ => None,
        }
    }
}

/// Counters describing one search run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Search nodes expanded (summed over subproblems when the locality
    /// pre-pass decomposed the history).
    pub nodes: usize,
    /// Nodes cut off because their `(linearized-multiset, object-states)`
    /// key had already been visited — the Wing–Gong memoization at work.
    pub memo_hits: usize,
}

impl SearchStats {
    /// Accumulates another run's counters into this one (used when a check
    /// is split into subproblems — per object, per segment, per probe).
    pub fn absorb(&mut self, other: SearchStats) {
        self.nodes += other.nodes;
        self.memo_hits += other.memo_hits;
    }
}

/// Progress snapshot handed to [`ConsistencyCondition::accepted`].
#[derive(Debug, Clone, Copy)]
pub struct SearchProgress {
    /// Required operations linearized so far.
    pub required_taken: usize,
    /// Total number of required operations in the problem.
    pub required_total: usize,
    /// Operations (required or optional) linearized so far.
    pub taken_total: usize,
}

// ---------------------------------------------------------------------------
// The condition trait
// ---------------------------------------------------------------------------

/// How a condition decomposes across objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// The condition holds of a history iff it holds of every per-object
    /// projection, *and* the condition's [`ConsistencyCondition::candidates`]
    /// returns exactly one candidate per operation of the history, in
    /// [`History::operations`] order (needed to map per-object witnesses back
    /// to global operation indices).  Linearizability is the canonical
    /// example (the Herlihy–Wing locality theorem).
    Exact,
    /// No sound per-object decomposition; the history must be checked whole.
    /// `t`-linearizability for a fixed `t > 0` is the canonical example:
    /// Lemma 7 only decomposes "`t`-linearizable for *some* `t`", and the
    /// composed index is not tight.
    Global,
}

/// A consistency condition, expressed as the ingredients of a
/// constrained-linearization search: which operations may appear in the
/// sequential witness and under which constraints, which precedence edges
/// the witness must respect, and when a partial linearization is accepted.
pub trait ConsistencyCondition: Sync {
    /// Human-readable name (used in diagnostics).
    fn name(&self) -> &'static str;

    /// Enumerates the candidate operations of the search, with their
    /// constraints.
    fn candidates(&self, history: &History) -> Vec<ConstrainedOp>;

    /// Precedence edges `(i, j)` over `candidates`: if both appear in the
    /// witness, `i` must precede `j`.  Sources must be required candidates.
    fn precedence(&self, history: &History, candidates: &[ConstrainedOp]) -> Vec<(usize, usize)>;

    /// Acceptance predicate: when is a partial linearization a witness?
    /// The default — every required candidate has been linearized — is what
    /// all the paper's conditions use.
    fn accepted(&self, progress: &SearchProgress) -> bool {
        progress.required_taken == progress.required_total
    }

    /// Whether the condition admits the exact per-object decomposition used
    /// by [`check_local`].
    fn locality(&self) -> Locality {
        Locality::Global
    }

    /// Builds the full search problem for a history.
    fn problem(&self, history: &History) -> SearchProblem {
        let ops = self.candidates(history);
        let precedence = self.precedence(history, &ops);
        SearchProblem { ops, precedence }
    }
}

// ---------------------------------------------------------------------------
// Reusable scratch state
// ---------------------------------------------------------------------------

/// Reusable search state: the visited cache and the taken-set.
///
/// Allocations (the hash table and the bit set) survive across searches, so
/// repeated probes over the same history — the binary search of
/// `min_stabilization`, the per-operation loop of the weak-consistency
/// checker — reuse them instead of reallocating.  `BitSet::clear` and
/// `BitSet::count` keep the taken-set sound across reuses: bits left set by
/// a successful search are cleared one by one, and the emptiness invariant is
/// asserted before the next run.
#[derive(Default)]
pub struct KernelScratch {
    visited: FxHashSet<Box<[u32]>>,
    taken: BitSet,
    capacity: usize,
}

impl KernelScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        KernelScratch::default()
    }

    /// Prepares the scratch for a problem with `n` operations: clears the
    /// visited cache (keeping its allocation) and ensures the taken-set has
    /// capacity for `n` bits and is empty.
    fn prepare(&mut self, n: usize) {
        self.visited.clear();
        if self.capacity < n || self.capacity == 0 {
            self.taken = BitSet::with_capacity(n.max(1));
            self.capacity = n.max(1);
        }
        debug_assert_eq!(
            self.taken.count(),
            0,
            "taken-set must be empty between searches"
        );
    }
}

// ---------------------------------------------------------------------------
// The iterative searcher
// ---------------------------------------------------------------------------

const INVALID: u32 = u32::MAX;

/// Raw frontier as collected by the searcher: interned per-slot final states
/// plus the taken-flags of the tracked operations.
type RawFrontier = (Vec<u32>, Vec<bool>);

/// One level of the explicit DFS stack: which candidate operation is being
/// explored and which of its transitions comes next, plus the undo record of
/// the step that produced this level.
struct Frame {
    /// Candidate operation currently being enumerated at this level.
    i: usize,
    /// Next transition index for operation `i`.
    k: usize,
    /// Index into `Searcher::trans_lists` of operation `i`'s transitions at
    /// this level's entry state, or `INVALID` before it is computed.
    trans: u32,
    /// How this level's node was produced (`None` only for the root).
    undo: Option<Undo>,
}

/// Everything needed to retract one linearization step.
struct Undo {
    op: usize,
    class: usize,
    slot: usize,
    prev_state: u32,
    required: bool,
}

struct Searcher<'a> {
    universe: &'a ObjectUniverse,
    limits: SearchLimits,
    // --- interned problem ---
    n: usize,
    /// The object of each slot (active objects, in first-appearance order).
    slots: Vec<ObjectId>,
    /// Interned `Value` table (object states and responses).
    values: Vec<Value>,
    value_ids: FxHashMap<Value, u32>,
    /// Interned `(object, invocation)` table.
    inv_table: Vec<(usize, ObjectId, Invocation)>,
    /// Per-operation interned data.
    op_inv: Vec<u32>,
    op_slot: Vec<usize>,
    op_required: Vec<bool>,
    op_fixed: Vec<Option<u32>>,
    /// Required predecessors of each operation.
    preds: Vec<Vec<usize>>,
    /// Interchangeability classes: `class_of[i]` and the members of each
    /// class in ascending operation order.
    class_of: Vec<usize>,
    class_members: Vec<Vec<usize>>,
    required_count: usize,
    // --- memoized transitions ---
    /// `trans_cache[invocation id][state id]` -> `trans_lists` index, or
    /// `INVALID` when not yet computed (dense: both id spaces are small).
    trans_cache: Vec<Vec<u32>>,
    trans_lists: Vec<Vec<(u32, u32)>>,
    // --- mutable search state ---
    class_counts: Vec<u16>,
    states: Vec<u32>,
    order: Vec<usize>,
    responses: Vec<u32>,
    required_taken: usize,
    nodes: usize,
    memo_hits: usize,
    exhausted: bool,
}

impl<'a> Searcher<'a> {
    fn new(problem: &SearchProblem, universe: &'a ObjectUniverse, limits: SearchLimits) -> Self {
        let n = problem.ops.len();

        // Active objects -> slots.
        let mut slot_of: FxHashMap<usize, usize> = FxHashMap::default();
        let mut slots: Vec<ObjectId> = Vec::new();
        for cop in &problem.ops {
            slot_of.entry(cop.record.object.index()).or_insert_with(|| {
                slots.push(cop.record.object);
                slots.len() - 1
            });
        }

        // Interners.
        let mut values: Vec<Value> = Vec::new();
        let mut value_ids: FxHashMap<Value, u32> = FxHashMap::default();
        let mut intern_value = |v: &Value, values: &mut Vec<Value>| -> u32 {
            if let Some(&id) = value_ids.get(v) {
                return id;
            }
            let id = values.len() as u32;
            values.push(v.clone());
            value_ids.insert(v.clone(), id);
            id
        };
        let mut inv_table: Vec<(usize, ObjectId, Invocation)> = Vec::new();
        let mut inv_ids: FxHashMap<(usize, Invocation), u32> = FxHashMap::default();

        let mut op_inv = Vec::with_capacity(n);
        let mut op_slot = Vec::with_capacity(n);
        let mut op_required = Vec::with_capacity(n);
        let mut op_fixed = Vec::with_capacity(n);
        for cop in &problem.ops {
            let slot = slot_of[&cop.record.object.index()];
            let key = (slot, cop.record.invocation.clone());
            let inv = *inv_ids.entry(key).or_insert_with(|| {
                inv_table.push((slot, cop.record.object, cop.record.invocation.clone()));
                (inv_table.len() - 1) as u32
            });
            op_inv.push(inv);
            op_slot.push(slot);
            op_required.push(cop.required);
            op_fixed.push(
                cop.fixed_response
                    .as_ref()
                    .map(|v| intern_value(v, &mut values)),
            );
        }

        // Required predecessors (edges with optional sources impose nothing,
        // matching the reductions in this crate, which only create edges with
        // required sources).
        let mut preds = vec![Vec::new(); n];
        let mut incident = vec![false; n];
        for &(i, j) in &problem.precedence {
            incident[i] = true;
            incident[j] = true;
            if problem.ops[i].required {
                preds[j].push(i);
            }
        }

        // Interchangeability classes: operations with the same interned
        // invocation, the same constraints and no incident precedence edge
        // are indistinguishable, so the search only ever takes the first
        // untaken member of a class and the visited cache keys on per-class
        // counts instead of exact subsets.
        let mut class_of = vec![usize::MAX; n];
        let mut class_members: Vec<Vec<usize>> = Vec::new();
        let mut class_ids: FxHashMap<(u32, bool, Option<u32>), usize> = FxHashMap::default();
        for i in 0..n {
            let class = if incident[i] {
                class_members.push(vec![i]);
                class_members.len() - 1
            } else {
                let key = (op_inv[i], op_required[i], op_fixed[i]);
                match class_ids.get(&key) {
                    Some(&c) => {
                        class_members[c].push(i);
                        c
                    }
                    None => {
                        class_members.push(vec![i]);
                        let c = class_members.len() - 1;
                        class_ids.insert(key, c);
                        c
                    }
                }
            };
            class_of[i] = class;
        }

        let states: Vec<u32> = slots
            .iter()
            .map(|id| intern_value(universe.initial_state(*id), &mut values))
            .collect();

        let required_count = problem.ops.iter().filter(|o| o.required).count();
        let class_count = class_members.len();
        let inv_count = inv_table.len();
        Searcher {
            universe,
            limits,
            n,
            slots,
            values,
            value_ids,
            inv_table,
            op_inv,
            op_slot,
            op_required,
            op_fixed,
            preds,
            class_of,
            class_members,
            required_count,
            trans_cache: vec![Vec::new(); inv_count],
            trans_lists: Vec::new(),
            class_counts: vec![0; class_count],
            states,
            order: Vec::new(),
            responses: Vec::new(),
            required_taken: 0,
            nodes: 0,
            memo_hits: 0,
            exhausted: false,
        }
    }

    fn intern_value(&mut self, v: Value) -> u32 {
        if let Some(&id) = self.value_ids.get(&v) {
            return id;
        }
        let id = self.values.len() as u32;
        self.values.push(v.clone());
        self.value_ids.insert(v, id);
        id
    }

    /// The transitions of invocation `inv` in state `state`, memoized.
    fn transitions(&mut self, inv: u32, state: u32) -> u32 {
        let row = &self.trans_cache[inv as usize];
        if let Some(&idx) = row.get(state as usize) {
            if idx != INVALID {
                return idx;
            }
        }
        let (_, object, invocation) = self.inv_table[inv as usize].clone();
        let raw = self
            .universe
            .object_type(object)
            .transitions(&self.values[state as usize], &invocation);
        let list: Vec<(u32, u32)> = raw
            .into_iter()
            .map(|t| {
                let r = self.intern_value(t.response);
                let s = self.intern_value(t.next_state);
                (r, s)
            })
            .collect();
        let idx = self.trans_lists.len() as u32;
        self.trans_lists.push(list);
        let row = &mut self.trans_cache[inv as usize];
        if row.len() <= state as usize {
            row.resize(state as usize + 1, INVALID);
        }
        row[state as usize] = idx;
        idx
    }

    /// Whether `i` is the first untaken member of its class (the canonical
    /// representative tried by the search).
    fn canonical(&self, i: usize, taken: &BitSet) -> bool {
        self.class_members[self.class_of[i]]
            .iter()
            .find(|&&m| !taken.contains(m))
            == Some(&i)
    }

    fn preds_taken(&self, i: usize, taken: &BitSet) -> bool {
        self.preds[i].iter().all(|&p| taken.contains(p))
    }

    /// The compact visited key: per-class taken counts, then object states.
    fn visit_key(&self) -> Box<[u32]> {
        let mut key = Vec::with_capacity(self.class_counts.len() + self.states.len());
        key.extend(self.class_counts.iter().map(|&c| c as u32));
        key.extend_from_slice(&self.states);
        key.into_boxed_slice()
    }

    fn progress(&self) -> SearchProgress {
        SearchProgress {
            required_taken: self.required_taken,
            required_total: self.required_count,
            taken_total: self.order.len(),
        }
    }

    fn apply(&mut self, i: usize, resp: u32, next_state: u32, taken: &mut BitSet) -> Undo {
        let slot = self.op_slot[i];
        let undo = Undo {
            op: i,
            class: self.class_of[i],
            slot,
            prev_state: self.states[slot],
            required: self.op_required[i],
        };
        taken.set(i);
        self.class_counts[undo.class] += 1;
        self.states[slot] = next_state;
        self.order.push(i);
        self.responses.push(resp);
        if undo.required {
            self.required_taken += 1;
        }
        undo
    }

    fn retract(&mut self, undo: Undo, taken: &mut BitSet) {
        taken.clear(undo.op);
        self.class_counts[undo.class] -= 1;
        self.states[undo.slot] = undo.prev_state;
        self.order.pop();
        self.responses.pop();
        if undo.required {
            self.required_taken -= 1;
        }
    }

    fn witness(&self) -> Witness {
        Witness {
            order: self.order.clone(),
            responses: self
                .responses
                .iter()
                .map(|&r| self.values[r as usize].clone())
                .collect(),
        }
    }

    /// The iterative Wing–Gong search.
    fn run(
        &mut self,
        scratch: &mut KernelScratch,
        accept: &dyn Fn(&SearchProgress) -> bool,
    ) -> SearchResult {
        scratch.prepare(self.n);
        if accept(&self.progress()) {
            return SearchResult::Yes(self.witness());
        }
        self.nodes += 1;
        if self.nodes > self.limits.max_nodes {
            return SearchResult::Unknown;
        }
        scratch.visited.insert(self.visit_key());

        let mut frames: Vec<Frame> = vec![Frame {
            i: 0,
            k: 0,
            trans: INVALID,
            undo: None,
        }];
        // Split `taken` out of the scratch so `self` methods can borrow
        // freely; it is put back (empty) before returning.
        let mut taken = std::mem::take(&mut scratch.taken);

        let result = 'outer: loop {
            let Some(mut f) = frames.pop() else {
                break if self.exhausted {
                    SearchResult::Unknown
                } else {
                    SearchResult::No
                };
            };
            loop {
                if f.i >= self.n {
                    // This level is exhausted: retract the step that
                    // produced it and resume the parent.
                    if let Some(undo) = f.undo.take() {
                        self.retract(undo, &mut taken);
                    }
                    continue 'outer;
                }
                let i = f.i;
                if taken.contains(i) || !self.canonical(i, &taken) || !self.preds_taken(i, &taken) {
                    f.i += 1;
                    f.k = 0;
                    f.trans = INVALID;
                    continue;
                }
                if f.trans == INVALID {
                    f.trans = self.transitions(self.op_inv[i], self.states[self.op_slot[i]]);
                    f.k = 0;
                }
                while f.k < self.trans_lists[f.trans as usize].len() {
                    let (resp, next_state) = self.trans_lists[f.trans as usize][f.k];
                    f.k += 1;
                    if let Some(fixed) = self.op_fixed[i] {
                        if resp != fixed {
                            continue;
                        }
                    }
                    let undo = self.apply(i, resp, next_state, &mut taken);
                    if accept(&self.progress()) {
                        let witness = self.witness();
                        // Leave the taken-set empty for the next reuse of
                        // the scratch.
                        for &op in &self.order {
                            taken.clear(op);
                        }
                        break 'outer SearchResult::Yes(witness);
                    }
                    self.nodes += 1;
                    if self.nodes > self.limits.max_nodes {
                        self.exhausted = true;
                        self.retract(undo, &mut taken);
                        continue;
                    }
                    if !scratch.visited.insert(self.visit_key()) {
                        self.memo_hits += 1;
                        self.retract(undo, &mut taken);
                        continue;
                    }
                    frames.push(f);
                    frames.push(Frame {
                        i: 0,
                        k: 0,
                        trans: INVALID,
                        undo: Some(undo),
                    });
                    continue 'outer;
                }
                f.i += 1;
                f.k = 0;
                f.trans = INVALID;
            }
        };
        // Either every step was retracted on the way out (No/Unknown) or the
        // witness path cleared its bits explicitly; put the empty taken-set
        // back for the next reuse of the scratch.
        debug_assert_eq!(taken.count(), 0, "taken-set must be released empty");
        scratch.taken = taken;
        result
    }

    /// Exhaustive variant of [`Searcher::run`]: instead of stopping at the
    /// first accepting node, explore the whole (memoized) space and collect
    /// every *distinct accepting frontier* — the interned object-state vector
    /// together with which of the `tracked` operations were linearized.
    ///
    /// Returns `(frontiers, complete)`; `complete` is `false` when the node
    /// budget was exhausted, in which case the collection may be missing
    /// entries (but every returned entry is genuinely reachable).
    fn run_frontiers(
        &mut self,
        scratch: &mut KernelScratch,
        accept: &dyn Fn(&SearchProgress) -> bool,
        tracked: &[usize],
    ) -> (Vec<RawFrontier>, bool) {
        scratch.prepare(self.n);
        let mut seen: FxHashSet<Box<[u32]>> = FxHashSet::default();
        let mut out: Vec<RawFrontier> = Vec::new();
        let mut frames: Vec<Frame> = vec![Frame {
            i: 0,
            k: 0,
            trans: INVALID,
            undo: None,
        }];
        let mut taken = std::mem::take(&mut scratch.taken);
        // Records the current node's frontier if it is accepting and new.
        // (A node reached twice is pruned by the visited cache before this
        // runs again, so `seen` only guards against distinct accepting nodes
        // that share a frontier.)
        fn record(
            searcher: &Searcher<'_>,
            taken: &BitSet,
            tracked: &[usize],
            seen: &mut FxHashSet<Box<[u32]>>,
            out: &mut Vec<(Vec<u32>, Vec<bool>)>,
        ) {
            let placed: Vec<bool> = tracked.iter().map(|&op| taken.contains(op)).collect();
            let mut key = Vec::with_capacity(searcher.states.len() + placed.len());
            key.extend_from_slice(&searcher.states);
            key.extend(placed.iter().map(|&b| b as u32));
            if seen.insert(key.into_boxed_slice()) {
                out.push((searcher.states.clone(), placed));
            }
        }

        self.nodes += 1;
        scratch.visited.insert(self.visit_key());
        if accept(&self.progress()) {
            record(self, &taken, tracked, &mut seen, &mut out);
        }
        'outer: while let Some(mut f) = frames.pop() {
            loop {
                if f.i >= self.n {
                    if let Some(undo) = f.undo.take() {
                        self.retract(undo, &mut taken);
                    }
                    continue 'outer;
                }
                let i = f.i;
                if taken.contains(i) || !self.canonical(i, &taken) || !self.preds_taken(i, &taken) {
                    f.i += 1;
                    f.k = 0;
                    f.trans = INVALID;
                    continue;
                }
                if f.trans == INVALID {
                    f.trans = self.transitions(self.op_inv[i], self.states[self.op_slot[i]]);
                    f.k = 0;
                }
                while f.k < self.trans_lists[f.trans as usize].len() {
                    let (resp, next_state) = self.trans_lists[f.trans as usize][f.k];
                    f.k += 1;
                    if let Some(fixed) = self.op_fixed[i] {
                        if resp != fixed {
                            continue;
                        }
                    }
                    let undo = self.apply(i, resp, next_state, &mut taken);
                    self.nodes += 1;
                    if self.nodes > self.limits.max_nodes {
                        self.exhausted = true;
                        self.retract(undo, &mut taken);
                        continue;
                    }
                    if !scratch.visited.insert(self.visit_key()) {
                        self.memo_hits += 1;
                        self.retract(undo, &mut taken);
                        continue;
                    }
                    // A new node: record its frontier if accepting, then keep
                    // exploring below it — unlike `run`, acceptance is not a
                    // stopping condition, because deeper nodes (more optional
                    // operations linearized) reach *different* frontiers.
                    if accept(&self.progress()) {
                        record(self, &taken, tracked, &mut seen, &mut out);
                    }
                    frames.push(f);
                    frames.push(Frame {
                        i: 0,
                        k: 0,
                        trans: INVALID,
                        undo: Some(undo),
                    });
                    continue 'outer;
                }
                f.i += 1;
                f.k = 0;
                f.trans = INVALID;
            }
        }
        debug_assert_eq!(taken.count(), 0, "taken-set must be released empty");
        scratch.taken = taken;
        (out, !self.exhausted)
    }
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Solves a prebuilt constrained-linearization problem with the default
/// acceptance predicate (all required operations linearized).
pub fn solve(
    problem: &SearchProblem,
    universe: &ObjectUniverse,
    limits: SearchLimits,
) -> (SearchResult, SearchStats) {
    let mut scratch = KernelScratch::new();
    solve_with_scratch(problem, universe, limits, &mut scratch)
}

/// Like [`solve`], reusing a caller-provided [`KernelScratch`] so repeated
/// solves over same-sized problems share their allocations.
pub fn solve_with_scratch(
    problem: &SearchProblem,
    universe: &ObjectUniverse,
    limits: SearchLimits,
    scratch: &mut KernelScratch,
) -> (SearchResult, SearchStats) {
    let mut searcher = Searcher::new(problem, universe, limits);
    let result = searcher.run(scratch, &|p| p.required_taken == p.required_total);
    (
        result,
        SearchStats {
            nodes: searcher.nodes,
            memo_hits: searcher.memo_hits,
        },
    )
}

/// One distinct *accepting frontier* of a search problem: the final state of
/// every active object under some accepting linearization, together with
/// which of the caller's tracked operations that linearization included.
///
/// The online monitor ([`crate::monitor`]) threads these through a stream of
/// quiescent-cut segments: the frontiers of segment `k` become the candidate
/// initial states of segment `k + 1`, and the tracked operations are the
/// "floaters" of `t`-linearizability — forgiven-prefix operations that may be
/// linearized in any later segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frontier {
    /// Final state of each object that appears in the problem.
    pub states: Vec<(ObjectId, Value)>,
    /// For each tracked operation (in the caller's order), whether it was
    /// linearized by the accepting linearization reaching this frontier.
    pub placed: Vec<bool>,
}

/// The collection of accepting frontiers of a problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontierSet {
    /// The distinct frontiers, in discovery order.
    pub entries: Vec<Frontier>,
    /// `false` when the node budget was exhausted before the search space was
    /// covered: the entries are all reachable, but some may be missing.
    pub complete: bool,
}

impl FrontierSet {
    /// Whether at least one accepting linearization exists (and the
    /// collection can be trusted to witness it).
    pub fn is_satisfiable(&self) -> bool {
        !self.entries.is_empty()
    }
}

/// Exhaustively solves a constrained-linearization problem, returning every
/// distinct accepting frontier instead of the first witness.
///
/// `tracked` lists problem operation indices whose inclusion the caller wants
/// reported per frontier (see [`Frontier::placed`]); pass `&[]` when only the
/// final states matter.  Unlike [`solve`], acceptance does not stop the
/// search: nodes below an accepting node are still explored, because
/// linearizing further optional operations reaches different frontiers.
pub fn solve_frontiers(
    problem: &SearchProblem,
    universe: &ObjectUniverse,
    limits: SearchLimits,
    tracked: &[usize],
    scratch: &mut KernelScratch,
) -> (FrontierSet, SearchStats) {
    let mut searcher = Searcher::new(problem, universe, limits);
    let (raw, complete) =
        searcher.run_frontiers(scratch, &|p| p.required_taken == p.required_total, tracked);
    let entries = raw
        .into_iter()
        .map(|(states, placed)| Frontier {
            states: states
                .iter()
                .enumerate()
                .map(|(slot, &id)| (searcher.slots[slot], searcher.values[id as usize].clone()))
                .collect(),
            placed,
        })
        .collect();
    (
        FrontierSet { entries, complete },
        SearchStats {
            nodes: searcher.nodes,
            memo_hits: searcher.memo_hits,
        },
    )
}

/// Checks `condition` on the whole history (no locality decomposition).
pub fn check(
    condition: &dyn ConsistencyCondition,
    history: &History,
    universe: &ObjectUniverse,
    limits: SearchLimits,
) -> SearchResult {
    check_with_stats(condition, history, universe, limits).0
}

/// Like [`check`], additionally returning the search counters.
pub fn check_with_stats(
    condition: &dyn ConsistencyCondition,
    history: &History,
    universe: &ObjectUniverse,
    limits: SearchLimits,
) -> (SearchResult, SearchStats) {
    let mut scratch = KernelScratch::new();
    check_with_scratch(condition, history, universe, limits, &mut scratch)
}

/// Like [`check_with_stats`], reusing a caller-provided [`KernelScratch`]
/// (the per-operation loop of the weak-consistency checker runs one search
/// per completed operation over the same history and shares one scratch
/// across them).
pub fn check_with_scratch(
    condition: &dyn ConsistencyCondition,
    history: &History,
    universe: &ObjectUniverse,
    limits: SearchLimits,
    scratch: &mut KernelScratch,
) -> (SearchResult, SearchStats) {
    let problem = condition.problem(history);
    let mut searcher = Searcher::new(&problem, universe, limits);
    let result = searcher.run(scratch, &|p| condition.accepted(p));
    (
        result,
        SearchStats {
            nodes: searcher.nodes,
            memo_hits: searcher.memo_hits,
        },
    )
}

/// Checks `condition` with the locality pre-pass: a multi-object history is
/// split into per-object projections, each checked independently (in
/// parallel across objects via [`crate::parallel`]), and — when every
/// subproblem has a witness — the per-object witnesses are composed into a
/// global one.
///
/// For conditions whose [`ConsistencyCondition::locality`] is
/// [`Locality::Global`], and for histories touching at most one object, this
/// is exactly [`check`].
pub fn check_local(
    condition: &dyn ConsistencyCondition,
    history: &History,
    universe: &ObjectUniverse,
    limits: SearchLimits,
) -> SearchResult {
    check_local_with_stats(condition, history, universe, limits).0
}

/// Like [`check_local`], additionally returning the search counters (summed
/// over the per-object subproblems when the history was decomposed).
pub fn check_local_with_stats(
    condition: &dyn ConsistencyCondition,
    history: &History,
    universe: &ObjectUniverse,
    limits: SearchLimits,
) -> (SearchResult, SearchStats) {
    let objects = history.objects();
    if condition.locality() != Locality::Exact || objects.len() <= 1 {
        return check_with_stats(condition, history, universe, limits);
    }
    // Greedy probe: most histories produced by generators and recorders are
    // satisfiable and the depth-first searcher resolves them in roughly one
    // descent, where projecting and recomposing would only add overhead.
    // Give the whole-history search a budget linear in the operation count;
    // any definitive answer within it is final, and only a blown budget —
    // the signature of a combinatorial (product-space) search — pays for the
    // per-object decomposition.
    let probe_budget = (4 * history.operations().len() + 16).min(limits.max_nodes);
    let probe_limits = SearchLimits {
        max_nodes: probe_budget,
    };
    let (probe_result, mut stats) = check_with_stats(condition, history, universe, probe_limits);
    if !matches!(probe_result, SearchResult::Unknown) {
        return (probe_result, stats);
    }
    // Per-object subproblems, checked independently across all cores.
    let sub: Vec<(ObjectId, SearchResult, SearchStats)> = parallel::map_par(&objects, |&object| {
        let projection = history.project_object(object);
        let (result, stats) = check_with_stats(condition, &projection, universe, limits);
        (object, result, stats)
    });
    let mut unknown = false;
    for (_, result, s) in &sub {
        stats.absorb(*s);
        match result {
            SearchResult::No => return (SearchResult::No, stats),
            SearchResult::Unknown => unknown = true,
            SearchResult::Yes(_) => {}
        }
    }
    if unknown {
        return (SearchResult::Unknown, stats);
    }
    match compose_witnesses(condition, history, &sub) {
        Some(witness) => (SearchResult::Yes(witness), stats),
        None => {
            // Composition found a cycle, which the locality theorem rules
            // out for Locality::Exact conditions; fall back to the global
            // search rather than give a wrong answer.
            let (result, global_stats) = check_with_stats(condition, history, universe, limits);
            stats.absorb(global_stats);
            (result, stats)
        }
    }
}

/// Composes per-object witnesses into a global witness: the union of the
/// per-object linearization orders and the real-time precedence between the
/// included operations is acyclic (Herlihy–Wing locality), so a topological
/// sort interleaves them.  Ties are broken by smallest operation index, which
/// makes the composed witness deterministic.
fn compose_witnesses(
    condition: &dyn ConsistencyCondition,
    history: &History,
    sub: &[(ObjectId, SearchResult, SearchStats)],
) -> Option<Witness> {
    let candidates = condition.candidates(history);
    // Global candidate indices of each object's operations, in order — the
    // j-th operation of the projection is the j-th candidate on that object
    // (Locality::Exact guarantees the 1:1, order-preserving alignment).
    let mut included: Vec<(usize, Value)> = Vec::new();
    let mut chains: Vec<Vec<usize>> = Vec::new();
    for (object, result, _) in sub {
        let SearchResult::Yes(w) = result else {
            return None;
        };
        let on_object: Vec<usize> = (0..candidates.len())
            .filter(|&i| candidates[i].record.object == *object)
            .collect();
        let mut chain = Vec::with_capacity(w.order.len());
        for (j, &local) in w.order.iter().enumerate() {
            let global = *on_object.get(local)?;
            chain.push(global);
            included.push((global, w.responses[j].clone()));
        }
        chains.push(chain);
    }
    // Edges: consecutive pairs of each per-object chain, plus real-time
    // precedence between included operations.
    let mut position: FxHashMap<usize, usize> = FxHashMap::default();
    for (pos, (global, _)) in included.iter().enumerate() {
        position.insert(*global, pos);
    }
    let m = included.len();
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); m];
    let mut indegree = vec![0usize; m];
    let add_edge = |a: usize, b: usize, succs: &mut Vec<Vec<usize>>, indeg: &mut Vec<usize>| {
        succs[a].push(b);
        indeg[b] += 1;
    };
    for chain in &chains {
        for w in chain.windows(2) {
            add_edge(position[&w[0]], position[&w[1]], &mut succs, &mut indegree);
        }
    }
    for (pa, (a, _)) in included.iter().enumerate() {
        for (pb, (b, _)) in included.iter().enumerate() {
            if a != b
                && candidates[*a].record.object != candidates[*b].record.object
                && candidates[*a].record.precedes(&candidates[*b].record)
            {
                add_edge(pa, pb, &mut succs, &mut indegree);
            }
        }
    }
    // Kahn's algorithm with smallest-global-index tie-break.
    let mut order = Vec::with_capacity(m);
    let mut responses = Vec::with_capacity(m);
    let mut done = vec![false; m];
    for _ in 0..m {
        let next = (0..m)
            .filter(|&p| !done[p] && indegree[p] == 0)
            .min_by_key(|&p| included[p].0)?;
        done[next] = true;
        order.push(included[next].0);
        responses.push(included[next].1.clone());
        for &s in &succs[next] {
            indegree[s] -= 1;
        }
    }
    Some(Witness { order, responses })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linearizability::Linearizability;
    use evlin_history::{HistoryBuilder, ProcessId};
    use evlin_spec::{FetchIncrement, Register, Value};

    fn two_object_history() -> (ObjectUniverse, History) {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let x = u.add_object(FetchIncrement::new());
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(ProcessId(0), r, Register::read(), Value::from(1i64))
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        (u, h)
    }

    #[test]
    fn local_and_global_checks_agree() {
        let (u, h) = two_object_history();
        let limits = SearchLimits::default();
        let global = check(&Linearizability, &h, &u, limits);
        let local = check_local(&Linearizability, &h, &u, limits);
        assert!(global.is_yes());
        assert!(local.is_yes());
    }

    #[test]
    fn composed_witness_respects_real_time_and_legality() {
        let (u, h) = two_object_history();
        let w = check_local(&Linearizability, &h, &u, SearchLimits::default())
            .witness()
            .expect("linearizable");
        assert_eq!(w.order.len(), 4);
        // Real-time precedence between the included operations must hold in
        // the composed order.
        let candidates = Linearizability.candidates(&h);
        let pos = |i: usize| w.order.iter().position(|&x| x == i).unwrap();
        for a in 0..candidates.len() {
            for b in 0..candidates.len() {
                if a != b && candidates[a].record.precedes(&candidates[b].record) {
                    assert!(pos(a) < pos(b), "edge ({a},{b}) violated in {:?}", w.order);
                }
            }
        }
        // And the rendered sequential history is legal.
        let s = crate::linearizability::witness_to_history(&h, &w);
        assert!(s.is_sequential());
        assert!(evlin_history::legal::is_legal_sequential(&s, &u));
    }

    #[test]
    fn locality_rejects_when_one_object_is_broken() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let x = u.add_object(FetchIncrement::new());
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            // Stale read strictly after the write: the register projection is
            // not linearizable.
            .complete(ProcessId(0), r, Register::read(), Value::from(0i64))
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .build();
        assert_eq!(
            check_local(&Linearizability, &h, &u, SearchLimits::default()),
            SearchResult::No
        );
    }

    #[test]
    fn scratch_reuse_is_sound_across_outcomes() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let good = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(1i64))
            .build();
        let bad = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(7i64))
            .build();
        let mut scratch = KernelScratch::new();
        let limits = SearchLimits::default();
        for _ in 0..3 {
            let p = Linearizability.problem(&good);
            assert!(solve_with_scratch(&p, &u, limits, &mut scratch).0.is_yes());
            let p = Linearizability.problem(&bad);
            assert_eq!(
                solve_with_scratch(&p, &u, limits, &mut scratch).0,
                SearchResult::No
            );
        }
    }

    #[test]
    fn interchangeable_operations_are_merged_not_permuted() {
        // n identical concurrent reads: the canonical-representative rule
        // explores each multiset once, so the node count stays linear in n
        // instead of exponential (and far below n!).
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let n = 7usize;
        // The impossible read overlaps all the others, so there are no
        // precedence edges and the identical reads share one class.
        let mut b = HistoryBuilder::new().invoke(ProcessId(n), r, Register::read());
        for p in 0..n {
            b = b.invoke(ProcessId(p), r, Register::read());
        }
        for p in 0..n {
            b = b.respond(ProcessId(p), r, Value::from(0i64));
        }
        let h = b.respond(ProcessId(n), r, Value::from(7i64)).build();
        let p = Linearizability.problem(&h);
        let (result, stats) = solve(&p, &u, SearchLimits::default());
        assert_eq!(result, SearchResult::No);
        assert!(
            stats.nodes <= 2 * (n + 1),
            "interchangeable reads must collapse into one chain: {stats:?}"
        );
    }
}
