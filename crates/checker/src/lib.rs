//! # evlin-checker
//!
//! Decision procedures for the consistency conditions of Guerraoui & Ruppert
//! (PODC 2014), Section 3:
//!
//! * [`linearizability`] — classical linearizability (= 0-linearizability),
//!   decided by a constrained-linearization search in the style of Wing &
//!   Gong with memoization;
//! * [`t_linearizability`] — Definition 2: linearizability "after the first
//!   `t` events", including [`t_linearizability::min_stabilization`] which
//!   finds the smallest such `t`;
//! * [`weak_consistency`] — Definition 1: responses are never "out of left
//!   field" even before stabilization;
//! * [`eventual`] — Definition 3/4: weak consistency plus `t`-linearizability
//!   for some `t`;
//! * [`safety`] — prefix- and limit-closure test harnesses used to reproduce
//!   the paper's observations about which conditions are safety properties;
//! * [`locality`] — the per-object decompositions of Lemmas 7–9 and
//!   Proposition 9;
//! * [`fi`] — specialized, near-linear-time checkers for fetch&increment
//!   histories, used by the large-scale experiments (the generic search is
//!   exponential in the worst case);
//! * [`parallel`] — batched checking of many independent histories across
//!   all cores ([`parallel::check_histories_par`] and friends), used by the
//!   exhaustive experiments and the `checker_scaling` bench.
//!
//! ## Example
//!
//! ```
//! use evlin_checker::{linearizability, t_linearizability};
//! use evlin_history::{HistoryBuilder, ObjectUniverse, ProcessId};
//! use evlin_spec::{FetchIncrement, Value};
//!
//! let mut universe = ObjectUniverse::new();
//! let x = universe.add_object(FetchIncrement::new());
//!
//! // Two concurrent fetch&inc operations that both return 0: not
//! // linearizable, but 2-linearizable (drop the first two events).
//! let h = HistoryBuilder::new()
//!     .complete(ProcessId(0), x, FetchIncrement::fetch_inc(), Value::from(0i64))
//!     .complete(ProcessId(1), x, FetchIncrement::fetch_inc(), Value::from(0i64))
//!     .build();
//!
//! assert!(!linearizability::is_linearizable(&h, &universe));
//! assert_eq!(t_linearizability::min_stabilization(&h, &universe, None), Some(2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod eventual;
pub mod fi;
pub mod linearizability;
pub mod locality;
pub mod parallel;
pub mod safety;
pub mod search;
pub mod t_linearizability;
mod util;
pub mod weak_consistency;

pub use eventual::{is_eventually_linearizable, EventualReport};
pub use linearizability::{is_linearizable, linearization_witness};
pub use parallel::{check_histories_par, min_stabilizations_par};
pub use t_linearizability::{is_t_linearizable, min_stabilization};
pub use weak_consistency::is_weakly_consistent;
