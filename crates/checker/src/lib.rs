//! # evlin-checker
//!
//! Decision procedures for the consistency conditions of Guerraoui & Ruppert
//! (PODC 2014), Section 3 — all driven by **one** pluggable Wing–Gong search
//! kernel.
//!
//! ## Architecture: conditions over a shared kernel
//!
//! Every condition reduces to a *constrained-linearization* question: is
//! there a legal sequential arrangement of a set of candidate operations
//! that includes every required one, assigns legal (possibly fixed)
//! responses, and respects a precedence relation?  The [`kernel`] module
//! owns the one searcher that answers it; each condition is a thin
//! [`kernel::ConsistencyCondition`] implementation that only says *which*
//! question to ask:
//!
//! ```text
//!            ConsistencyCondition (candidates + precedence + acceptance)
//!    ┌───────────────┬────────────────────┬─────────────────────────┐
//!    │ Linearizability│ TLinearizability  │ WeakOperation           │
//!    │ (t = 0, local) │ (Definition 2)    │ (Definition 1, per op)  │
//!    └───────┬───────┴─────────┬──────────┴──────────┬──────────────┘
//!            │   StabilizesEventually (liveness half, Definition 3/4)
//!            ▼                 ▼                     ▼
//!    kernel::check_local ──► locality pre-pass ──► kernel::solve
//!    (per-object split,      (Herlihy–Wing /       (iterative Wing–Gong,
//!     parallel, witness       Lemma 8, exact        interned states,
//!     composition)            conditions only)      compact visited cache)
//! ```
//!
//! The kernel interns object states and responses to dense integers, merges
//! interchangeable operations into classes, memoizes transition lookups, and
//! keys its visited cache on compact `(linearized-multiset, object-states)`
//! slices; [`kernel::KernelScratch`] lets repeated probes (the binary search
//! for the minimal stabilization index, the per-operation weak-consistency
//! loop) reuse the cache and taken-set allocations.
//!
//! ## Modules
//!
//! * [`kernel`] — the condition trait, the iterative searcher, the locality
//!   pre-pass and witness composition;
//! * [`linearizability`] — classical linearizability (= 0-linearizability),
//!   decomposed per object by the locality theorem;
//! * [`t_linearizability`] — Definition 2: linearizability "after the first
//!   `t` events", including [`t_linearizability::min_stabilization`] which
//!   finds the smallest such `t`;
//! * [`weak_consistency`] — Definition 1: responses are never "out of left
//!   field" even before stabilization (split per object by Lemma 8);
//! * [`eventual`] — Definition 3/4: weak consistency plus `t`-linearizability
//!   for some `t`;
//! * [`safety`] — prefix- and limit-closure test harnesses used to reproduce
//!   the paper's observations about which conditions are safety properties;
//! * [`locality`] — the per-object diagnostic decompositions of Lemmas 7–9
//!   and Proposition 9;
//! * [`fi`] — specialized, near-linear-time checkers for fetch&increment
//!   histories, used by the large-scale experiments (the generic search is
//!   exponential in the worst case);
//! * [`search`] — the legacy facade over [`kernel::solve`] for callers
//!   holding a prebuilt [`search::SearchProblem`];
//! * [`parallel`] — batched checking of many independent histories across
//!   all cores ([`parallel::check_histories_par`] and friends); the same
//!   fan-out primitive powers the kernel's per-object pre-pass.
//!
//! ## Example
//!
//! ```
//! use evlin_checker::{linearizability, t_linearizability};
//! use evlin_history::{HistoryBuilder, ObjectUniverse, ProcessId};
//! use evlin_spec::{FetchIncrement, Value};
//!
//! let mut universe = ObjectUniverse::new();
//! let x = universe.add_object(FetchIncrement::new());
//!
//! // Two concurrent fetch&inc operations that both return 0: not
//! // linearizable, but 2-linearizable (drop the first two events).
//! let h = HistoryBuilder::new()
//!     .complete(ProcessId(0), x, FetchIncrement::fetch_inc(), Value::from(0i64))
//!     .complete(ProcessId(1), x, FetchIncrement::fetch_inc(), Value::from(0i64))
//!     .build();
//!
//! assert!(!linearizability::is_linearizable(&h, &universe));
//! assert_eq!(t_linearizability::min_stabilization(&h, &universe, None), Some(2));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod eventual;
pub mod fi;
pub mod kernel;
pub mod linearizability;
pub mod locality;
pub mod monitor;
pub mod parallel;
pub mod safety;
pub mod search;
pub mod t_linearizability;
mod util;
pub mod weak_consistency;

pub use eventual::{is_eventually_linearizable, EventualReport, StabilizesEventually};
pub use kernel::{
    ConsistencyCondition, KernelScratch, Locality, SearchLimits, SearchResult, SearchStats,
};
pub use linearizability::{is_linearizable, linearization_witness, Linearizability};
pub use monitor::{
    stages, Monitor, MonitorCondition, MonitorConfig, MonitorIngest, MonitorReport, MonitorVerdict,
};
pub use parallel::{check_histories_par, min_stabilizations_par};
pub use t_linearizability::{is_t_linearizable, min_stabilization, TLinearizability};
pub use weak_consistency::{is_weakly_consistent, WeakOperation};
