//! `t`-linearizability (Definition 2) and the minimal stabilization index.
//!
//! A legal sequential history `S` is a *t-linearization* of `H` when, with
//! `H'` the suffix of `H` after its first `t` events:
//!
//! 1. every operation invoked in `S` is invoked in `H`;
//! 2. every operation completed in `H` is completed in `S`;
//! 3. if `op1`'s response precedes `op2`'s invocation, both events lie in
//!    `H'`, and `op2` appears in `S`, then `op1` precedes `op2` in `S`;
//! 4. every operation whose response lies in `H'` has the same response in
//!    `S`.
//!
//! Operations whose response falls inside the first `t` events therefore must
//! still appear in `S`, but their responses and their ordering are
//! unconstrained — that is how the definition forgives an arbitrarily bad
//! finite prefix.
//!
//! The decision procedure is the shared Wing–Gong kernel:
//! [`TLinearizability`] is a [`ConsistencyCondition`] translating the four
//! clauses above into candidate-operation constraints and precedence edges.
//! For `t = 0` the condition is exactly linearizability and admits the
//! per-object locality decomposition; for `t > 0` it must be checked on the
//! whole history (Lemma 7 only decomposes "`t`-linearizable for *some* `t`").

use crate::kernel::{
    self, ConsistencyCondition, ConstrainedOp, KernelScratch, Locality, SearchLimits,
    SearchProblem, SearchResult, SearchStats, Witness,
};
use evlin_history::{History, ObjectUniverse};

/// The `t`-linearizability condition (Definition 2) as a kernel condition.
#[derive(Debug, Clone, Copy)]
pub struct TLinearizability {
    /// The number of initial events forgiven.
    pub t: usize,
}

impl TLinearizability {
    /// The condition for a given stabilization index.
    pub fn new(t: usize) -> Self {
        TLinearizability { t }
    }
}

impl ConsistencyCondition for TLinearizability {
    fn name(&self) -> &'static str {
        "t-linearizability"
    }

    fn candidates(&self, history: &History) -> Vec<ConstrainedOp> {
        let ops = history.operations();
        let mut cops = Vec::with_capacity(ops.len());
        for op in ops {
            let responds_in_suffix = op.respond_index.map(|r| r >= self.t).unwrap_or(false);
            cops.push(ConstrainedOp {
                required: op.is_complete(),
                fixed_response: if responds_in_suffix {
                    op.response.clone()
                } else {
                    None
                },
                record: op,
            });
        }
        cops
    }

    fn precedence(&self, _history: &History, candidates: &[ConstrainedOp]) -> Vec<(usize, usize)> {
        let t = self.t;
        let mut precedence = Vec::new();
        for (i, a) in candidates.iter().enumerate() {
            let Some(ra) = a.record.respond_index else {
                continue;
            };
            if ra < t {
                continue; // a's response is not in H'
            }
            for (j, b) in candidates.iter().enumerate() {
                if i == j {
                    continue;
                }
                if b.record.invoke_index >= t && ra < b.record.invoke_index {
                    precedence.push((i, j));
                }
            }
        }
        precedence
    }

    fn locality(&self) -> Locality {
        if self.t == 0 {
            // 0-linearizability is linearizability, which is local
            // (Herlihy & Wing's locality theorem).
            Locality::Exact
        } else {
            Locality::Global
        }
    }
}

/// Builds the constrained-linearization problem corresponding to
/// `t`-linearizability of `history`.
pub fn problem_for(history: &History, t: usize) -> SearchProblem {
    TLinearizability::new(t).problem(history)
}

/// Decides whether `history` is `t`-linearizable.
///
/// Uses the default [`SearchLimits`]; an exhausted node budget is reported as
/// *not* `t`-linearizable, which is the conservative answer for the
/// experiments (it can only under-report stabilization).
pub fn is_t_linearizable(history: &History, universe: &ObjectUniverse, t: usize) -> bool {
    t_linearization(history, universe, t).is_some()
}

/// Like [`is_t_linearizable`] but returns the witness `t`-linearization.
///
/// For `t = 0` the kernel's locality pre-pass decomposes multi-object
/// histories into per-object subproblems.
pub fn t_linearization(history: &History, universe: &ObjectUniverse, t: usize) -> Option<Witness> {
    kernel::check_local(
        &TLinearizability::new(t),
        history,
        universe,
        SearchLimits::default(),
    )
    .witness()
}

/// Like [`t_linearization`], additionally returning the kernel's search
/// counters (used by the experiments to report search effort).
pub fn t_linearization_with_stats(
    history: &History,
    universe: &ObjectUniverse,
    t: usize,
) -> (Option<Witness>, SearchStats) {
    let (result, stats) = kernel::check_local_with_stats(
        &TLinearizability::new(t),
        history,
        universe,
        SearchLimits::default(),
    );
    (result.witness(), stats)
}

/// Finds the smallest `t` such that `history` is `t`-linearizable, searching
/// `t ∈ [0, limit]` (where `limit` defaults to the history length).
///
/// By Lemma 5 of the paper, `t`-linearizability is monotone in `t`, so a
/// binary search is sound.  Every probe runs through the shared kernel with
/// a reused [`KernelScratch`], so the visited cache and taken-set are
/// allocated once per history, not once per probe.  Returns `None` if the
/// history is not even `limit`-linearizable (which cannot happen for total
/// types when `limit` is the history length).
pub fn min_stabilization(
    history: &History,
    universe: &ObjectUniverse,
    limit: Option<usize>,
) -> Option<usize> {
    let hi_bound = limit.unwrap_or(history.len());
    let mut scratch = KernelScratch::new();
    let limits = SearchLimits::default();
    let mut probe = |t: usize| -> bool {
        let problem = problem_for(history, t);
        matches!(
            kernel::solve_with_scratch(&problem, universe, limits, &mut scratch).0,
            SearchResult::Yes(_)
        )
    };
    if !probe(hi_bound) {
        return None;
    }
    let mut lo = 0usize; // candidate answer space: [lo, hi], hi known-good
    let mut hi = hi_bound;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if probe(mid) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_history::{HistoryBuilder, ProcessId};
    use evlin_spec::{FetchIncrement, Register, Value};

    fn fi_universe() -> (ObjectUniverse, evlin_history::ObjectId) {
        let mut u = ObjectUniverse::new();
        let x = u.add_object(FetchIncrement::new());
        (u, x)
    }

    #[test]
    fn duplicate_zero_returns_need_t_two() {
        let (u, x) = fi_universe();
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .build();
        assert!(!is_t_linearizable(&h, &u, 0));
        assert!(!is_t_linearizable(&h, &u, 1));
        assert!(is_t_linearizable(&h, &u, 2));
        assert_eq!(min_stabilization(&h, &u, None), Some(2));
    }

    #[test]
    fn linearizable_history_has_stabilization_zero() {
        let (u, x) = fi_universe();
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        assert_eq!(min_stabilization(&h, &u, None), Some(0));
    }

    #[test]
    fn paper_section_3_2_history_prefixes() {
        // The infinite history from Section 3.2:
        //   p: fetch_inc -> 0, then q: fetch_inc -> 0, 1, 2, ...
        // Every finite prefix is 2-linearizable (t = response of the first
        // operation): the t-linearization moves the first operation to the
        // end.  We verify a few prefixes.
        let (u, x) = fi_universe();
        let mut b = HistoryBuilder::new().complete(
            ProcessId(0),
            x,
            FetchIncrement::fetch_inc(),
            Value::from(0i64),
        );
        for k in 0..4i64 {
            b = b.complete(ProcessId(1), x, FetchIncrement::fetch_inc(), Value::from(k));
        }
        let h = b.build();
        for n in (2..=h.len()).step_by(2) {
            let prefix = h.prefix(n);
            assert!(
                is_t_linearizable(&prefix, &u, 2),
                "prefix of {n} events should be 2-linearizable"
            );
        }
        // But the full prefix (which stands in for the infinite history) is
        // not 0- or 1-linearizable.
        assert!(!is_t_linearizable(&h, &u, 0));
        assert_eq!(min_stabilization(&h, &u, None), Some(2));
    }

    #[test]
    fn witness_reassigns_early_responses() {
        let (u, x) = fi_universe();
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(7i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .build();
        // The nonsense response 7 lies in the first two events, so with t = 2
        // the witness may give that operation a different (legal) response.
        let w = t_linearization(&h, &u, 2).expect("2-linearizable");
        assert_eq!(w.order.len(), 2);
        let mut responses = w.responses.clone();
        responses.sort();
        assert_eq!(responses, vec![Value::from(0i64), Value::from(1i64)]);
        assert!(!is_t_linearizable(&h, &u, 0));
    }

    #[test]
    fn monotone_in_t_lemma_5() {
        let (u, x) = fi_universe();
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        let t0 = min_stabilization(&h, &u, None).unwrap();
        for t in t0..=h.len() {
            assert!(
                is_t_linearizable(&h, &u, t),
                "monotonicity violated at t={t}"
            );
        }
        for t in 0..t0 {
            assert!(!is_t_linearizable(&h, &u, t));
        }
    }

    #[test]
    fn register_history_with_early_garbage() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let h = HistoryBuilder::new()
            // Garbage read (99 was never written) in the prefix...
            .complete(ProcessId(0), r, Register::read(), Value::from(99i64))
            // ...then well-behaved operations.
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(1i64))
            .build();
        assert!(!is_t_linearizable(&h, &u, 0));
        assert_eq!(min_stabilization(&h, &u, None), Some(2));
    }

    #[test]
    fn empty_history_is_zero_linearizable() {
        let (u, _) = fi_universe();
        let h = History::new();
        assert!(is_t_linearizable(&h, &u, 0));
        assert_eq!(min_stabilization(&h, &u, None), Some(0));
    }

    #[test]
    fn stats_report_search_effort() {
        let (u, x) = fi_universe();
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        let (w, stats) = t_linearization_with_stats(&h, &u, 0);
        assert!(w.is_some());
        assert!(stats.nodes > 0);
    }
}
