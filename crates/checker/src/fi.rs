//! Specialized checkers for fetch&increment histories.
//!
//! The generic constrained-linearization search of [`crate::search`] is
//! exponential in the worst case, which is fine for the small histories used
//! in unit tests and bounded exploration but not for the hundreds of
//! thousands of operations produced by the runtime experiments (E7/E8).  For
//! a history consisting solely of `fetch_inc()` operations on a single object
//! there is a near-linear-time decision procedure, closely mirroring the
//! slot-assignment argument in the proof of Lemma 17:
//!
//! * each completed operation whose response lies after the first `t` events
//!   must occupy slot `response` of the linearization (the `k`-th linearized
//!   operation returns `initial + k`);
//! * the precedence constraints of Definition 2 translate into "an operation
//!   must return a value larger than every operation that completed (after
//!   event `t`) before it was invoked (after event `t`)";
//! * the remaining slots ("gaps") must be filled by operations that completed
//!   within the first `t` events or by pending operations, subject to the
//!   same precedence thresholds — a greedy matching decides feasibility.

use evlin_history::History;
use std::fmt;

/// Errors returned when a history is not a pure single-object
/// fetch&increment history.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FiError {
    /// The history mentions more than one object.
    MultipleObjects,
    /// An invocation other than `fetch_inc()` appears in the history.
    NotFetchInc {
        /// The offending method name.
        method: String,
    },
    /// A completed operation returned a non-integer response.
    NonIntegerResponse,
    /// The history is not well-formed.
    IllFormed,
}

impl fmt::Display for FiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FiError::MultipleObjects => write!(f, "history uses more than one object"),
            FiError::NotFetchInc { method } => {
                write!(f, "history contains a non-fetch_inc invocation: {method}")
            }
            FiError::NonIntegerResponse => write!(f, "fetch_inc returned a non-integer response"),
            FiError::IllFormed => write!(f, "history is not well-formed"),
        }
    }
}

impl std::error::Error for FiError {}

/// One fetch&increment operation extracted from a history.
#[derive(Debug, Clone, PartialEq, Eq)]
struct FiOp {
    invoke_index: usize,
    respond_index: Option<usize>,
    response: Option<i64>,
}

fn extract(history: &History) -> Result<Vec<FiOp>, FiError> {
    // One fused sweep over the events checks well-formedness, the
    // single-object and fetch_inc-only constraints, and collects the
    // operations — the histories this fast path exists for have hundreds of
    // thousands of events, so the separate `is_well_formed` / `objects()` /
    // `operations()` passes (and their per-operation record clones) matter.
    use evlin_history::EventKind;
    let mut ops: Vec<FiOp> = Vec::new();
    // Pending operation per process: `(process, index into ops)`.  A linear
    // scan is faster than a map for the handful of processes real histories
    // have.
    let mut pending: Vec<(evlin_history::ProcessId, usize)> = Vec::new();
    let mut object: Option<evlin_history::ObjectId> = None;
    for (i, e) in history.events().iter().enumerate() {
        match object {
            Some(o) if o != e.object => return Err(FiError::MultipleObjects),
            Some(_) => {}
            None => object = Some(e.object),
        }
        match &e.kind {
            EventKind::Invoke(invocation) => {
                if pending.iter().any(|&(p, _)| p == e.process) {
                    return Err(FiError::IllFormed);
                }
                if invocation.method() != "fetch_inc" {
                    return Err(FiError::NotFetchInc {
                        method: invocation.method().to_owned(),
                    });
                }
                pending.push((e.process, ops.len()));
                ops.push(FiOp {
                    invoke_index: i,
                    respond_index: None,
                    response: None,
                });
            }
            EventKind::Respond(value) => {
                let Some(at) = pending.iter().position(|&(p, _)| p == e.process) else {
                    return Err(FiError::IllFormed);
                };
                let (_, op) = pending.swap_remove(at);
                ops[op].respond_index = Some(i);
                ops[op].response = Some(value.as_int().ok_or(FiError::NonIntegerResponse)?);
            }
        }
    }
    Ok(ops)
}

/// Decides `t`-linearizability of a pure fetch&increment history in
/// `O(n log n)` time.
///
/// # Errors
///
/// Returns an [`FiError`] if the history is not a well-formed single-object
/// fetch&increment history.
pub fn is_t_linearizable(history: &History, initial: i64, t: usize) -> Result<bool, FiError> {
    let ops = extract(history)?;
    Ok(check(&ops, initial, t, history.len()))
}

/// Decides linearizability (`t = 0`) of a pure fetch&increment history.
///
/// # Errors
///
/// Returns an [`FiError`] if the history is not a well-formed single-object
/// fetch&increment history.
pub fn is_linearizable(history: &History, initial: i64) -> Result<bool, FiError> {
    is_t_linearizable(history, initial, 0)
}

/// Finds the minimal stabilization index of a pure fetch&increment history by
/// binary search (sound by Lemma 5).
///
/// # Errors
///
/// Returns an [`FiError`] if the history is not a well-formed single-object
/// fetch&increment history.
pub fn min_stabilization(history: &History, initial: i64) -> Result<usize, FiError> {
    let ops = extract(history)?;
    let len = history.len();
    let mut lo = 0usize;
    let mut hi = len;
    debug_assert!(check(&ops, initial, len, len), "t = |H| must always work");
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if check(&ops, initial, mid, len) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(lo)
}

/// Core feasibility check for a given `t`.
fn check(ops: &[FiOp], initial: i64, t: usize, _history_len: usize) -> bool {
    // Partition the operations (by index into `ops`).
    let mut late: Vec<usize> = Vec::new(); // completed, response at index >= t (fixed slot)
    let mut fillers: Vec<usize> = Vec::new(); // early-completed or pending (free slot)
    for (i, op) in ops.iter().enumerate() {
        match op.respond_index {
            Some(r) if r >= t => late.push(i),
            _ => fillers.push(i),
        }
    }

    // Condition 1: late responses are distinct and >= initial.
    let mut responses: Vec<i64> = late
        .iter()
        .map(|&i| ops[i].response.expect("late is completed"))
        .collect();
    responses.sort_unstable();
    if responses.iter().any(|&v| v < initial) {
        return false;
    }
    if responses.windows(2).any(|w| w[0] == w[1]) {
        return false;
    }

    // Precedence thresholds.  For an operation x invoked at index >= t, the
    // threshold is the largest response among late operations that responded
    // (at index >= t) before x was invoked; x must be assigned a slot greater
    // than its threshold.  Operations invoked before event t have no
    // precedence constraints.
    //
    // Sweep over "timestamps": process response events of late ops and
    // invocation events in global order.
    #[derive(Clone, Copy)]
    enum Ev {
        LateResponse(i64),
        Invoke(usize), // index into `ops`
    }
    let mut timeline: Vec<(usize, Ev)> = Vec::new();
    for &i in &late {
        let r = ops[i].respond_index.expect("late");
        timeline.push((r, Ev::LateResponse(ops[i].response.expect("late"))));
    }
    for (i, op) in ops.iter().enumerate() {
        if op.invoke_index >= t {
            timeline.push((op.invoke_index, Ev::Invoke(i)));
        }
    }
    timeline.sort_by_key(|(idx, _)| *idx);
    let mut thresholds: Vec<i64> = vec![i64::MIN; ops.len()];
    let mut max_late_resp_so_far = i64::MIN;
    for (_, ev) in timeline {
        match ev {
            Ev::LateResponse(v) => max_late_resp_so_far = max_late_resp_so_far.max(v),
            Ev::Invoke(i) => thresholds[i] = max_late_resp_so_far,
        }
    }

    // Condition 2: every late operation's response exceeds its threshold.
    for &i in &late {
        if ops[i].response.expect("late") <= thresholds[i] && thresholds[i] != i64::MIN {
            return false;
        }
    }

    // Condition 3: every gap slot below the maximum late response can be
    // filled by a distinct filler whose threshold is below the slot.
    let Some(&max_resp) = responses.last() else {
        return true; // no late operations: nothing is constrained
    };
    let mut gaps: Vec<i64> = Vec::new();
    {
        let mut next = initial;
        for &r in &responses {
            while next < r {
                gaps.push(next);
                next += 1;
            }
            next = r + 1;
        }
        let _ = max_resp;
    }
    if gaps.is_empty() {
        return true;
    }
    let mut filler_thresholds: Vec<i64> = fillers.iter().map(|&i| thresholds[i]).collect();
    filler_thresholds.sort_unstable();
    // Greedy: gaps ascending, fillers by threshold ascending; a filler with
    // threshold < slot is usable for that slot and for every later slot.
    let mut available = 0usize;
    let mut fi = 0usize;
    for &slot in &gaps {
        while fi < filler_thresholds.len() && filler_thresholds[fi] < slot {
            available += 1;
            fi += 1;
        }
        if available == 0 {
            return false;
        }
        available -= 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{linearizability, t_linearizability};
    use evlin_history::{HistoryBuilder, ObjectUniverse, ProcessId};
    use evlin_spec::{FetchIncrement, Register, Value};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn fi_universe() -> (ObjectUniverse, evlin_history::ObjectId) {
        let mut u = ObjectUniverse::new();
        let x = u.add_object(FetchIncrement::new());
        (u, x)
    }

    #[test]
    fn accepts_sequential_counting() {
        let (_, x) = fi_universe();
        let mut b = HistoryBuilder::new();
        for k in 0..20i64 {
            b = b.complete(
                ProcessId((k % 3) as usize),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(k),
            );
        }
        let h = b.build();
        assert_eq!(is_linearizable(&h, 0), Ok(true));
        assert_eq!(min_stabilization(&h, 0), Ok(0));
    }

    #[test]
    fn rejects_duplicates_and_finds_stabilization() {
        let (_, x) = fi_universe();
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        assert_eq!(is_linearizable(&h, 0), Ok(false));
        assert_eq!(min_stabilization(&h, 0), Ok(2));
    }

    #[test]
    fn pending_operations_fill_gaps() {
        let (_, x) = fi_universe();
        // A pending fetch_inc accounts for the missing value 0.
        let h = HistoryBuilder::new()
            .invoke(ProcessId(0), x, FetchIncrement::fetch_inc())
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        assert_eq!(is_linearizable(&h, 0), Ok(true));
        // Without any pending operation the gap cannot be filled.
        let h2 = HistoryBuilder::new()
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        assert_eq!(is_linearizable(&h2, 0), Ok(false));
    }

    #[test]
    fn gap_filler_must_start_before_needed() {
        let (_, x) = fi_universe();
        // op A returns 1 and completes; only afterwards does a pending
        // operation begin.  The pending operation cannot be linearized before
        // A (A precedes it), so the gap at 0 cannot be filled.
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .invoke(ProcessId(0), x, FetchIncrement::fetch_inc())
            .build();
        assert_eq!(is_linearizable(&h, 0), Ok(false));
    }

    #[test]
    fn respects_real_time_order() {
        let (_, x) = fi_universe();
        // First operation returns 1, the second (strictly later) returns 0.
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .invoke(ProcessId(2), x, FetchIncrement::fetch_inc())
            .build();
        assert_eq!(is_linearizable(&h, 0), Ok(false));
        // Dropping the first two events (t = 2) removes the constraint.
        assert_eq!(is_t_linearizable(&h, 0, 2), Ok(true));
        assert_eq!(min_stabilization(&h, 0), Ok(2));
    }

    #[test]
    fn nonzero_initial_value() {
        let (_, x) = fi_universe();
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(10i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(11i64),
            )
            .build();
        assert_eq!(is_linearizable(&h, 10), Ok(true));
        assert_eq!(is_linearizable(&h, 0), Ok(false)); // gaps 0..9 unfillable
    }

    #[test]
    fn error_cases() {
        let mut u = ObjectUniverse::new();
        let x = u.add_object(FetchIncrement::new());
        let r = u.add_object(Register::new(Value::from(0i64)));
        let multi = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(ProcessId(0), r, Register::read(), Value::from(0i64))
            .build();
        assert_eq!(is_linearizable(&multi, 0), Err(FiError::MultipleObjects));

        let wrong_method = HistoryBuilder::new()
            .complete(ProcessId(0), x, Register::read(), Value::from(0i64))
            .build();
        assert!(matches!(
            is_linearizable(&wrong_method, 0),
            Err(FiError::NotFetchInc { .. })
        ));

        let bad_resp = HistoryBuilder::new()
            .complete(ProcessId(0), x, FetchIncrement::fetch_inc(), Value::Unit)
            .build();
        assert_eq!(
            is_linearizable(&bad_resp, 0),
            Err(FiError::NonIntegerResponse)
        );

        let ill_formed = HistoryBuilder::new()
            .respond(ProcessId(0), x, Value::from(0i64))
            .build();
        assert_eq!(is_linearizable(&ill_formed, 0), Err(FiError::IllFormed));
    }

    /// Differential test against the generic checker on random small
    /// histories: the specialized checker must agree with the general search
    /// both for linearizability and for the minimal stabilization index.
    #[test]
    fn agrees_with_generic_checker_on_random_histories() {
        let (u, x) = fi_universe();
        for seed in 0..60u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let n_ops = rng.gen_range(2..7usize);
            let mut b = HistoryBuilder::new();
            // Random (possibly ill-behaved) responses and overlap pattern,
            // one op per process to allow arbitrary overlap.
            let mut pending: Vec<(usize, i64)> = Vec::new();
            let mut next_val = 0i64;
            for p in 0..n_ops {
                b = b.invoke(ProcessId(p), x, FetchIncrement::fetch_inc());
                pending.push((p, next_val));
                // Bias responses toward plausible values with occasional noise.
                if rng.gen_bool(0.8) {
                    next_val += 1;
                }
                // Randomly complete some pending operations.
                while !pending.is_empty() && rng.gen_bool(0.6) {
                    let k = rng.gen_range(0..pending.len());
                    let (proc, val) = pending.remove(k);
                    let noise = if rng.gen_bool(0.2) {
                        rng.gen_range(0..3)
                    } else {
                        0
                    };
                    b = b.respond(ProcessId(proc), x, Value::from(val + noise));
                }
            }
            for (proc, val) in pending {
                if rng.gen_bool(0.5) {
                    b = b.respond(ProcessId(proc), x, Value::from(val));
                }
            }
            let h = b.build();
            let fast = is_linearizable(&h, 0).unwrap();
            let slow = linearizability::is_linearizable(&h, &u);
            assert_eq!(fast, slow, "linearizability mismatch (seed {seed})\n{h}");
            let fast_t = min_stabilization(&h, 0).unwrap();
            let slow_t = t_linearizability::min_stabilization(&h, &u, None).unwrap();
            assert_eq!(fast_t, slow_t, "stabilization mismatch (seed {seed})\n{h}");
        }
    }
}
