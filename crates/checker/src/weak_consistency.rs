//! Weak consistency (Definition 1).
//!
//! A history `H` is *weakly consistent* if for each operation `op` that has a
//! response in `H` there is a legal sequential history `S` that
//!
//! * contains only operations invoked in `H` before `op` terminates,
//! * contains all operations performed by the same process that precede `op`
//!   in `H`, and
//! * ends with the same response to `op` as in `H`.
//!
//! Only the *response of `op` itself* is constrained — the other operations
//! of `S` merely have to be arrangeable legally.  The checker therefore
//! searches over sequences of **invocations** (grouping interchangeable
//! optional invocations into multisets) and asks whether some arrangement
//! makes the final application of `op`'s invocation return `op`'s response.

use evlin_history::{History, ObjectUniverse, OpId, OperationRecord};
use evlin_spec::{Invocation, Value};
use std::collections::{BTreeMap, HashSet};

/// Limits on the per-operation search.
#[derive(Debug, Clone, Copy)]
pub struct WeakLimits {
    /// Maximum number of search states explored per checked operation.
    pub max_nodes: usize,
}

impl Default for WeakLimits {
    fn default() -> Self {
        WeakLimits { max_nodes: 200_000 }
    }
}

/// Decides whether the whole history is weakly consistent.
pub fn is_weakly_consistent(history: &History, universe: &ObjectUniverse) -> bool {
    violations_with_limits(history, universe, WeakLimits::default()).is_empty()
}

/// Returns the identifiers of all completed operations that violate
/// Definition 1 (empty when the history is weakly consistent).
pub fn violations(history: &History, universe: &ObjectUniverse) -> Vec<OpId> {
    violations_with_limits(history, universe, WeakLimits::default())
}

/// [`violations`] with explicit search limits.  An operation whose search
/// exhausts the node budget is conservatively reported as a violation.
pub fn violations_with_limits(
    history: &History,
    universe: &ObjectUniverse,
    limits: WeakLimits,
) -> Vec<OpId> {
    let ops = history.operations();
    let mut bad = Vec::new();
    for op in ops.iter().filter(|op| op.is_complete()) {
        if !operation_satisfies_definition(op, &ops, universe, limits) {
            bad.push(op.id);
        }
    }
    bad
}

/// Checks Definition 1 for a single completed operation.
pub fn check_operation(
    history: &History,
    universe: &ObjectUniverse,
    op_id: OpId,
    limits: WeakLimits,
) -> bool {
    let ops = history.operations();
    let Some(op) = ops.iter().find(|o| o.id == op_id) else {
        return false;
    };
    if op.is_pending() {
        // Definition 1 only constrains operations that have a response.
        return true;
    }
    operation_satisfies_definition(op, &ops, universe, limits)
}

fn operation_satisfies_definition(
    op: &OperationRecord,
    all_ops: &[OperationRecord],
    universe: &ObjectUniverse,
    limits: WeakLimits,
) -> bool {
    let respond_index = op
        .respond_index
        .expect("only completed operations are checked");
    let target_response = op.response.clone().expect("completed");

    // Operations by the same process that precede `op` in H (program order).
    let must: Vec<&OperationRecord> = all_ops
        .iter()
        .filter(|o| o.process == op.process && o.invoke_index < op.invoke_index)
        .collect();

    // Optional operations: invoked before `op` terminates.  Only operations
    // on the same object can influence the legality of `op`'s response, so
    // restricting the optional pool to them is sound (cf. Lemma 8) and keeps
    // the search small.
    let mut optional_counts: BTreeMap<(usize, Invocation), usize> = BTreeMap::new();
    let must_ids: HashSet<OpId> = must.iter().map(|o| o.id).collect();
    for o in all_ops {
        if o.id == op.id || must_ids.contains(&o.id) {
            continue;
        }
        if o.object == op.object && o.invoke_index < respond_index {
            *optional_counts
                .entry((o.object.index(), o.invocation.clone()))
                .or_insert(0) += 1;
        }
    }
    let optional: Vec<((usize, Invocation), usize)> = optional_counts.into_iter().collect();

    // Search state: object states + which must-ops have been applied + how
    // many of each optional invocation group have been applied.
    let initial_states: Vec<Value> = universe
        .object_ids()
        .iter()
        .map(|id| universe.initial_state(*id).clone())
        .collect();

    let mut visited: HashSet<(Vec<Value>, u64, Vec<usize>)> = HashSet::new();
    let mut nodes = 0usize;
    let optional_used = vec![0usize; optional.len()];
    dfs(
        op,
        &target_response,
        &must,
        &optional,
        universe,
        initial_states,
        0,
        optional_used,
        &mut visited,
        &mut nodes,
        limits,
    )
}

#[allow(clippy::too_many_arguments)]
fn dfs(
    op: &OperationRecord,
    target_response: &Value,
    must: &[&OperationRecord],
    optional: &[((usize, Invocation), usize)],
    universe: &ObjectUniverse,
    states: Vec<Value>,
    must_mask: u64,
    optional_used: Vec<usize>,
    visited: &mut HashSet<(Vec<Value>, u64, Vec<usize>)>,
    nodes: &mut usize,
    limits: WeakLimits,
) -> bool {
    *nodes += 1;
    if *nodes > limits.max_nodes {
        return false;
    }
    if !visited.insert((states.clone(), must_mask, optional_used.clone())) {
        return false;
    }

    // Try to finish: all must-ops applied and applying `op` yields the target
    // response.
    let all_must_applied = must_mask.count_ones() as usize == must.len();
    if all_must_applied {
        let ty = universe.object_type(op.object);
        let state = &states[op.object.index()];
        if ty
            .transitions(state, &op.invocation)
            .iter()
            .any(|t| &t.response == target_response)
        {
            return true;
        }
    }

    // Apply an unused must-operation (its response is unconstrained).
    for (i, m) in must.iter().enumerate() {
        if must_mask & (1 << i) != 0 {
            continue;
        }
        let ty = universe.object_type(m.object);
        let state = &states[m.object.index()];
        for tr in ty.transitions(state, &m.invocation) {
            let mut next_states = states.clone();
            next_states[m.object.index()] = tr.next_state;
            if dfs(
                op,
                target_response,
                must,
                optional,
                universe,
                next_states,
                must_mask | (1 << i),
                optional_used.clone(),
                visited,
                nodes,
                limits,
            ) {
                return true;
            }
        }
    }

    // Apply one more instance of an optional invocation group.
    for (gi, ((obj_idx, inv), avail)) in optional.iter().enumerate() {
        if optional_used[gi] >= *avail {
            continue;
        }
        let object = evlin_history::ObjectId(*obj_idx);
        let ty = universe.object_type(object);
        let state = &states[*obj_idx];
        for tr in ty.transitions(state, inv) {
            let mut next_states = states.clone();
            next_states[*obj_idx] = tr.next_state;
            let mut next_used = optional_used.clone();
            next_used[gi] += 1;
            if dfs(
                op,
                target_response,
                must,
                optional,
                universe,
                next_states,
                must_mask,
                next_used,
                visited,
                nodes,
                limits,
            ) {
                return true;
            }
        }
    }

    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_history::{HistoryBuilder, ProcessId};
    use evlin_spec::{Consensus, FetchIncrement, Register, Value};

    #[test]
    fn reads_of_written_values_are_weakly_consistent() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        // The read of 1 overlaps the write of 1: allowed.
        let h = HistoryBuilder::new()
            .invoke(ProcessId(0), r, Register::write(Value::from(1i64)))
            .complete(ProcessId(1), r, Register::read(), Value::from(1i64))
            .respond(ProcessId(0), r, Value::Unit)
            .build();
        assert!(is_weakly_consistent(&h, &u));
    }

    #[test]
    fn out_of_left_field_read_is_a_violation() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        // 7 is never written by anyone, so no legal sequential history can
        // justify the read of 7.
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(7i64))
            .build();
        assert!(!is_weakly_consistent(&h, &u));
        let v = violations(&h, &u);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0], OpId(1));
    }

    #[test]
    fn value_from_a_later_write_is_a_violation() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        // The read returns 5, but write(5) is invoked only after the read
        // terminated — Definition 1 only allows operations invoked before the
        // read terminates.
        let h = HistoryBuilder::new()
            .complete(ProcessId(1), r, Register::read(), Value::from(5i64))
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(5i64)),
                Value::Unit,
            )
            .build();
        assert!(!is_weakly_consistent(&h, &u));
    }

    #[test]
    fn own_writes_must_be_respected() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        // p0 writes 3 and then reads 0: the read ignores p0's own earlier
        // write, violating the "contains all operations performed by the same
        // process" clause (no legal history containing write(3) ends with a
        // read of 0 unless someone else wrote 0 — nobody did... note the
        // initial value is 0, but the mandatory write(3) would have to be
        // ordered after the read, which Definition 1 forbids since S must end
        // with op).
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(3i64)),
                Value::Unit,
            )
            .complete(ProcessId(0), r, Register::read(), Value::from(0i64))
            .build();
        assert!(!is_weakly_consistent(&h, &u));

        // Whereas another process may still read 0 (it need not have seen the
        // write).
        let h2 = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(3i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(0i64))
            .build();
        assert!(is_weakly_consistent(&h2, &u));
    }

    #[test]
    fn duplicate_fetch_inc_zeroes_are_weakly_consistent_but_not_linearizable() {
        // This is the key distinction the paper draws: returning a stale
        // counter value is weakly consistent (each response is justified by
        // *some* subset of operations) even though it is not linearizable.
        let mut u = ObjectUniverse::new();
        let x = u.add_object(FetchIncrement::new());
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .build();
        assert!(is_weakly_consistent(&h, &u));
        assert!(!crate::linearizability::is_linearizable(&h, &u));
    }

    #[test]
    fn repeated_stale_zero_by_same_process_is_rejected() {
        // A process that performs two fetch&inc operations cannot get 0 both
        // times: its second operation must account for its own first one.
        let mut u = ObjectUniverse::new();
        let x = u.add_object(FetchIncrement::new());
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .build();
        assert!(!is_weakly_consistent(&h, &u));
    }

    #[test]
    fn consensus_must_return_some_invoked_proposal() {
        let mut u = ObjectUniverse::new();
        let c = u.add_object(Consensus::new());
        let ok = HistoryBuilder::new()
            .invoke(ProcessId(0), c, Consensus::propose(Value::from(4i64)))
            .complete(
                ProcessId(1),
                c,
                Consensus::propose(Value::from(9i64)),
                Value::from(4i64),
            )
            .respond(ProcessId(0), c, Value::from(4i64))
            .build();
        assert!(is_weakly_consistent(&ok, &u));

        let bad = HistoryBuilder::new()
            .complete(
                ProcessId(1),
                c,
                Consensus::propose(Value::from(9i64)),
                Value::from(4i64),
            )
            .build();
        // Nobody ever proposed 4 before this operation terminated.
        assert!(!is_weakly_consistent(&bad, &u));
    }

    #[test]
    fn pending_operations_are_not_checked() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let h = HistoryBuilder::new()
            .invoke(ProcessId(0), r, Register::write(Value::from(1i64)))
            .build();
        assert!(is_weakly_consistent(&h, &u));
        assert!(check_operation(&h, &u, OpId(0), WeakLimits::default()));
    }

    #[test]
    fn empty_history_is_weakly_consistent() {
        let u = ObjectUniverse::new();
        assert!(is_weakly_consistent(&History::new(), &u));
    }

    #[test]
    fn prefix_closure_smoke_check() {
        // Lemma 10: weak consistency is a safety property, so every prefix of
        // a weakly consistent history is weakly consistent.
        let mut u = ObjectUniverse::new();
        let x = u.add_object(FetchIncrement::new());
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        assert!(is_weakly_consistent(&h, &u));
        for n in 0..=h.len() {
            assert!(is_weakly_consistent(&h.prefix(n), &u));
        }
    }
}
