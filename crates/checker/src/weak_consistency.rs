//! Weak consistency (Definition 1).
//!
//! A history `H` is *weakly consistent* if for each operation `op` that has a
//! response in `H` there is a legal sequential history `S` that
//!
//! * contains only operations invoked in `H` before `op` terminates,
//! * contains all operations performed by the same process that precede `op`
//!   in `H`, and
//! * ends with the same response to `op` as in `H`.
//!
//! Only the *response of `op` itself* is constrained — the other operations
//! of `S` merely have to be arrangeable legally.  [`WeakOperation`] encodes
//! exactly that as a [`ConsistencyCondition`] for the shared Wing–Gong
//! kernel: the same-process predecessors are *required* candidates with free
//! responses, same-object operations invoked before `op` terminates are
//! *optional* candidates (restricting the optional pool to `op`'s object is
//! sound by Lemma 8 and keeps the search small), and `op` itself is required
//! with its response fixed and a precedence edge from every predecessor so
//! that the witness ends with it.  The kernel's interchangeability classes
//! subsume the old multiset grouping of identical optional invocations.
//!
//! Whole-history checks additionally exploit Lemma 8 (weak consistency is
//! local): [`is_weakly_consistent`] splits a multi-object history into
//! per-object projections and checks them independently, in parallel via
//! [`crate::parallel`].

use crate::kernel::{
    self, ConsistencyCondition, ConstrainedOp, KernelScratch, SearchLimits, SearchResult,
};
use crate::parallel;
use evlin_history::{History, ObjectUniverse, OpId};

/// The default node budget of one per-operation search: Definition 1
/// problems are much smaller than whole-history linearizations, so the
/// budget is a tenth of [`SearchLimits::default`].
pub fn default_limits() -> SearchLimits {
    SearchLimits { max_nodes: 200_000 }
}

/// Definition 1 for a single completed operation, as a kernel condition.
#[derive(Debug, Clone, Copy)]
pub struct WeakOperation {
    /// The completed operation whose response must be justified.
    pub op: OpId,
}

impl ConsistencyCondition for WeakOperation {
    fn name(&self) -> &'static str {
        "weak consistency (Definition 1, one operation)"
    }

    fn candidates(&self, history: &History) -> Vec<ConstrainedOp> {
        let ops = history.operations();
        let Some(op) = ops.iter().find(|o| o.id == self.op) else {
            return Vec::new();
        };
        let Some(respond_index) = op.respond_index else {
            // Definition 1 only constrains operations that have a response;
            // an empty problem is trivially satisfiable.
            return Vec::new();
        };
        let mut cops = Vec::new();
        // Operations by the same process that precede `op` in H (program
        // order): required, with unconstrained responses.
        for o in ops
            .iter()
            .filter(|o| o.process == op.process && o.invoke_index < op.invoke_index)
        {
            cops.push(ConstrainedOp {
                record: o.clone(),
                required: true,
                fixed_response: None,
            });
        }
        let must_len = cops.len();
        // Optional operations: invoked before `op` terminates.  Only
        // operations on the same object can influence the legality of `op`'s
        // response (Lemma 8), so restricting the optional pool to them is
        // sound and keeps the search small.
        for o in ops.iter().filter(|o| {
            o.id != op.id
                && !(o.process == op.process && o.invoke_index < op.invoke_index)
                && o.object == op.object
                && o.invoke_index < respond_index
        }) {
            cops.push(ConstrainedOp {
                record: o.clone(),
                required: false,
                fixed_response: None,
            });
        }
        debug_assert!(cops.len() >= must_len);
        // `op` itself, last: required, with its response fixed.
        cops.push(ConstrainedOp {
            record: op.clone(),
            required: true,
            fixed_response: op.response.clone(),
        });
        cops
    }

    fn precedence(&self, history: &History, candidates: &[ConstrainedOp]) -> Vec<(usize, usize)> {
        // S must *end* with `op`: every required predecessor is ordered
        // before it.  (Optional candidates need no edge — the search accepts
        // as soon as all required operations are linearized, so nothing is
        // ever placed after `op`.)
        let _ = history;
        let Some(last) = candidates.len().checked_sub(1) else {
            return Vec::new();
        };
        (0..last)
            .filter(|&i| candidates[i].required)
            .map(|i| (i, last))
            .collect()
    }
}

/// Decides whether the whole history is weakly consistent.
///
/// Multi-object histories are decomposed per object first (Lemma 8) and the
/// projections are checked in parallel.
pub fn is_weakly_consistent(history: &History, universe: &ObjectUniverse) -> bool {
    let objects = history.objects();
    if objects.len() > 1 {
        // Locality pre-pass: H is weakly consistent iff every H|o is.
        parallel::map_par(&objects, |&o| {
            let projection = history.project_object(o);
            violations_with_limits(&projection, universe, default_limits()).is_empty()
        })
        .into_iter()
        .all(|ok| ok)
    } else {
        violations_with_limits(history, universe, default_limits()).is_empty()
    }
}

/// Returns the identifiers of all completed operations that violate
/// Definition 1 (empty when the history is weakly consistent).
pub fn violations(history: &History, universe: &ObjectUniverse) -> Vec<OpId> {
    violations_with_limits(history, universe, default_limits())
}

/// [`violations`] with explicit search limits.  An operation whose search
/// exhausts the node budget is conservatively reported as a violation.
pub fn violations_with_limits(
    history: &History,
    universe: &ObjectUniverse,
    limits: SearchLimits,
) -> Vec<OpId> {
    // One search per completed operation, all sharing one scratch so the
    // visited cache and taken-set are allocated once per history.
    let mut scratch = KernelScratch::new();
    history
        .operations()
        .iter()
        .filter(|op| op.is_complete())
        .filter(|op| {
            !kernel::check_with_scratch(
                &WeakOperation { op: op.id },
                history,
                universe,
                limits,
                &mut scratch,
            )
            .0
            .is_yes()
        })
        .map(|op| op.id)
        .collect()
}

/// Checks Definition 1 for a single operation of the history.
///
/// Pending operations satisfy the definition vacuously; an unknown
/// identifier is reported as a violation.
pub fn check_operation(
    history: &History,
    universe: &ObjectUniverse,
    op_id: OpId,
    limits: SearchLimits,
) -> bool {
    let ops = history.operations();
    let Some(op) = ops.iter().find(|o| o.id == op_id) else {
        return false;
    };
    if op.is_pending() {
        // Definition 1 only constrains operations that have a response.
        return true;
    }
    matches!(
        kernel::check(&WeakOperation { op: op_id }, history, universe, limits),
        SearchResult::Yes(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_history::{HistoryBuilder, ProcessId};
    use evlin_spec::{Consensus, FetchIncrement, Register, Value};

    #[test]
    fn reads_of_written_values_are_weakly_consistent() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        // The read of 1 overlaps the write of 1: allowed.
        let h = HistoryBuilder::new()
            .invoke(ProcessId(0), r, Register::write(Value::from(1i64)))
            .complete(ProcessId(1), r, Register::read(), Value::from(1i64))
            .respond(ProcessId(0), r, Value::Unit)
            .build();
        assert!(is_weakly_consistent(&h, &u));
    }

    #[test]
    fn out_of_left_field_read_is_a_violation() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        // 7 is never written by anyone, so no legal sequential history can
        // justify the read of 7.
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(7i64))
            .build();
        assert!(!is_weakly_consistent(&h, &u));
        let v = violations(&h, &u);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0], OpId(1));
    }

    #[test]
    fn value_from_a_later_write_is_a_violation() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        // The read returns 5, but write(5) is invoked only after the read
        // terminated — Definition 1 only allows operations invoked before the
        // read terminates.
        let h = HistoryBuilder::new()
            .complete(ProcessId(1), r, Register::read(), Value::from(5i64))
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(5i64)),
                Value::Unit,
            )
            .build();
        assert!(!is_weakly_consistent(&h, &u));
    }

    #[test]
    fn own_writes_must_be_respected() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        // p0 writes 3 and then reads 0: the read ignores p0's own earlier
        // write, violating the "contains all operations performed by the same
        // process" clause (no legal history containing write(3) ends with a
        // read of 0 unless someone else wrote 0 — nobody did... note the
        // initial value is 0, but the mandatory write(3) would have to be
        // ordered after the read, which Definition 1 forbids since S must end
        // with op).
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(3i64)),
                Value::Unit,
            )
            .complete(ProcessId(0), r, Register::read(), Value::from(0i64))
            .build();
        assert!(!is_weakly_consistent(&h, &u));

        // Whereas another process may still read 0 (it need not have seen the
        // write).
        let h2 = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(3i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(0i64))
            .build();
        assert!(is_weakly_consistent(&h2, &u));
    }

    #[test]
    fn duplicate_fetch_inc_zeroes_are_weakly_consistent_but_not_linearizable() {
        // This is the key distinction the paper draws: returning a stale
        // counter value is weakly consistent (each response is justified by
        // *some* subset of operations) even though it is not linearizable.
        let mut u = ObjectUniverse::new();
        let x = u.add_object(FetchIncrement::new());
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .build();
        assert!(is_weakly_consistent(&h, &u));
        assert!(!crate::linearizability::is_linearizable(&h, &u));
    }

    #[test]
    fn repeated_stale_zero_by_same_process_is_rejected() {
        // A process that performs two fetch&inc operations cannot get 0 both
        // times: its second operation must account for its own first one.
        let mut u = ObjectUniverse::new();
        let x = u.add_object(FetchIncrement::new());
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .build();
        assert!(!is_weakly_consistent(&h, &u));
    }

    #[test]
    fn consensus_must_return_some_invoked_proposal() {
        let mut u = ObjectUniverse::new();
        let c = u.add_object(Consensus::new());
        let ok = HistoryBuilder::new()
            .invoke(ProcessId(0), c, Consensus::propose(Value::from(4i64)))
            .complete(
                ProcessId(1),
                c,
                Consensus::propose(Value::from(9i64)),
                Value::from(4i64),
            )
            .respond(ProcessId(0), c, Value::from(4i64))
            .build();
        assert!(is_weakly_consistent(&ok, &u));

        let bad = HistoryBuilder::new()
            .complete(
                ProcessId(1),
                c,
                Consensus::propose(Value::from(9i64)),
                Value::from(4i64),
            )
            .build();
        // Nobody ever proposed 4 before this operation terminated.
        assert!(!is_weakly_consistent(&bad, &u));
    }

    #[test]
    fn pending_operations_are_not_checked() {
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let h = HistoryBuilder::new()
            .invoke(ProcessId(0), r, Register::write(Value::from(1i64)))
            .build();
        assert!(is_weakly_consistent(&h, &u));
        assert!(check_operation(&h, &u, OpId(0), default_limits()));
    }

    #[test]
    fn empty_history_is_weakly_consistent() {
        let u = ObjectUniverse::new();
        assert!(is_weakly_consistent(&History::new(), &u));
    }

    #[test]
    fn multi_object_histories_use_the_locality_pre_pass() {
        // Cross-object verdicts must agree with the per-operation checks on
        // the unprojected history (Lemma 8).
        let mut u = ObjectUniverse::new();
        let r = u.add_object(Register::new(Value::from(0i64)));
        let x = u.add_object(FetchIncrement::new());
        let good = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(ProcessId(1), r, Register::read(), Value::from(0i64))
            .build();
        assert!(is_weakly_consistent(&good, &u));
        assert!(violations(&good, &u).is_empty());
        let bad = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                r,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(9i64),
            )
            .build();
        assert!(!is_weakly_consistent(&bad, &u));
        assert_eq!(violations(&bad, &u), vec![OpId(1)]);
    }

    #[test]
    fn prefix_closure_smoke_check() {
        // Lemma 10: weak consistency is a safety property, so every prefix of
        // a weakly consistent history is weakly consistent.
        let mut u = ObjectUniverse::new();
        let x = u.add_object(FetchIncrement::new());
        let h = HistoryBuilder::new()
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(0i64),
            )
            .complete(
                ProcessId(0),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .complete(
                ProcessId(1),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(1i64),
            )
            .build();
        assert!(is_weakly_consistent(&h, &u));
        for n in 0..=h.len() {
            assert!(is_weakly_consistent(&h.prefix(n), &u));
        }
    }
}
