//! # evlin-spec
//!
//! Sequential specifications of shared-memory object types, following the
//! model of Guerraoui & Ruppert, *"A Paradox of Eventual Linearizability in
//! Shared Memory"* (PODC 2014), Section 3.
//!
//! A type is described by `(Q, Q0, INV, RES, δ)`: a set of states, a set of
//! initial states, sets of invocations and responses, and a transition
//! relation.  In this crate a type is a value implementing [`ObjectType`];
//! states, invocation arguments and responses are all represented by the
//! dynamic [`Value`] type so that histories and checkers can be written
//! generically over any object type.
//!
//! The concrete types used throughout the paper are provided:
//! read/write registers ([`Register`]), fetch&increment counters
//! ([`FetchIncrement`]), consensus objects ([`Consensus`]), test&set objects
//! ([`TestAndSet`]), compare&swap registers ([`CompareAndSwap`]), plain
//! counters ([`Counter`]), FIFO queues ([`Queue`]) and max-registers
//! ([`MaxRegister`]).
//!
//! The paper's Definition 13 (*trivial* deterministic types — those
//! implementable without inter-process communication) is made executable in
//! the [`trivial`] module.
//!
//! ## Example
//!
//! ```
//! use evlin_spec::{FetchIncrement, ObjectType, Invocation, Value};
//!
//! let ty = FetchIncrement::new();
//! let q0 = ty.initial_states()[0].clone();
//! let (resp, q1) = ty.apply_deterministic(&q0, &Invocation::nullary("fetch_inc")).unwrap();
//! assert_eq!(resp, Value::from(0i64));
//! assert_eq!(q1, Value::from(1i64));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod compare_and_swap;
mod consensus;
mod counter;
mod fetch_increment;
mod invocation;
mod max_register;
mod object_type;
mod queue;
mod register;
mod test_and_set;
pub mod trivial;
mod value;

pub use compare_and_swap::CompareAndSwap;
pub use consensus::Consensus;
pub use counter::Counter;
pub use fetch_increment::FetchIncrement;
pub use invocation::Invocation;
pub use max_register::MaxRegister;
pub use object_type::{ObjectType, SpecError, Transition};
pub use queue::Queue;
pub use register::Register;
pub use test_and_set::TestAndSet;
pub use value::Value;

/// Commonly used items re-exported for glob import in downstream crates.
pub mod prelude {
    pub use crate::{
        CompareAndSwap, Consensus, Counter, FetchIncrement, Invocation, MaxRegister, ObjectType,
        Queue, Register, TestAndSet, Value,
    };
}
