//! Consensus objects.

use crate::{Invocation, ObjectType, Transition, Value};

/// A (long-lived) consensus object.
///
/// It "provides one operation `propose(v)` ... Each propose operation returns
/// the value used as the argument of the first propose operation to be
/// linearized" (paper, Section 4).
///
/// The state is either `⊥` (nothing decided yet) or the decided value.  The
/// object is deterministic and — despite being the hardest object to
/// implement linearizably — it has a trivial *eventually linearizable*
/// implementation from registers (Proposition 16).
///
/// # Example
///
/// ```
/// use evlin_spec::{Consensus, ObjectType, Value};
///
/// let c = Consensus::new();
/// let q0 = Value::Bottom;
/// let (r, q1) = c
///     .apply_deterministic(&q0, &Consensus::propose(Value::from(7i64)))
///     .unwrap();
/// assert_eq!(r, Value::from(7i64)); // first proposal wins
/// let (r, _) = c
///     .apply_deterministic(&q1, &Consensus::propose(Value::from(9i64)))
///     .unwrap();
/// assert_eq!(r, Value::from(7i64)); // later proposals see the decision
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Consensus {
    sample_domain: Vec<Value>,
}

impl Consensus {
    /// Creates a consensus object with the default sample domain `{0, 1}`.
    pub fn new() -> Self {
        Consensus {
            sample_domain: vec![Value::from(0i64), Value::from(1i64)],
        }
    }

    /// Replaces the sample domain used by [`ObjectType::sample_invocations`].
    pub fn with_sample_domain(mut self, domain: Vec<Value>) -> Self {
        self.sample_domain = domain;
        self
    }

    /// The `propose(v)` invocation.
    pub fn propose(v: Value) -> Invocation {
        Invocation::unary("propose", v)
    }
}

impl ObjectType for Consensus {
    fn name(&self) -> &str {
        "consensus"
    }

    fn initial_states(&self) -> Vec<Value> {
        vec![Value::Bottom]
    }

    fn transitions(&self, state: &Value, invocation: &Invocation) -> Vec<Transition> {
        if invocation.method() != "propose" {
            return Vec::new();
        }
        let proposal = match invocation.arg(0) {
            Some(v) => v.clone(),
            None => return Vec::new(),
        };
        if state.is_bottom() {
            // First proposal to be linearized wins and becomes the state.
            vec![Transition::new(proposal.clone(), proposal)]
        } else {
            // Decision already made: every later proposal returns it.
            vec![Transition::new(state.clone(), state.clone())]
        }
    }

    fn sample_invocations(&self) -> Vec<Invocation> {
        self.sample_domain
            .iter()
            .map(|v| Consensus::propose(v.clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_proposal_decides() {
        let c = Consensus::new();
        let ts = c.transitions(&Value::Bottom, &Consensus::propose(Value::from(3i64)));
        assert_eq!(
            ts,
            vec![Transition::new(Value::from(3i64), Value::from(3i64))]
        );
    }

    #[test]
    fn later_proposals_adopt_decision() {
        let c = Consensus::new();
        let ts = c.transitions(&Value::from(3i64), &Consensus::propose(Value::from(8i64)));
        assert_eq!(
            ts,
            vec![Transition::new(Value::from(3i64), Value::from(3i64))]
        );
    }

    #[test]
    fn is_deterministic() {
        assert!(Consensus::new().is_deterministic());
    }

    #[test]
    fn rejects_unknown_method_and_missing_argument() {
        let c = Consensus::new();
        assert!(c
            .transitions(&Value::Bottom, &Invocation::nullary("decide"))
            .is_empty());
        assert!(c
            .transitions(&Value::Bottom, &Invocation::nullary("propose"))
            .is_empty());
    }

    #[test]
    fn agreement_and_validity_along_any_sequence() {
        // Sequentially, every response equals the first proposal (validity +
        // agreement of the sequential specification).
        let c = Consensus::new();
        let proposals = [5i64, 2, 9, 7];
        let mut state = Value::Bottom;
        let mut responses = Vec::new();
        for p in proposals {
            let (r, next) = c
                .apply_deterministic(&state, &Consensus::propose(Value::from(p)))
                .unwrap();
            responses.push(r);
            state = next;
        }
        assert!(responses.iter().all(|r| *r == Value::from(5i64)));
    }
}
