//! Plain counters (increment + read), weaker than fetch&increment.

use crate::{Invocation, ObjectType, Transition, Value};

/// A counter with separate `inc()` and `read()` operations.
///
/// Unlike [`crate::FetchIncrement`], an increment does not observe the
/// counter value, so a counter is a strictly weaker synchronization object.
/// It is the natural specification for the introduction's reference-counting
/// scenario, where an eventually consistent implementation batches
/// increments locally and lets reads return temporarily stale values.
///
/// Operations:
/// * `inc()` → `Unit`, adds one to the state,
/// * `add(k)` → `Unit`, adds `k` (used by batched implementations),
/// * `read()` → the current value.
///
/// # Example
///
/// ```
/// use evlin_spec::{Counter, ObjectType, Value};
///
/// let c = Counter::new();
/// let (_, q) = c.apply_deterministic(&Value::from(0i64), &Counter::inc()).unwrap();
/// let (r, _) = c.apply_deterministic(&q, &Counter::read()).unwrap();
/// assert_eq!(r, Value::from(1i64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counter {
    initial: i64,
}

impl Counter {
    /// Creates a counter initialized to zero.
    pub fn new() -> Self {
        Counter { initial: 0 }
    }

    /// Creates a counter with an arbitrary initial value.
    pub fn starting_at(initial: i64) -> Self {
        Counter { initial }
    }

    /// The `inc()` invocation.
    pub fn inc() -> Invocation {
        Invocation::nullary("inc")
    }

    /// The `add(k)` invocation.
    pub fn add(k: i64) -> Invocation {
        Invocation::unary("add", Value::from(k))
    }

    /// The `read()` invocation.
    pub fn read() -> Invocation {
        Invocation::nullary("read")
    }
}

impl ObjectType for Counter {
    fn name(&self) -> &str {
        "counter"
    }

    fn initial_states(&self) -> Vec<Value> {
        vec![Value::from(self.initial)]
    }

    fn transitions(&self, state: &Value, invocation: &Invocation) -> Vec<Transition> {
        let v = match state.as_int() {
            Some(v) => v,
            None => return Vec::new(),
        };
        match invocation.method() {
            "inc" if invocation.args().is_empty() => {
                vec![Transition::new(Value::Unit, Value::from(v + 1))]
            }
            "add" => match invocation.arg(0).and_then(Value::as_int) {
                Some(k) => vec![Transition::new(Value::Unit, Value::from(v + k))],
                None => Vec::new(),
            },
            "read" if invocation.args().is_empty() => {
                vec![Transition::new(Value::from(v), Value::from(v))]
            }
            _ => Vec::new(),
        }
    }

    fn sample_invocations(&self) -> Vec<Invocation> {
        vec![Counter::inc(), Counter::read(), Counter::add(2)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inc_read_and_add() {
        let c = Counter::new();
        let mut state = Value::from(0i64);
        for _ in 0..3 {
            let (r, next) = c.apply_deterministic(&state, &Counter::inc()).unwrap();
            assert_eq!(r, Value::Unit);
            state = next;
        }
        let (r, state) = c.apply_deterministic(&state, &Counter::add(4)).unwrap();
        assert_eq!(r, Value::Unit);
        let (r, _) = c.apply_deterministic(&state, &Counter::read()).unwrap();
        assert_eq!(r, Value::from(7i64));
    }

    #[test]
    fn is_deterministic() {
        assert!(Counter::new().is_deterministic());
    }

    #[test]
    fn starting_at_sets_initial_state() {
        assert_eq!(
            Counter::starting_at(-2).initial_states(),
            vec![Value::from(-2i64)]
        );
    }

    #[test]
    fn malformed_invocations_rejected() {
        let c = Counter::new();
        assert!(c.transitions(&Value::Unit, &Counter::inc()).is_empty());
        assert!(c
            .transitions(&Value::from(0i64), &Invocation::nullary("add"))
            .is_empty());
        assert!(c
            .transitions(&Value::from(0i64), &Invocation::nullary("decrement"))
            .is_empty());
    }
}
