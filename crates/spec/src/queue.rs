//! FIFO queues — a classic non-trivial type used in tests of the checkers.

use crate::{Invocation, ObjectType, Transition, Value};

/// A FIFO queue.
///
/// Operations:
/// * `enqueue(v)` → `Unit`,
/// * `dequeue()` → the oldest element, or `⊥` if the queue is empty.
///
/// The state is a [`Value::List`] holding the queued elements from oldest to
/// newest.  Queues are not used by the paper directly, but they are a
/// standard non-trivial, consensus-number-2 type; the checkers and the
/// Theorem 12 experiments use them as an additional data point.
///
/// # Example
///
/// ```
/// use evlin_spec::{Queue, ObjectType, Value};
///
/// let q = Queue::new();
/// let empty = Value::list([]);
/// let (_, s) = q.apply_deterministic(&empty, &Queue::enqueue(Value::from(1i64))).unwrap();
/// let (r, s) = q.apply_deterministic(&s, &Queue::dequeue()).unwrap();
/// assert_eq!(r, Value::from(1i64));
/// let (r, _) = q.apply_deterministic(&s, &Queue::dequeue()).unwrap();
/// assert_eq!(r, Value::Bottom);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Queue {
    sample_domain: Vec<Value>,
}

impl Queue {
    /// Creates an initially empty queue.
    pub fn new() -> Self {
        Queue {
            sample_domain: vec![Value::from(0i64), Value::from(1i64)],
        }
    }

    /// Replaces the sample domain used by [`ObjectType::sample_invocations`].
    pub fn with_sample_domain(mut self, domain: Vec<Value>) -> Self {
        self.sample_domain = domain;
        self
    }

    /// The `enqueue(v)` invocation.
    pub fn enqueue(v: Value) -> Invocation {
        Invocation::unary("enqueue", v)
    }

    /// The `dequeue()` invocation.
    pub fn dequeue() -> Invocation {
        Invocation::nullary("dequeue")
    }
}

impl ObjectType for Queue {
    fn name(&self) -> &str {
        "queue"
    }

    fn initial_states(&self) -> Vec<Value> {
        vec![Value::list([])]
    }

    fn transitions(&self, state: &Value, invocation: &Invocation) -> Vec<Transition> {
        let items = match state.as_list() {
            Some(items) => items.to_vec(),
            None => return Vec::new(),
        };
        match invocation.method() {
            "enqueue" => match invocation.arg(0) {
                Some(v) => {
                    let mut next = items;
                    next.push(v.clone());
                    vec![Transition::new(Value::Unit, Value::List(next))]
                }
                None => Vec::new(),
            },
            "dequeue" if invocation.args().is_empty() => {
                if items.is_empty() {
                    vec![Transition::new(Value::Bottom, Value::list([]))]
                } else {
                    let mut next = items;
                    let head = next.remove(0);
                    vec![Transition::new(head, Value::List(next))]
                }
            }
            _ => Vec::new(),
        }
    }

    fn sample_invocations(&self) -> Vec<Invocation> {
        let mut invs = vec![Queue::dequeue()];
        for v in &self.sample_domain {
            invs.push(Queue::enqueue(v.clone()));
        }
        invs
    }

    fn is_deterministic(&self) -> bool {
        // The reachable state space of a queue is unbounded; the default
        // bounded exploration would report `true` anyway, but we can assert
        // determinism directly: both operations have exactly one outcome in
        // every state.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let q = Queue::new();
        let mut s = Value::list([]);
        for v in 1..=3i64 {
            let (_, next) = q
                .apply_deterministic(&s, &Queue::enqueue(Value::from(v)))
                .unwrap();
            s = next;
        }
        for v in 1..=3i64 {
            let (r, next) = q.apply_deterministic(&s, &Queue::dequeue()).unwrap();
            assert_eq!(r, Value::from(v));
            s = next;
        }
        let (r, _) = q.apply_deterministic(&s, &Queue::dequeue()).unwrap();
        assert_eq!(r, Value::Bottom);
    }

    #[test]
    fn dequeue_on_empty_returns_bottom_and_stays_empty() {
        let q = Queue::new();
        let ts = q.transitions(&Value::list([]), &Queue::dequeue());
        assert_eq!(ts, vec![Transition::new(Value::Bottom, Value::list([]))]);
    }

    #[test]
    fn malformed_invocations_rejected() {
        let q = Queue::new();
        assert!(q.transitions(&Value::Unit, &Queue::dequeue()).is_empty());
        assert!(q
            .transitions(&Value::list([]), &Invocation::nullary("enqueue"))
            .is_empty());
        assert!(q
            .transitions(&Value::list([]), &Invocation::nullary("peek"))
            .is_empty());
    }

    #[test]
    fn declared_deterministic() {
        assert!(Queue::new().is_deterministic());
    }
}
