//! The fetch&increment counter — the central object of the paper's Section 5.

use crate::{Invocation, ObjectType, Transition, Value};

/// A fetch&increment object.
///
/// It "stores a natural number and provides a single operation, `fetch_inc`,
/// which adds one to the value stored and returns the old value" (paper,
/// Section 3.2).  The object is deterministic and requires synchronization
/// *forever* — which is exactly why its eventually linearizable
/// implementations turn out to be as powerful as linearizable ones
/// (Proposition 18).
///
/// # Example
///
/// ```
/// use evlin_spec::{FetchIncrement, ObjectType, Value};
///
/// let fi = FetchIncrement::new();
/// let (r, q) = fi
///     .apply_deterministic(&Value::from(41i64), &FetchIncrement::fetch_inc())
///     .unwrap();
/// assert_eq!(r, Value::from(41i64));
/// assert_eq!(q, Value::from(42i64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FetchIncrement {
    initial: i64,
}

impl FetchIncrement {
    /// Creates a fetch&increment object initialized to `0`.
    pub fn new() -> Self {
        FetchIncrement { initial: 0 }
    }

    /// Creates a fetch&increment object with an arbitrary initial value —
    /// the Proposition 18 transformation produces implementations that start
    /// "from a different initial state of the counter".
    pub fn starting_at(initial: i64) -> Self {
        FetchIncrement { initial }
    }

    /// The `fetch_inc()` invocation.
    pub fn fetch_inc() -> Invocation {
        Invocation::nullary("fetch_inc")
    }

    /// The initial counter value.
    pub fn initial(&self) -> i64 {
        self.initial
    }
}

impl ObjectType for FetchIncrement {
    fn name(&self) -> &str {
        "fetch&increment"
    }

    fn initial_states(&self) -> Vec<Value> {
        vec![Value::from(self.initial)]
    }

    fn transitions(&self, state: &Value, invocation: &Invocation) -> Vec<Transition> {
        let v = match state.as_int() {
            Some(v) => v,
            None => return Vec::new(),
        };
        match invocation.method() {
            "fetch_inc" if invocation.args().is_empty() => {
                vec![Transition::new(Value::from(v), Value::from(v + 1))]
            }
            _ => Vec::new(),
        }
    }

    fn sample_invocations(&self) -> Vec<Invocation> {
        vec![FetchIncrement::fetch_inc()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_inc_returns_old_value() {
        let fi = FetchIncrement::new();
        let ts = fi.transitions(&Value::from(0i64), &FetchIncrement::fetch_inc());
        assert_eq!(
            ts,
            vec![Transition::new(Value::from(0i64), Value::from(1i64))]
        );
    }

    #[test]
    fn custom_initial_state() {
        let fi = FetchIncrement::starting_at(10);
        assert_eq!(fi.initial_states(), vec![Value::from(10i64)]);
        assert_eq!(fi.initial(), 10);
    }

    #[test]
    fn is_deterministic() {
        assert!(FetchIncrement::new().is_deterministic());
    }

    #[test]
    fn rejects_bad_state_and_method() {
        let fi = FetchIncrement::new();
        assert!(fi
            .transitions(&Value::Unit, &FetchIncrement::fetch_inc())
            .is_empty());
        assert!(fi
            .transitions(&Value::from(0i64), &Invocation::nullary("read"))
            .is_empty());
    }

    #[test]
    fn sequence_of_increments_counts_up() {
        let fi = FetchIncrement::new();
        let mut state = Value::from(0i64);
        for expect in 0..10i64 {
            let (r, next) = fi
                .apply_deterministic(&state, &FetchIncrement::fetch_inc())
                .unwrap();
            assert_eq!(r, Value::from(expect));
            state = next;
        }
        assert_eq!(state, Value::from(10i64));
    }
}
