//! Compare&swap registers — the hardware primitive the introduction talks about.

use crate::{Invocation, ObjectType, Transition, Value};

/// A compare&swap register.
///
/// Operations:
/// * `read()` → current value,
/// * `write(v)` → `Unit`,
/// * `cas(expected, new)` → `Bool`: if the current value equals `expected`
///   the state becomes `new` and the response is `true`, otherwise the state
///   is unchanged and the response is `false`.
///
/// The introduction of the paper motivates eventual linearizability with a
/// fetch&increment counter "typically implemented in software using the
/// system's compare&swap objects"; this type is that base object.
///
/// # Example
///
/// ```
/// use evlin_spec::{CompareAndSwap, ObjectType, Value};
///
/// let cas = CompareAndSwap::new(Value::from(0i64));
/// let (ok, q) = cas
///     .apply_deterministic(&Value::from(0i64), &CompareAndSwap::cas(Value::from(0i64), Value::from(1i64)))
///     .unwrap();
/// assert_eq!(ok, Value::Bool(true));
/// assert_eq!(q, Value::from(1i64));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompareAndSwap {
    initial: Value,
    sample_domain: Vec<Value>,
}

impl CompareAndSwap {
    /// Creates a compare&swap register with the given initial value.
    pub fn new(initial: Value) -> Self {
        let mut sample_domain = vec![initial.clone(), Value::from(0i64), Value::from(1i64)];
        sample_domain.dedup();
        CompareAndSwap {
            initial,
            sample_domain,
        }
    }

    /// Replaces the sample domain used by [`ObjectType::sample_invocations`].
    pub fn with_sample_domain(mut self, domain: Vec<Value>) -> Self {
        self.sample_domain = domain;
        self
    }

    /// The `read()` invocation.
    pub fn read() -> Invocation {
        Invocation::nullary("read")
    }

    /// The `write(v)` invocation.
    pub fn write(v: Value) -> Invocation {
        Invocation::unary("write", v)
    }

    /// The `cas(expected, new)` invocation.
    pub fn cas(expected: Value, new: Value) -> Invocation {
        Invocation::binary("cas", expected, new)
    }
}

impl Default for CompareAndSwap {
    fn default() -> Self {
        CompareAndSwap::new(Value::from(0i64))
    }
}

impl ObjectType for CompareAndSwap {
    fn name(&self) -> &str {
        "compare&swap"
    }

    fn initial_states(&self) -> Vec<Value> {
        vec![self.initial.clone()]
    }

    fn transitions(&self, state: &Value, invocation: &Invocation) -> Vec<Transition> {
        match invocation.method() {
            "read" if invocation.args().is_empty() => {
                vec![Transition::new(state.clone(), state.clone())]
            }
            "write" => match invocation.arg(0) {
                Some(v) => vec![Transition::new(Value::Unit, v.clone())],
                None => Vec::new(),
            },
            "cas" => match (invocation.arg(0), invocation.arg(1)) {
                (Some(expected), Some(new)) => {
                    if state == expected {
                        vec![Transition::new(Value::Bool(true), new.clone())]
                    } else {
                        vec![Transition::new(Value::Bool(false), state.clone())]
                    }
                }
                _ => Vec::new(),
            },
            _ => Vec::new(),
        }
    }

    fn sample_invocations(&self) -> Vec<Invocation> {
        let mut invs = vec![CompareAndSwap::read()];
        for v in &self.sample_domain {
            invs.push(CompareAndSwap::write(v.clone()));
            for w in &self.sample_domain {
                invs.push(CompareAndSwap::cas(v.clone(), w.clone()));
            }
        }
        invs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn successful_cas_swaps() {
        let c = CompareAndSwap::default();
        let ts = c.transitions(
            &Value::from(0i64),
            &CompareAndSwap::cas(Value::from(0i64), Value::from(7i64)),
        );
        assert_eq!(
            ts,
            vec![Transition::new(Value::Bool(true), Value::from(7i64))]
        );
    }

    #[test]
    fn failed_cas_leaves_state() {
        let c = CompareAndSwap::default();
        let ts = c.transitions(
            &Value::from(5i64),
            &CompareAndSwap::cas(Value::from(0i64), Value::from(7i64)),
        );
        assert_eq!(
            ts,
            vec![Transition::new(Value::Bool(false), Value::from(5i64))]
        );
    }

    #[test]
    fn read_and_write_behave_like_a_register() {
        let c = CompareAndSwap::default();
        assert_eq!(
            c.transitions(&Value::from(4i64), &CompareAndSwap::read()),
            vec![Transition::new(Value::from(4i64), Value::from(4i64))]
        );
        assert_eq!(
            c.transitions(
                &Value::from(4i64),
                &CompareAndSwap::write(Value::from(9i64))
            ),
            vec![Transition::new(Value::Unit, Value::from(9i64))]
        );
    }

    #[test]
    fn is_deterministic() {
        assert!(CompareAndSwap::default().is_deterministic());
    }

    #[test]
    fn malformed_invocations_rejected() {
        let c = CompareAndSwap::default();
        assert!(c
            .transitions(&Value::from(0i64), &Invocation::nullary("cas"))
            .is_empty());
        assert!(c
            .transitions(
                &Value::from(0i64),
                &Invocation::unary("cas", Value::from(0i64))
            )
            .is_empty());
        assert!(c
            .transitions(&Value::from(0i64), &Invocation::nullary("swap"))
            .is_empty());
    }
}
