//! Operation invocations.

use crate::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// An operation invocation: a method name together with its arguments.
///
/// Following the paper, "the name of an operation includes all of the
/// operation's arguments" — an `Invocation` is exactly that pairing, kept
/// structured so that specifications can pattern-match on the method name and
/// inspect the arguments.
///
/// Both fields are reference-counted (`Arc<str>` / `Arc<[Value]>`), so
/// cloning an invocation — which happens once per recorded event every time
/// the exhaustive explorer clones a configuration, and once per operation in
/// every checker's candidate table — is two reference-count bumps instead of
/// a string and a vector allocation.
///
/// # Example
///
/// ```
/// use evlin_spec::{Invocation, Value};
///
/// let write = Invocation::unary("write", Value::from(7i64));
/// assert_eq!(write.method(), "write");
/// assert_eq!(write.arg(0), Some(&Value::from(7i64)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Invocation {
    method: Arc<str>,
    args: Arc<[Value]>,
}

/// The shared empty argument list: nullary invocations are by far the most
/// common (`read()`, `fetch_inc()`, …) and are built once per programme step
/// by the simulator's state machines, so they must not pay a fresh slice
/// allocation each time.
fn empty_args() -> Arc<[Value]> {
    static EMPTY: OnceLock<Arc<[Value]>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::from(Vec::new())).clone()
}

impl Invocation {
    /// Creates an invocation with an arbitrary argument list.
    pub fn new<S: Into<String>>(method: S, args: Vec<Value>) -> Self {
        Invocation {
            method: Arc::from(method.into()),
            args: if args.is_empty() {
                empty_args()
            } else {
                Arc::from(args)
            },
        }
    }

    /// Creates an invocation with no arguments, e.g. `read()` or `fetch_inc()`.
    pub fn nullary<S: Into<String>>(method: S) -> Self {
        Invocation::new(method, Vec::new())
    }

    /// Creates an invocation with one argument, e.g. `write(v)` or `propose(v)`.
    pub fn unary<S: Into<String>>(method: S, arg: Value) -> Self {
        Invocation::new(method, vec![arg])
    }

    /// Creates an invocation with two arguments, e.g. `cas(expected, new)`.
    pub fn binary<S: Into<String>>(method: S, a: Value, b: Value) -> Self {
        Invocation::new(method, vec![a, b])
    }

    /// The method name, without arguments.
    pub fn method(&self) -> &str {
        &self.method
    }

    /// All arguments, in order.
    pub fn args(&self) -> &[Value] {
        &self.args
    }

    /// The `i`-th argument, if present.
    pub fn arg(&self, i: usize) -> Option<&Value> {
        self.args.get(i)
    }
}

impl fmt::Display for Invocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.method)?;
        for (i, a) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{a}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_store_arguments() {
        let i = Invocation::nullary("read");
        assert_eq!(i.method(), "read");
        assert!(i.args().is_empty());

        let i = Invocation::unary("write", Value::from(3i64));
        assert_eq!(i.args(), &[Value::from(3i64)]);

        let i = Invocation::binary("cas", Value::from(0i64), Value::from(1i64));
        assert_eq!(i.arg(0), Some(&Value::from(0i64)));
        assert_eq!(i.arg(1), Some(&Value::from(1i64)));
        assert_eq!(i.arg(2), None);
    }

    #[test]
    fn display_formats_like_a_call() {
        let i = Invocation::binary("cas", Value::from(0i64), Value::from(1i64));
        assert_eq!(format!("{i}"), "cas(0, 1)");
        assert_eq!(
            format!("{}", Invocation::nullary("fetch_inc")),
            "fetch_inc()"
        );
    }

    #[test]
    fn equality_includes_arguments() {
        let a = Invocation::unary("write", Value::from(1i64));
        let b = Invocation::unary("write", Value::from(2i64));
        assert_ne!(a, b);
        assert_eq!(a, Invocation::unary("write", Value::from(1i64)));
    }
}
