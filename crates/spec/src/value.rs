//! Dynamic values used for states, invocation arguments and responses.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamically typed value.
///
/// Object states, operation arguments and operation responses are all
/// represented as `Value`s so that [`crate::ObjectType`] can be implemented as
/// a trait object and histories can be stored uniformly regardless of the
/// object type they talk about.
///
/// The variants cover everything the paper's objects need: the unit response
/// of a `write`, integer counter values, booleans for compare&swap outcomes,
/// the distinguished bottom value `⊥` used by consensus and by announce
/// registers, symbolic labels, pairs and lists (used for compound object
/// states such as queue contents).
///
/// # Example
///
/// ```
/// use evlin_spec::Value;
///
/// let v = Value::list([Value::from(1i64), Value::Bottom]);
/// assert_eq!(format!("{v}"), "[1, ⊥]");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default)]
pub enum Value {
    /// The unit value, used as the response of operations like `write`.
    #[default]
    Unit,
    /// The distinguished "bottom" value `⊥` (e.g. an undecided consensus
    /// object, or an empty announce slot).
    Bottom,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// A symbolic label (used for process names in tests and for operation
    /// payloads that are easier to read as words).
    Sym(String),
    /// An ordered pair.
    Pair(Box<Value>, Box<Value>),
    /// A finite list.
    List(Vec<Value>),
}

impl Value {
    /// Builds a [`Value::List`] from anything iterable.
    ///
    /// ```
    /// use evlin_spec::Value;
    /// assert_eq!(Value::list([Value::Unit]), Value::List(vec![Value::Unit]));
    /// ```
    pub fn list<I: IntoIterator<Item = Value>>(items: I) -> Self {
        Value::List(items.into_iter().collect())
    }

    /// Builds a [`Value::Pair`].
    pub fn pair(a: Value, b: Value) -> Self {
        Value::Pair(Box::new(a), Box::new(b))
    }

    /// Builds a [`Value::Sym`] from a string-like argument.
    pub fn sym<S: Into<String>>(s: S) -> Self {
        Value::Sym(s.into())
    }

    /// Returns the integer payload if this value is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the boolean payload if this value is a [`Value::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the list payload if this value is a [`Value::List`].
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(items) => Some(items),
            _ => None,
        }
    }

    /// Returns the pair payload if this value is a [`Value::Pair`].
    pub fn as_pair(&self) -> Option<(&Value, &Value)> {
        match self {
            Value::Pair(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// Returns `true` if this value is the bottom value `⊥`.
    pub fn is_bottom(&self) -> bool {
        matches!(self, Value::Bottom)
    }

    /// Returns `true` if this value is the unit value.
    pub fn is_unit(&self) -> bool {
        matches!(self, Value::Unit)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<u64> for Value {
    fn from(i: u64) -> Self {
        Value::Int(i as i64)
    }
}

impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i as i64)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Sym(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Sym(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "()"),
            Value::Bottom => write!(f, "⊥"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Sym(s) => write!(f, "{s}"),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::List(items) => {
                write!(f, "[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(Value::from(5i64).as_int(), Some(5));
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::from("x"), Value::Sym("x".into()));
        assert_eq!(Value::from(7usize).as_int(), Some(7));
        assert_eq!(Value::from(7u64).as_int(), Some(7));
        assert_eq!(Value::from(-3i32).as_int(), Some(-3));
    }

    #[test]
    fn accessors_reject_wrong_variant() {
        assert_eq!(Value::Unit.as_int(), None);
        assert_eq!(Value::from(1i64).as_bool(), None);
        assert_eq!(Value::Bool(false).as_list(), None);
        assert_eq!(Value::Unit.as_pair(), None);
    }

    #[test]
    fn bottom_and_unit_predicates() {
        assert!(Value::Bottom.is_bottom());
        assert!(!Value::Unit.is_bottom());
        assert!(Value::Unit.is_unit());
        assert!(!Value::Bottom.is_unit());
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(format!("{}", Value::Unit), "()");
        assert_eq!(format!("{}", Value::Bottom), "⊥");
        assert_eq!(format!("{}", Value::from(42i64)), "42");
        assert_eq!(
            format!("{}", Value::pair(Value::from(1i64), Value::from(2i64))),
            "(1, 2)"
        );
        assert_eq!(
            format!("{}", Value::list([Value::from(1i64), Value::Bottom])),
            "[1, ⊥]"
        );
    }

    #[test]
    fn ordering_is_total() {
        let mut vs = vec![
            Value::from(3i64),
            Value::Unit,
            Value::Bottom,
            Value::from(1i64),
        ];
        vs.sort();
        // Just checks sorting doesn't panic and is deterministic.
        let again = {
            let mut v2 = vs.clone();
            v2.sort();
            v2
        };
        assert_eq!(vs, again);
    }

    #[test]
    fn default_is_unit() {
        assert_eq!(Value::default(), Value::Unit);
    }
}
