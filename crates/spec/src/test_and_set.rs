//! Test&set objects.

use crate::{Invocation, ObjectType, Transition, Value};

/// A test&set object.
///
/// `test_and_set()` returns `0` to the first operation linearized and `1` to
/// every later one.  The paper uses it as the canonical example of a
/// long-lived type whose behaviour is "interesting only in a finite prefix of
/// each execution", which is why it has a *trivial* eventually linearizable
/// implementation using no shared memory at all (Section 4).
///
/// The state is `Bool(false)` (unset) or `Bool(true)` (set).
///
/// # Example
///
/// ```
/// use evlin_spec::{TestAndSet, ObjectType, Value};
///
/// let ts = TestAndSet::new();
/// let (r, q) = ts
///     .apply_deterministic(&Value::Bool(false), &TestAndSet::test_and_set())
///     .unwrap();
/// assert_eq!(r, Value::from(0i64));
/// assert_eq!(q, Value::Bool(true));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TestAndSet;

impl TestAndSet {
    /// Creates a test&set object in the unset state.
    pub fn new() -> Self {
        TestAndSet
    }

    /// The `test_and_set()` invocation.
    pub fn test_and_set() -> Invocation {
        Invocation::nullary("test_and_set")
    }
}

impl ObjectType for TestAndSet {
    fn name(&self) -> &str {
        "test&set"
    }

    fn initial_states(&self) -> Vec<Value> {
        vec![Value::Bool(false)]
    }

    fn transitions(&self, state: &Value, invocation: &Invocation) -> Vec<Transition> {
        if invocation.method() != "test_and_set" || !invocation.args().is_empty() {
            return Vec::new();
        }
        match state.as_bool() {
            Some(false) => vec![Transition::new(Value::from(0i64), Value::Bool(true))],
            Some(true) => vec![Transition::new(Value::from(1i64), Value::Bool(true))],
            None => Vec::new(),
        }
    }

    fn sample_invocations(&self) -> Vec<Invocation> {
        vec![TestAndSet::test_and_set()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn winner_gets_zero_then_everyone_gets_one() {
        let t = TestAndSet::new();
        let mut state = Value::Bool(false);
        let (r0, next) = t
            .apply_deterministic(&state, &TestAndSet::test_and_set())
            .unwrap();
        state = next;
        assert_eq!(r0, Value::from(0i64));
        for _ in 0..5 {
            let (r, next) = t
                .apply_deterministic(&state, &TestAndSet::test_and_set())
                .unwrap();
            assert_eq!(r, Value::from(1i64));
            state = next;
        }
    }

    #[test]
    fn is_deterministic() {
        assert!(TestAndSet::new().is_deterministic());
    }

    #[test]
    fn rejects_bad_state_and_method() {
        let t = TestAndSet::new();
        assert!(t
            .transitions(&Value::Unit, &TestAndSet::test_and_set())
            .is_empty());
        assert!(t
            .transitions(&Value::Bool(false), &Invocation::nullary("reset"))
            .is_empty());
    }
}
