//! Definition 13: *trivial* deterministic types.
//!
//! "A deterministic type `T` is called trivial if and only if there is a
//! computable function `r` that maps each initial state `q0` and operation
//! `op` to a response `r(q0, op)` that is the correct response to `op` for
//! every state reachable from `q0`."
//!
//! Proposition 14 then shows that a deterministic type has a linearizable
//! obstruction-free implementation (for two processes) from eventually
//! linearizable objects **iff** it is trivial.  This module provides a
//! bounded decision procedure for triviality and, when a type is trivial,
//! returns the witnessing response function as an explicit table — that table
//! *is* the communication-free implementation promised by the proposition.

use crate::{Invocation, ObjectType, Value};
use std::collections::BTreeMap;

/// The result of the bounded triviality analysis of a deterministic type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Triviality {
    /// The type is trivial (up to the exploration bound): for every sampled
    /// operation there is a single response valid in every reachable state.
    /// The table maps each sampled invocation to that response.
    Trivial {
        /// The witnessing response function `op ↦ r(q0, op)` for the first
        /// initial state.
        responses: BTreeMap<Invocation, Value>,
    },
    /// The type is not trivial: a witness operation and two reachable states
    /// in which it must return different responses.
    NonTrivial {
        /// The operation whose correct response depends on the state.
        operation: Invocation,
        /// A reachable state where the operation returns `response_a`.
        state_a: Value,
        /// The response in `state_a`.
        response_a: Value,
        /// Another reachable state where the operation returns `response_b`.
        state_b: Value,
        /// The response in `state_b` (differs from `response_a`).
        response_b: Value,
    },
    /// The type is not deterministic, so Definition 13 does not apply.
    NotDeterministic,
}

impl Triviality {
    /// Returns `true` if the analysis concluded the type is trivial.
    pub fn is_trivial(&self) -> bool {
        matches!(self, Triviality::Trivial { .. })
    }
}

/// Analyses whether a deterministic type is trivial per Definition 13.
///
/// The analysis explores at most `state_limit` states reachable from each
/// initial state using the type's sampled invocations; triviality is decided
/// with respect to that reachable fragment.  For the finite-state types in
/// this workspace (registers over a finite sample domain, test&set,
/// consensus over a finite domain) the answer is exact; for unbounded types
/// (fetch&increment, counters, queues) a non-trivial verdict is exact while a
/// trivial verdict would only hold up to the bound (none of the bundled
/// unbounded types are trivial).
///
/// # Example
///
/// ```
/// use evlin_spec::{trivial, Register, FetchIncrement, Value};
///
/// assert!(!trivial::analyze(&Register::new(Value::from(0i64)), 64).is_trivial());
/// assert!(!trivial::analyze(&FetchIncrement::new(), 64).is_trivial());
/// ```
pub fn analyze<T: ObjectType + ?Sized>(ty: &T, state_limit: usize) -> Triviality {
    if !ty.is_deterministic() {
        return Triviality::NotDeterministic;
    }
    let invocations = ty.sample_invocations();
    let mut responses: BTreeMap<Invocation, Value> = BTreeMap::new();
    for q0 in ty.initial_states() {
        let reachable = ty.reachable_states(&q0, state_limit);
        for inv in &invocations {
            let mut seen: Option<(Value, Value)> = None; // (state, response)
            for state in &reachable {
                let outcome = match ty.apply_deterministic(state, inv) {
                    Ok((resp, _)) => resp,
                    Err(_) => continue, // operation not enabled in this state
                };
                match &seen {
                    None => {
                        seen = Some((state.clone(), outcome.clone()));
                        responses.entry(inv.clone()).or_insert(outcome);
                    }
                    Some((state_a, response_a)) => {
                        if *response_a != outcome {
                            return Triviality::NonTrivial {
                                operation: inv.clone(),
                                state_a: state_a.clone(),
                                response_a: response_a.clone(),
                                state_b: state.clone(),
                                response_b: outcome,
                            };
                        }
                    }
                }
            }
        }
    }
    Triviality::Trivial { responses }
}

/// A deliberately trivial deterministic type used in tests and in the E5
/// experiment catalogue: a "sticky gate" whose single operation `knock()`
/// always returns `ok` and never changes the (single) state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StickyGate;

impl StickyGate {
    /// Creates the gate.
    pub fn new() -> Self {
        StickyGate
    }

    /// The `knock()` invocation.
    pub fn knock() -> Invocation {
        Invocation::nullary("knock")
    }
}

impl ObjectType for StickyGate {
    fn name(&self) -> &str {
        "sticky-gate"
    }

    fn initial_states(&self) -> Vec<Value> {
        vec![Value::Unit]
    }

    fn transitions(&self, state: &Value, invocation: &Invocation) -> Vec<crate::Transition> {
        if invocation.method() == "knock" && state.is_unit() {
            vec![crate::Transition::new(Value::sym("ok"), Value::Unit)]
        } else {
            Vec::new()
        }
    }

    fn sample_invocations(&self) -> Vec<Invocation> {
        vec![StickyGate::knock()]
    }
}

/// Another trivial type: a write-only "blind register" whose `write(v)`
/// returns `Unit` and whose value can never be read back.  Because no
/// response ever depends on the state, the type is trivial even though its
/// state changes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlindRegister;

impl BlindRegister {
    /// Creates the blind register.
    pub fn new() -> Self {
        BlindRegister
    }

    /// The `write(v)` invocation.
    pub fn write(v: Value) -> Invocation {
        Invocation::unary("write", v)
    }
}

impl ObjectType for BlindRegister {
    fn name(&self) -> &str {
        "blind-register"
    }

    fn initial_states(&self) -> Vec<Value> {
        vec![Value::from(0i64)]
    }

    fn transitions(&self, _state: &Value, invocation: &Invocation) -> Vec<crate::Transition> {
        match invocation.method() {
            "write" => match invocation.arg(0) {
                Some(v) => vec![crate::Transition::new(Value::Unit, v.clone())],
                None => Vec::new(),
            },
            _ => Vec::new(),
        }
    }

    fn sample_invocations(&self) -> Vec<Invocation> {
        vec![
            BlindRegister::write(Value::from(0i64)),
            BlindRegister::write(Value::from(1i64)),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Consensus, Counter, FetchIncrement, MaxRegister, Queue, Register, TestAndSet};

    #[test]
    fn sticky_gate_is_trivial_with_response_table() {
        match analyze(&StickyGate::new(), 32) {
            Triviality::Trivial { responses } => {
                assert_eq!(responses.get(&StickyGate::knock()), Some(&Value::sym("ok")));
            }
            other => panic!("expected trivial, got {other:?}"),
        }
    }

    #[test]
    fn blind_register_is_trivial() {
        assert!(analyze(&BlindRegister::new(), 32).is_trivial());
    }

    #[test]
    fn register_is_not_trivial() {
        // Proposition 14's remark: "even weak objects like read/write
        // registers do not have linearizable implementations from any
        // collection of eventually linearizable objects" — because they are
        // not trivial.
        match analyze(&Register::new(Value::from(0i64)), 64) {
            Triviality::NonTrivial { operation, .. } => {
                assert_eq!(operation.method(), "read");
            }
            other => panic!("expected non-trivial, got {other:?}"),
        }
    }

    #[test]
    fn paper_types_are_not_trivial() {
        assert!(!analyze(&FetchIncrement::new(), 64).is_trivial());
        assert!(!analyze(&TestAndSet::new(), 64).is_trivial());
        assert!(!analyze(&Consensus::new(), 64).is_trivial());
        assert!(!analyze(&Counter::new(), 64).is_trivial());
        assert!(!analyze(&Queue::new(), 64).is_trivial());
        assert!(!analyze(&MaxRegister::new(), 64).is_trivial());
    }

    #[test]
    fn non_trivial_witness_is_consistent() {
        if let Triviality::NonTrivial {
            operation,
            state_a,
            response_a,
            state_b,
            response_b,
        } = analyze(&FetchIncrement::new(), 64)
        {
            let fi = FetchIncrement::new();
            assert_ne!(response_a, response_b);
            assert_eq!(
                fi.apply_deterministic(&state_a, &operation).unwrap().0,
                response_a
            );
            assert_eq!(
                fi.apply_deterministic(&state_b, &operation).unwrap().0,
                response_b
            );
        } else {
            panic!("fetch&increment should be non-trivial");
        }
    }
}
