//! Max-registers: a simple monotone type used in triviality experiments.

use crate::{Invocation, ObjectType, Transition, Value};

/// A max-register.
///
/// Operations:
/// * `write_max(v)` → `Unit`, the state becomes `max(state, v)`,
/// * `read_max()` → the largest value written so far.
///
/// Max-registers sit strictly between read/write registers and
/// fetch&increment in terms of synchronization requirements; the experiment
/// catalogue (E5) classifies them as non-trivial.
///
/// # Example
///
/// ```
/// use evlin_spec::{MaxRegister, ObjectType, Value};
///
/// let m = MaxRegister::new();
/// let (_, s) = m.apply_deterministic(&Value::from(0i64), &MaxRegister::write_max(5)).unwrap();
/// let (_, s) = m.apply_deterministic(&s, &MaxRegister::write_max(3)).unwrap();
/// let (r, _) = m.apply_deterministic(&s, &MaxRegister::read_max()).unwrap();
/// assert_eq!(r, Value::from(5i64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MaxRegister {
    initial: i64,
}

impl MaxRegister {
    /// Creates a max-register initialized to `0`.
    pub fn new() -> Self {
        MaxRegister { initial: 0 }
    }

    /// Creates a max-register with an arbitrary initial value.
    pub fn starting_at(initial: i64) -> Self {
        MaxRegister { initial }
    }

    /// The `write_max(v)` invocation.
    pub fn write_max(v: i64) -> Invocation {
        Invocation::unary("write_max", Value::from(v))
    }

    /// The `read_max()` invocation.
    pub fn read_max() -> Invocation {
        Invocation::nullary("read_max")
    }
}

impl ObjectType for MaxRegister {
    fn name(&self) -> &str {
        "max-register"
    }

    fn initial_states(&self) -> Vec<Value> {
        vec![Value::from(self.initial)]
    }

    fn transitions(&self, state: &Value, invocation: &Invocation) -> Vec<Transition> {
        let cur = match state.as_int() {
            Some(v) => v,
            None => return Vec::new(),
        };
        match invocation.method() {
            "write_max" => match invocation.arg(0).and_then(Value::as_int) {
                Some(v) => vec![Transition::new(Value::Unit, Value::from(cur.max(v)))],
                None => Vec::new(),
            },
            "read_max" if invocation.args().is_empty() => {
                vec![Transition::new(Value::from(cur), Value::from(cur))]
            }
            _ => Vec::new(),
        }
    }

    fn sample_invocations(&self) -> Vec<Invocation> {
        vec![
            MaxRegister::read_max(),
            MaxRegister::write_max(1),
            MaxRegister::write_max(2),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_maximum() {
        let m = MaxRegister::new();
        let (_, s) = m
            .apply_deterministic(&Value::from(4i64), &MaxRegister::write_max(2))
            .unwrap();
        assert_eq!(s, Value::from(4i64));
        let (_, s) = m
            .apply_deterministic(&s, &MaxRegister::write_max(9))
            .unwrap();
        assert_eq!(s, Value::from(9i64));
    }

    #[test]
    fn read_does_not_change_state() {
        let m = MaxRegister::new();
        let ts = m.transitions(&Value::from(6i64), &MaxRegister::read_max());
        assert_eq!(
            ts,
            vec![Transition::new(Value::from(6i64), Value::from(6i64))]
        );
    }

    #[test]
    fn is_deterministic() {
        assert!(MaxRegister::new().is_deterministic());
    }

    #[test]
    fn malformed_invocations_rejected() {
        let m = MaxRegister::new();
        assert!(m
            .transitions(&Value::Unit, &MaxRegister::read_max())
            .is_empty());
        assert!(m
            .transitions(&Value::from(0i64), &Invocation::nullary("write_max"))
            .is_empty());
    }
}
