//! Read/write registers.

use crate::{Invocation, ObjectType, Transition, Value};

/// A multi-reader multi-writer read/write register.
///
/// Operations:
/// * `read()` → current value,
/// * `write(v)` → `Unit`, setting the state to `v`.
///
/// The register is deterministic.  Its state is the stored [`Value`].
/// The sampled invocations write the values of `sample_domain`, which
/// defaults to `{0, 1}` plus the initial value.
///
/// # Example
///
/// ```
/// use evlin_spec::{Register, ObjectType, Invocation, Value};
///
/// let reg = Register::new(Value::from(0i64));
/// let (resp, next) = reg
///     .apply_deterministic(&Value::from(0i64), &Invocation::unary("write", Value::from(9i64)))
///     .unwrap();
/// assert_eq!(resp, Value::Unit);
/// assert_eq!(next, Value::from(9i64));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Register {
    initial: Value,
    sample_domain: Vec<Value>,
}

impl Register {
    /// Creates a register with the given initial value and the default sample
    /// domain `{initial, 0, 1}`.
    pub fn new(initial: Value) -> Self {
        let mut sample_domain = vec![initial.clone(), Value::from(0i64), Value::from(1i64)];
        sample_domain.dedup();
        Register {
            initial,
            sample_domain,
        }
    }

    /// Creates a register initialized to `⊥`, as used for announce arrays and
    /// the Proposition 16 `Proposal` registers.
    pub fn new_bottom() -> Self {
        Register::new(Value::Bottom)
    }

    /// Replaces the sample domain used by [`ObjectType::sample_invocations`].
    pub fn with_sample_domain(mut self, domain: Vec<Value>) -> Self {
        self.sample_domain = domain;
        self
    }

    /// The initial value of the register.
    pub fn initial(&self) -> &Value {
        &self.initial
    }
}

impl Default for Register {
    fn default() -> Self {
        Register::new(Value::from(0i64))
    }
}

impl ObjectType for Register {
    fn name(&self) -> &str {
        "register"
    }

    fn initial_states(&self) -> Vec<Value> {
        vec![self.initial.clone()]
    }

    fn transitions(&self, state: &Value, invocation: &Invocation) -> Vec<Transition> {
        match invocation.method() {
            "read" if invocation.args().is_empty() => {
                vec![Transition::new(state.clone(), state.clone())]
            }
            "write" => match invocation.arg(0) {
                Some(v) => vec![Transition::new(Value::Unit, v.clone())],
                None => Vec::new(),
            },
            _ => Vec::new(),
        }
    }

    fn sample_invocations(&self) -> Vec<Invocation> {
        let mut invs = vec![Invocation::nullary("read")];
        for v in &self.sample_domain {
            invs.push(Invocation::unary("write", v.clone()));
        }
        invs
    }
}

/// Convenience constructors for register invocations.
impl Register {
    /// The `read()` invocation.
    pub fn read() -> Invocation {
        Invocation::nullary("read")
    }

    /// The `write(v)` invocation.
    pub fn write(v: Value) -> Invocation {
        Invocation::unary("write", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_returns_state_and_preserves_it() {
        let r = Register::new(Value::from(5i64));
        let ts = r.transitions(&Value::from(5i64), &Register::read());
        assert_eq!(
            ts,
            vec![Transition::new(Value::from(5i64), Value::from(5i64))]
        );
    }

    #[test]
    fn write_updates_state() {
        let r = Register::default();
        let ts = r.transitions(&Value::from(0i64), &Register::write(Value::from(3i64)));
        assert_eq!(ts, vec![Transition::new(Value::Unit, Value::from(3i64))]);
    }

    #[test]
    fn unknown_method_and_missing_arg_are_rejected() {
        let r = Register::default();
        assert!(r
            .transitions(&Value::from(0i64), &Invocation::nullary("cas"))
            .is_empty());
        assert!(r
            .transitions(&Value::from(0i64), &Invocation::nullary("write"))
            .is_empty());
    }

    #[test]
    fn register_is_deterministic() {
        assert!(Register::default().is_deterministic());
        assert!(Register::new_bottom().is_deterministic());
    }

    #[test]
    fn bottom_register_starts_at_bottom() {
        assert_eq!(Register::new_bottom().initial_states(), vec![Value::Bottom]);
    }

    #[test]
    fn sample_invocations_include_reads_and_writes() {
        let invs = Register::default().sample_invocations();
        assert!(invs.contains(&Register::read()));
        assert!(invs.iter().any(|i| i.method() == "write"));
    }
}
