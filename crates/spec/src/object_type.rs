//! The [`ObjectType`] trait: sequential specifications as transition relations.

use crate::{Invocation, Value};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};
use std::fmt;

/// One entry of a transition relation: applying `invocation` in the source
/// state produced `response` and moved the object to `next_state`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transition {
    /// The response returned by the operation.
    pub response: Value,
    /// The state of the object after the operation.
    pub next_state: Value,
}

impl Transition {
    /// Convenience constructor.
    pub fn new(response: Value, next_state: Value) -> Self {
        Transition {
            response,
            next_state,
        }
    }
}

/// Errors produced when interrogating a sequential specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpecError {
    /// The invocation is not part of the type's `INV` set, or the supplied
    /// state is not a valid state for the type.
    InvalidInvocation {
        /// Name of the object type.
        type_name: String,
        /// The rejected invocation.
        invocation: Invocation,
    },
    /// `apply_deterministic` was called but the transition relation offers
    /// more than one outcome for this (state, invocation) pair.
    NotDeterministic {
        /// Name of the object type.
        type_name: String,
        /// Number of possible outcomes found.
        outcomes: usize,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::InvalidInvocation {
                type_name,
                invocation,
            } => write!(
                f,
                "invocation {invocation} is not valid for type {type_name}"
            ),
            SpecError::NotDeterministic {
                type_name,
                outcomes,
            } => write!(
                f,
                "type {type_name} has {outcomes} outcomes where exactly one was expected"
            ),
        }
    }
}

impl std::error::Error for SpecError {}

/// A sequential specification `(Q, Q0, INV, RES, δ)` of an object type
/// (paper, Section 3).
///
/// States are [`Value`]s; the transition relation is exposed through
/// [`ObjectType::transitions`], which returns every `(response, next_state)`
/// pair reachable by applying an invocation in a state.  A type is
/// *deterministic* when that set always has exactly one element, and has
/// *finite non-determinism* when it is always finite — which is guaranteed by
/// the `Vec` return type, so every `ObjectType` in this workspace has finite
/// non-determinism (an assumption several results of the paper require).
///
/// Implementations must be `Send + Sync` so specifications can be shared by
/// the multi-threaded runtime harness.
pub trait ObjectType: fmt::Debug + Send + Sync {
    /// A short human-readable name for the type, e.g. `"fetch&increment"`.
    fn name(&self) -> &str;

    /// The set `Q0` of initial states.  Must be non-empty.
    fn initial_states(&self) -> Vec<Value>;

    /// The transition relation restricted to `state` and `invocation`:
    /// all `(response, next_state)` pairs in `δ`.
    ///
    /// Returning an empty vector means the invocation is not enabled in that
    /// state (for total types this never happens).
    fn transitions(&self, state: &Value, invocation: &Invocation) -> Vec<Transition>;

    /// A finite, representative sample of invocations used by state-space
    /// explorers, the triviality checker and random workload generators.
    ///
    /// For types whose invocation set is infinite (e.g. `write(v)` for every
    /// value `v`) this returns a small representative subset.
    fn sample_invocations(&self) -> Vec<Invocation>;

    /// Whether the type is deterministic: every (reachable state, sampled
    /// invocation) pair has exactly one outcome.
    ///
    /// The default implementation explores states reachable from the initial
    /// states via sampled invocations, up to `1024` states, and checks each.
    fn is_deterministic(&self) -> bool {
        let mut seen: BTreeSet<Value> = BTreeSet::new();
        let mut queue: VecDeque<Value> = self.initial_states().into();
        if self.initial_states().len() != 1 {
            // Multiple initial states are a (benign) form of non-determinism
            // about the starting point, but determinism of δ is what matters
            // here, so we still explore from each initial state.
        }
        while let Some(state) = queue.pop_front() {
            if !seen.insert(state.clone()) {
                continue;
            }
            if seen.len() > 1024 {
                break;
            }
            for inv in self.sample_invocations() {
                let outs = self.transitions(&state, &inv);
                if outs.len() != 1 {
                    return false;
                }
                queue.push_back(outs[0].next_state.clone());
            }
        }
        true
    }

    /// Applies `invocation` in `state` assuming the type is deterministic.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidInvocation`] if the invocation is not
    /// enabled, and [`SpecError::NotDeterministic`] if more than one outcome
    /// exists.
    fn apply_deterministic(
        &self,
        state: &Value,
        invocation: &Invocation,
    ) -> Result<(Value, Value), SpecError> {
        let outs = self.transitions(state, invocation);
        match outs.len() {
            0 => Err(SpecError::InvalidInvocation {
                type_name: self.name().to_owned(),
                invocation: invocation.clone(),
            }),
            1 => {
                let t = outs.into_iter().next().expect("len checked");
                Ok((t.response, t.next_state))
            }
            n => Err(SpecError::NotDeterministic {
                type_name: self.name().to_owned(),
                outcomes: n,
            }),
        }
    }

    /// Whether `(state, invocation, response)` is allowed by `δ`, i.e. there
    /// is a transition with that response; if so, returns the possible next
    /// states.
    fn next_states_for_response(
        &self,
        state: &Value,
        invocation: &Invocation,
        response: &Value,
    ) -> Vec<Value> {
        self.transitions(state, invocation)
            .into_iter()
            .filter(|t| &t.response == response)
            .map(|t| t.next_state)
            .collect()
    }

    /// Enumerates the states reachable from `from` by applying sampled
    /// invocations, stopping after `limit` distinct states.
    ///
    /// Used by the triviality checker (Definition 13) and by explorers.
    fn reachable_states(&self, from: &Value, limit: usize) -> Vec<Value> {
        let mut seen: BTreeSet<Value> = BTreeSet::new();
        let mut order: Vec<Value> = Vec::new();
        let mut queue: VecDeque<Value> = VecDeque::new();
        queue.push_back(from.clone());
        while let Some(state) = queue.pop_front() {
            if !seen.insert(state.clone()) {
                continue;
            }
            order.push(state.clone());
            if order.len() >= limit {
                break;
            }
            for inv in self.sample_invocations() {
                for t in self.transitions(&state, &inv) {
                    if !seen.contains(&t.next_state) {
                        queue.push_back(t.next_state);
                    }
                }
            }
        }
        order
    }
}

/// Blanket helpers available on `dyn ObjectType` references via an extension
/// pattern are unnecessary: all helpers above are default trait methods so
/// they are directly available on trait objects.
#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny deterministic toy type used to exercise the default methods:
    /// a "mod-3 counter" with `inc() -> old value`.
    #[derive(Debug)]
    struct Mod3;

    impl ObjectType for Mod3 {
        fn name(&self) -> &str {
            "mod3"
        }
        fn initial_states(&self) -> Vec<Value> {
            vec![Value::from(0i64)]
        }
        fn transitions(&self, state: &Value, invocation: &Invocation) -> Vec<Transition> {
            let v = match state.as_int() {
                Some(v) => v,
                None => return Vec::new(),
            };
            match invocation.method() {
                "inc" => vec![Transition::new(Value::from(v), Value::from((v + 1) % 3))],
                _ => Vec::new(),
            }
        }
        fn sample_invocations(&self) -> Vec<Invocation> {
            vec![Invocation::nullary("inc")]
        }
    }

    /// A non-deterministic toy type: `flip()` may return either boolean.
    #[derive(Debug)]
    struct Coin;

    impl ObjectType for Coin {
        fn name(&self) -> &str {
            "coin"
        }
        fn initial_states(&self) -> Vec<Value> {
            vec![Value::Unit]
        }
        fn transitions(&self, _state: &Value, invocation: &Invocation) -> Vec<Transition> {
            match invocation.method() {
                "flip" => vec![
                    Transition::new(Value::Bool(false), Value::Unit),
                    Transition::new(Value::Bool(true), Value::Unit),
                ],
                _ => Vec::new(),
            }
        }
        fn sample_invocations(&self) -> Vec<Invocation> {
            vec![Invocation::nullary("flip")]
        }
    }

    #[test]
    fn deterministic_detection() {
        assert!(Mod3.is_deterministic());
        assert!(!Coin.is_deterministic());
    }

    #[test]
    fn apply_deterministic_ok_and_errors() {
        let (r, q) = Mod3
            .apply_deterministic(&Value::from(2i64), &Invocation::nullary("inc"))
            .unwrap();
        assert_eq!(r, Value::from(2i64));
        assert_eq!(q, Value::from(0i64));

        let err = Mod3
            .apply_deterministic(&Value::from(0i64), &Invocation::nullary("nope"))
            .unwrap_err();
        assert!(matches!(err, SpecError::InvalidInvocation { .. }));

        let err = Coin
            .apply_deterministic(&Value::Unit, &Invocation::nullary("flip"))
            .unwrap_err();
        assert!(matches!(
            err,
            SpecError::NotDeterministic { outcomes: 2, .. }
        ));
    }

    #[test]
    fn reachable_states_explores_cycle() {
        let states = Mod3.reachable_states(&Value::from(0i64), 10);
        assert_eq!(states.len(), 3);
    }

    #[test]
    fn next_states_for_response_filters() {
        let next = Coin.next_states_for_response(
            &Value::Unit,
            &Invocation::nullary("flip"),
            &Value::Bool(true),
        );
        assert_eq!(next, vec![Value::Unit]);
        let next = Mod3.next_states_for_response(
            &Value::from(1i64),
            &Invocation::nullary("inc"),
            &Value::from(0i64),
        );
        assert!(next.is_empty());
    }

    #[test]
    fn spec_error_display() {
        let e = SpecError::InvalidInvocation {
            type_name: "t".into(),
            invocation: Invocation::nullary("x"),
        };
        assert!(format!("{e}").contains("not valid"));
        let e = SpecError::NotDeterministic {
            type_name: "t".into(),
            outcomes: 3,
        };
        assert!(format!("{e}").contains("3 outcomes"));
    }
}
