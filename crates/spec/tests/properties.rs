//! Property-based tests (proptest) for the sequential object specifications:
//! on every reachable state, `apply_deterministic` is *total* (every
//! generated invocation is enabled) and *deterministic* (exactly one
//! transition, and re-applying it gives the identical outcome) for Register,
//! FetchIncrement, CompareAndSwap, TestAndSet, Queue and MaxRegister.

use evlin_spec::{
    CompareAndSwap, FetchIncrement, Invocation, MaxRegister, ObjectType, Queue, Register,
    TestAndSet, Value,
};
use proptest::prelude::*;

/// Walks `ty` from its initial state, deriving each step's invocation from
/// one code of `codes` via `invocation_for`, and checks at every step that
/// the transition relation has exactly one outcome, that
/// `apply_deterministic` accepts it, and that reapplication is reproducible.
fn check_total_deterministic_walk(
    ty: &dyn ObjectType,
    codes: &[usize],
    invocation_for: impl Fn(usize) -> Invocation,
) {
    let initial_states = ty.initial_states();
    prop_assert_eq!(
        initial_states.len(),
        1,
        "paper types have one initial state"
    );
    let mut state = initial_states[0].clone();
    for &code in codes {
        let invocation = invocation_for(code);
        let transitions = ty.transitions(&state, &invocation);
        prop_assert_eq!(
            transitions.len(),
            1,
            "{} must have exactly one outcome for {:?} in state {:?}",
            ty.name(),
            invocation,
            state
        );
        let (response, next) = ty
            .apply_deterministic(&state, &invocation)
            .unwrap_or_else(|e| panic!("{} not total on {invocation:?}: {e:?}", ty.name()));
        // Determinism also means reproducibility: the same (state,
        // invocation) pair yields the same (response, next state) again.
        let (response2, next2) = ty.apply_deterministic(&state, &invocation).unwrap();
        prop_assert_eq!(&response, &response2);
        prop_assert_eq!(&next, &next2);
        prop_assert_eq!(&transitions[0].response, &response);
        prop_assert_eq!(&transitions[0].next_state, &next);
        state = next;
    }
}

/// A small signed value derived from an unbounded code, so that walks revisit
/// states (making the determinism check meaningful) while still exercising
/// negative and positive arguments.
fn small_int(code: usize) -> i64 {
    (code % 9) as i64 - 4
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn register_is_total_and_deterministic(codes in prop::collection::vec(0usize..1000, 1..60)) {
        let ty = Register::new(Value::from(0i64));
        check_total_deterministic_walk(&ty, &codes, |code| {
            if code % 2 == 0 {
                Register::read()
            } else {
                Register::write(Value::from(small_int(code)))
            }
        });
    }

    #[test]
    fn fetch_increment_is_total_and_deterministic(codes in prop::collection::vec(0usize..1000, 1..60)) {
        let ty = FetchIncrement::new();
        check_total_deterministic_walk(&ty, &codes, |_| FetchIncrement::fetch_inc());
    }

    #[test]
    fn compare_and_swap_is_total_and_deterministic(codes in prop::collection::vec(0usize..1000, 1..60)) {
        let ty = CompareAndSwap::new(Value::from(0i64));
        check_total_deterministic_walk(&ty, &codes, |code| match code % 4 {
            0 => CompareAndSwap::read(),
            1 => CompareAndSwap::write(Value::from(small_int(code))),
            // Both hitting and missing cas: expected values from the same
            // small domain the writes draw from.
            _ => CompareAndSwap::cas(
                Value::from(small_int(code / 4)),
                Value::from(small_int(code / 16)),
            ),
        });
    }

    #[test]
    fn test_and_set_is_total_and_deterministic(codes in prop::collection::vec(0usize..1000, 1..60)) {
        let ty = TestAndSet::new();
        check_total_deterministic_walk(&ty, &codes, |_| TestAndSet::test_and_set());
    }

    #[test]
    fn queue_is_total_and_deterministic(codes in prop::collection::vec(0usize..1000, 1..60)) {
        let ty = Queue::new();
        check_total_deterministic_walk(&ty, &codes, |code| {
            // Bias towards dequeue so walks regularly hit the empty queue
            // (dequeue of the empty queue must be enabled and return ⊥).
            if code % 3 == 0 {
                Queue::enqueue(Value::from(small_int(code)))
            } else {
                Queue::dequeue()
            }
        });
    }

    #[test]
    fn max_register_is_total_and_deterministic(codes in prop::collection::vec(0usize..1000, 1..60)) {
        let ty = MaxRegister::new();
        check_total_deterministic_walk(&ty, &codes, |code| {
            if code % 2 == 0 {
                MaxRegister::read_max()
            } else {
                MaxRegister::write_max(small_int(code))
            }
        });
    }

    /// `is_deterministic` (the bounded decision procedure) agrees with the
    /// walk-level property on all six types.
    #[test]
    fn is_deterministic_agrees(_dummy in 0usize..2) {
        prop_assert!(Register::new(Value::from(0i64)).is_deterministic());
        prop_assert!(FetchIncrement::new().is_deterministic());
        prop_assert!(CompareAndSwap::new(Value::from(0i64)).is_deterministic());
        prop_assert!(TestAndSet::new().is_deterministic());
        prop_assert!(Queue::new().is_deterministic());
        prop_assert!(MaxRegister::new().is_deterministic());
    }
}

/// Semantic spot-checks that the walks above cannot see (they only check
/// shape, not values): each type's signature behaviour on a tiny script.
#[test]
fn signature_behaviours() {
    let fi = FetchIncrement::new();
    let s0 = fi.initial_states()[0].clone();
    let (r0, s1) = fi
        .apply_deterministic(&s0, &FetchIncrement::fetch_inc())
        .unwrap();
    let (r1, _) = fi
        .apply_deterministic(&s1, &FetchIncrement::fetch_inc())
        .unwrap();
    assert_eq!((r0, r1), (Value::from(0i64), Value::from(1i64)));

    let ts = TestAndSet::new();
    let s0 = ts.initial_states()[0].clone();
    let (first, s1) = ts
        .apply_deterministic(&s0, &TestAndSet::test_and_set())
        .unwrap();
    let (second, _) = ts
        .apply_deterministic(&s1, &TestAndSet::test_and_set())
        .unwrap();
    assert_eq!((first, second), (Value::from(0i64), Value::from(1i64)));

    let q = Queue::new();
    let s0 = q.initial_states()[0].clone();
    let (empty, _) = q.apply_deterministic(&s0, &Queue::dequeue()).unwrap();
    assert_eq!(empty, Value::Bottom);

    let mr = MaxRegister::new();
    let s0 = mr.initial_states()[0].clone();
    let (_, s1) = mr
        .apply_deterministic(&s0, &MaxRegister::write_max(5))
        .unwrap();
    let (_, s2) = mr
        .apply_deterministic(&s1, &MaxRegister::write_max(3))
        .unwrap();
    let (top, _) = mr
        .apply_deterministic(&s2, &MaxRegister::read_max())
        .unwrap();
    assert_eq!(top, Value::from(5i64));
}
