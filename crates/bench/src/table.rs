//! Plain-text tables for experiment output.

use std::fmt;

/// A titled table with a header row and data rows, rendered as
/// markdown-compatible plain text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Table title (the experiment id and claim).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with a title and headers.
    pub fn new<S: Into<String>>(title: S, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(row.into_iter().map(Into::into).collect());
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn column_widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                } else {
                    widths.push(cell.len());
                }
            }
        }
        widths
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        writeln!(f)?;
        let widths = self.column_widths();
        let render_row = |cells: &[String]| -> String {
            let mut out = String::from("|");
            for (i, w) in widths.iter().enumerate() {
                let empty = String::new();
                let cell = cells.get(i).unwrap_or(&empty);
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out
        };
        writeln!(f, "{}", render_row(&self.headers))?;
        let mut sep = String::from("|");
        for w in &widths {
            sep.push_str(&format!("{:-<width$}|", "", width = w + 2));
        }
        writeln!(f, "{sep}")?;
        for row in &self.rows {
            writeln!(f, "{}", render_row(row))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_markdown_like_table() {
        let mut t = Table::new("E0 — demo", &["name", "value"]);
        assert!(t.is_empty());
        t.push_row(["alpha", "1"]);
        t.push_row(["beta-longer", "22"]);
        assert_eq!(t.len(), 2);
        let text = format!("{t}");
        assert!(text.starts_with("## E0 — demo"));
        assert!(text.contains("| name        | value |"));
        assert!(text.contains("| beta-longer | 22    |"));
        assert!(text.lines().any(|l| l.starts_with("|---")));
    }

    #[test]
    fn tolerates_ragged_rows() {
        let mut t = Table::new("ragged", &["a"]);
        t.push_row(["1", "extra"]);
        let text = format!("{t}");
        assert!(text.contains("extra"));
    }
}
