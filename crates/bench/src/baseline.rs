//! Committed bench baselines and the perf-regression gate.
//!
//! The CI `bench-gate` job runs the timing-sensitive benches
//! (`checker_scaling`, `monitor_throughput`), captures their output and
//! compares the measured means against the baselines committed in
//! `BENCH_checker.json` (its top-level `"gate"` object), failing the build on
//! a regression beyond the tolerance.  The comparison logic lives here so it
//! can be unit-tested; the `bench_gate` binary is a thin driver.
//!
//! The workspace vendors its dependencies as minimal shims and has no JSON
//! crate, so this module includes a small recursive-descent JSON parser —
//! enough for the baseline file, not a general-purpose implementation.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", char::from(byte), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("expected `{literal}` at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    while let Some(&b) = bytes.get(*pos) {
        *pos += 1;
        match b {
            b'"' => {
                return String::from_utf8(out).map_err(|_| "invalid UTF-8 in string".to_string())
            }
            b'\\' => {
                let escape = bytes.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match escape {
                    b'"' | b'\\' | b'/' => out.push(escape),
                    b'n' => out.push(b'\n'),
                    b't' => out.push(b'\t'),
                    b'r' => out.push(b'\r'),
                    b'u' => {
                        // Baseline names are ASCII; decode BMP escapes only.
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("invalid \\u escape")?;
                        *pos += 4;
                        let ch = char::from_u32(hex).ok_or("invalid \\u code point")?;
                        out.extend_from_slice(ch.to_string().as_bytes());
                    }
                    _ => return Err(format!("unknown escape at byte {}", *pos - 1)),
                }
            }
            _ => out.push(b),
        }
    }
    Err("unterminated string".to_string())
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {}", *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// Bench-output parsing and the gate comparison
// ---------------------------------------------------------------------------

/// One measured benchmark: its line name and mean time in microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Bench line name, e.g. `checker/fi_linearizability/100000`.
    pub name: String,
    /// Mean per-iteration time in microseconds.
    pub mean_us: f64,
}

/// Extracts the measurements from the output of the offline criterion shim
/// (`bench <name>  <mean> <unit>/iter over N iters`); unrelated lines are
/// ignored.
pub fn parse_bench_output(text: &str) -> Vec<Measurement> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("bench ") else {
            continue;
        };
        let mut fields = rest.split_whitespace();
        let Some(name) = fields.next() else { continue };
        let Some(time) = fields.next() else { continue };
        let Some(unit) = fields.next() else { continue };
        let Ok(value) = time.parse::<f64>() else {
            continue;
        };
        let mean_us = match unit.trim_end_matches("/iter") {
            "ns" => value / 1e3,
            "µs" | "us" => value,
            "ms" => value * 1e3,
            "s" => value * 1e6,
            _ => continue,
        };
        out.push(Measurement {
            name: name.to_string(),
            mean_us,
        });
    }
    out
}

/// One committed gate baseline: a bench line name, its reference mean, and
/// an optional entry-specific tolerance overriding the gate's global one.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Bench line name, e.g. `explore/faults/k0/3`.
    pub name: String,
    /// Baseline mean per-iteration time in microseconds.
    pub mean_us: f64,
    /// Per-entry symmetric relative tolerance (e.g. `0.05` = ±5%); `None`
    /// falls back to the tolerance passed to [`compare`].
    pub tolerance: Option<f64>,
}

/// Reads the `"gate"` object of `BENCH_checker.json`: a flat map from bench
/// line name to either a baseline mean in microseconds, or an object
/// `{"mean_us": <number>, "tolerance": <ratio>}` for entries gated tighter
/// (or looser) than the global tolerance.
///
/// # Errors
///
/// Returns a message if the object is missing or malformed.
pub fn gate_baselines(baseline: &Json) -> Result<Vec<Baseline>, String> {
    let Some(Json::Obj(members)) = baseline.get("gate") else {
        return Err("baseline file has no top-level \"gate\" object".to_string());
    };
    let mut out = Vec::new();
    for (name, value) in members {
        let entry = match value {
            Json::Num(mean_us) => Baseline {
                name: name.clone(),
                mean_us: *mean_us,
                tolerance: None,
            },
            Json::Obj(_) => {
                let mean_us = value.get("mean_us").and_then(Json::as_f64).ok_or_else(|| {
                    format!("gate entry `{name}` has no numeric \"mean_us\" member")
                })?;
                let tolerance = match value.get("tolerance") {
                    None => None,
                    Some(t) => Some(t.as_f64().ok_or_else(|| {
                        format!("gate entry `{name}` has a non-numeric \"tolerance\"")
                    })?),
                };
                Baseline {
                    name: name.clone(),
                    mean_us,
                    tolerance,
                }
            }
            _ => return Err(format!("gate entry `{name}` is not a number or object")),
        };
        if entry.mean_us <= 0.0 {
            return Err(format!("gate entry `{name}` has a non-positive mean"));
        }
        if entry.tolerance.is_some_and(|t| t <= 0.0) {
            return Err(format!("gate entry `{name}` has a non-positive tolerance"));
        }
        out.push(entry);
    }
    Ok(out)
}

/// The gate's verdict on one baseline entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GateStatus {
    /// Within tolerance of the baseline.
    Ok,
    /// Faster than the baseline by more than the tolerance — not a failure,
    /// but the committed baseline is stale.
    Improved,
    /// Slower than the baseline by more than the tolerance.
    Regressed,
    /// The bench run produced no measurement with this name.
    Missing,
}

impl fmt::Display for GateStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateStatus::Ok => "ok",
            GateStatus::Improved => "improved",
            GateStatus::Regressed => "REGRESSED",
            GateStatus::Missing => "MISSING",
        };
        f.write_str(s)
    }
}

/// One row of the gate report.
#[derive(Debug, Clone, PartialEq)]
pub struct GateResult {
    /// Bench line name.
    pub name: String,
    /// Committed baseline mean (µs).
    pub baseline_us: f64,
    /// Measured mean (µs), if the bench ran.
    pub measured_us: Option<f64>,
    /// The tolerance this entry was judged against (per-entry override or
    /// the gate's global one).
    pub tolerance: f64,
    /// The verdict.
    pub status: GateStatus,
}

impl GateResult {
    /// `measured / baseline`, when measured.
    pub fn ratio(&self) -> Option<f64> {
        self.measured_us.map(|m| m / self.baseline_us)
    }
}

/// Compares measurements against baselines with a symmetric relative
/// `tolerance` (0.30 = ±30%); a [`Baseline::tolerance`] overrides it for
/// that entry.  Only [`GateStatus::Regressed`] and [`GateStatus::Missing`]
/// should fail a build.
pub fn compare(
    baselines: &[Baseline],
    measured: &[Measurement],
    tolerance: f64,
) -> Vec<GateResult> {
    baselines
        .iter()
        .map(|baseline| {
            let entry_tolerance = baseline.tolerance.unwrap_or(tolerance);
            let found = measured.iter().find(|m| m.name == baseline.name);
            let status = match found {
                None => GateStatus::Missing,
                Some(m) if m.mean_us > baseline.mean_us * (1.0 + entry_tolerance) => {
                    GateStatus::Regressed
                }
                Some(m) if m.mean_us < baseline.mean_us / (1.0 + entry_tolerance) => {
                    GateStatus::Improved
                }
                Some(_) => GateStatus::Ok,
            };
            GateResult {
                name: baseline.name.clone(),
                baseline_us: baseline.mean_us,
                measured_us: found.map(|m| m.mean_us),
                tolerance: entry_tolerance,
                status,
            }
        })
        .collect()
}

/// Whether any result should fail the build.
pub fn gate_fails(results: &[GateResult]) -> bool {
    results
        .iter()
        .any(|r| matches!(r.status, GateStatus::Regressed | GateStatus::Missing))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_committed_baseline_file() {
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_checker.json"
        ))
        .expect("baseline file exists");
        let json = parse(&text).expect("baseline file parses");
        let baselines = gate_baselines(&json).expect("gate section present");
        assert!(!baselines.is_empty());
        assert!(baselines.iter().all(|b| b.mean_us > 0.0));
        // The k=0 fault-enumeration entry carries the tightened per-entry
        // tolerance that holds its overhead to ≤5%.
        let k0 = baselines
            .iter()
            .find(|b| b.name == "explore/faults/k0/3")
            .expect("fault k0 gate entry");
        assert_eq!(k0.tolerance, Some(0.05));
    }

    #[test]
    fn parser_handles_the_usual_shapes() {
        let json = parse(r#"{"a": [1, 2.5e1, -3], "b": {"c": null, "d": "x\n"}, "e": true}"#)
            .expect("valid json");
        assert_eq!(
            json.get("a"),
            Some(&Json::Arr(vec![
                Json::Num(1.0),
                Json::Num(25.0),
                Json::Num(-3.0),
            ]))
        );
        assert_eq!(json.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(
            json.get("b").unwrap().get("d"),
            Some(&Json::Str("x\n".to_string()))
        );
        assert_eq!(json.get("e"), Some(&Json::Bool(true)));
        assert!(parse("{\"unterminated\": ").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn bench_output_lines_are_extracted_with_unit_conversion() {
        let text = "\
   Compiling evlin-bench v0.1.0
bench checker/fi_linearizability/1000                          195.18 µs/iter over 1537 iters  (5123456 elem/s)
bench checker/fi_linearizability/10000                          1.725 ms/iter over 174 iters
bench monitor/ingest/100000                                   250.0 ns/iter over 9 iters
some unrelated line
";
        let measured = parse_bench_output(text);
        assert_eq!(measured.len(), 3);
        assert_eq!(measured[0].name, "checker/fi_linearizability/1000");
        assert!((measured[0].mean_us - 195.18).abs() < 1e-9);
        assert!((measured[1].mean_us - 1725.0).abs() < 1e-9);
        assert!((measured[2].mean_us - 0.25).abs() < 1e-9);
    }

    #[test]
    fn gate_statuses_cover_all_outcomes() {
        let entry = |name: &str| Baseline {
            name: name.into(),
            mean_us: 100.0,
            tolerance: None,
        };
        let baselines = vec![entry("a"), entry("b"), entry("c"), entry("d")];
        let measured = vec![
            Measurement {
                name: "a".into(),
                mean_us: 120.0, // within ±30%
            },
            Measurement {
                name: "b".into(),
                mean_us: 131.0, // regression
            },
            Measurement {
                name: "c".into(),
                mean_us: 50.0, // improvement
            },
        ];
        let results = compare(&baselines, &measured, 0.30);
        assert_eq!(results[0].status, GateStatus::Ok);
        assert_eq!(results[1].status, GateStatus::Regressed);
        assert_eq!(results[2].status, GateStatus::Improved);
        assert_eq!(results[3].status, GateStatus::Missing);
        assert!(results.iter().all(|r| (r.tolerance - 0.30).abs() < 1e-12));
        assert!(gate_fails(&results));
        assert!(!gate_fails(&results[..1]));
        assert!(!gate_fails(&results[2..3]));
    }

    #[test]
    fn per_entry_tolerance_overrides_the_global_one() {
        let json = parse(
            r#"{"gate": {
                "plain": 100.0,
                "tight": {"mean_us": 100.0, "tolerance": 0.05},
                "detailed": {"mean_us": 200.0}
            }}"#,
        )
        .expect("valid json");
        let baselines = gate_baselines(&json).expect("gate parses");
        assert_eq!(baselines[0].tolerance, None);
        assert_eq!(baselines[1].tolerance, Some(0.05));
        assert_eq!(
            baselines[2],
            Baseline {
                name: "detailed".into(),
                mean_us: 200.0,
                tolerance: None,
            }
        );

        // 110 µs: inside the global ±30%, outside the tight entry's ±5%.
        let measured = vec![
            Measurement {
                name: "plain".into(),
                mean_us: 110.0,
            },
            Measurement {
                name: "tight".into(),
                mean_us: 110.0,
            },
            Measurement {
                name: "detailed".into(),
                mean_us: 200.0,
            },
        ];
        let results = compare(&baselines, &measured, 0.30);
        assert_eq!(results[0].status, GateStatus::Ok);
        assert_eq!(results[1].status, GateStatus::Regressed);
        assert!((results[1].tolerance - 0.05).abs() < 1e-12);
        assert_eq!(results[2].status, GateStatus::Ok);
        assert!(gate_fails(&results));

        // Malformed per-entry objects are rejected, not defaulted.
        assert!(gate_baselines(&parse(r#"{"gate": {"x": {"tolerance": 0.1}}}"#).unwrap()).is_err());
        assert!(gate_baselines(
            &parse(r#"{"gate": {"x": {"mean_us": 1.0, "tolerance": "huge"}}}"#).unwrap()
        )
        .is_err());
        assert!(gate_baselines(&parse(r#"{"gate": {"x": true}}"#).unwrap()).is_err());
        assert!(gate_baselines(
            &parse(r#"{"gate": {"x": {"mean_us": 1.0, "tolerance": 0}}}"#).unwrap()
        )
        .is_err());
    }
}
