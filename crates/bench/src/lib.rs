//! # evlin-bench
//!
//! Experiment drivers and benchmark support for the `evlin` workspace.
//!
//! The paper (Guerraoui & Ruppert, PODC 2014) has no tables or figures of its
//! own; EXPERIMENTS.md defines one experiment per theorem / proposition /
//! counterexample plus the introduction's motivating scenario, and this crate
//! regenerates every one of them:
//!
//! * the `experiments` binary (`cargo run -p evlin-bench --bin experiments --
//!   all`) prints every experiment table;
//! * the Criterion benches (`cargo bench -p evlin-bench`) measure the
//!   timing-sensitive experiments (counter contention, consensus
//!   stabilization, checker scaling, online-monitor throughput, Figure-1
//!   overhead, stability search);
//! * the `bench_gate` binary compares captured bench output against the
//!   baselines committed in `BENCH_checker.json` (see [`baseline`]) — the
//!   CI perf-regression gate.
//!
//! Each experiment lives in its own module under [`experiments`] and returns
//! [`table::Table`]s so the binary, the tests and EXPERIMENTS.md all agree on
//! the numbers.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod experiments;
pub mod histories;
pub mod table;

pub use table::Table;
