//! The experiment driver: regenerates every table of EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! experiments [--quick] [e1 | e2 | … | e10 | all]…
//! ```
//!
//! With no experiment argument, every experiment is run.  `--quick` shrinks
//! workloads so the whole suite finishes in well under a minute (the numbers
//! in EXPERIMENTS.md come from a full run).

use evlin_bench::experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "-q");
    let requested: Vec<&String> = args.iter().filter(|a| !a.starts_with('-')).collect();

    let ids: Vec<String> = if requested.is_empty() {
        vec!["all".to_string()]
    } else {
        requested.iter().map(|s| s.to_string()).collect()
    };

    for id in &ids {
        match experiments::run(id, quick) {
            Some(tables) => {
                for table in tables {
                    println!("{table}");
                }
            }
            None => {
                eprintln!(
                    "unknown experiment id `{id}`; known ids: {} or `all`",
                    experiments::IDS.join(", ")
                );
                std::process::exit(2);
            }
        }
    }
}
