//! The CI perf-regression gate.
//!
//! Usage:
//!
//! ```text
//! bench_gate [--baseline BENCH_checker.json] [--tolerance 0.30]
//!            [--report bench_gate_report.json] BENCH_OUTPUT.txt...
//! ```
//!
//! Reads one or more captured bench outputs (the offline criterion shim's
//! `bench <name> <mean>/iter ...` lines), compares every entry of the
//! baseline file's `"gate"` object against the measured means, prints a
//! verdict table (and optionally a machine-readable report for the CI
//! artifact), and exits non-zero when any entry regressed beyond the
//! tolerance or was missing from the run.

use evlin_bench::baseline::{self, Measurement};
use std::process::ExitCode;

struct Args {
    baseline_path: String,
    tolerance: f64,
    report_path: Option<String>,
    outputs: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        baseline_path: "BENCH_checker.json".to_string(),
        tolerance: 0.30,
        report_path: None,
        outputs: Vec::new(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--baseline" => {
                args.baseline_path = iter.next().ok_or("--baseline needs a path")?;
            }
            "--tolerance" => {
                args.tolerance = iter
                    .next()
                    .ok_or("--tolerance needs a value")?
                    .parse()
                    .map_err(|e| format!("invalid tolerance: {e}"))?;
            }
            "--report" => {
                args.report_path = Some(iter.next().ok_or("--report needs a path")?);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown flag `{other}`"));
            }
            other => args.outputs.push(other.to_string()),
        }
    }
    if args.outputs.is_empty() {
        return Err("no bench output files given".to_string());
    }
    Ok(args)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn write_report(
    path: &str,
    results: &[baseline::GateResult],
    tolerance: f64,
) -> std::io::Result<()> {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"tolerance\": {tolerance},\n"));
    out.push_str(&format!(
        "  \"failed\": {},\n  \"results\": [\n",
        baseline::gate_fails(results)
    ));
    for (i, r) in results.iter().enumerate() {
        let measured = r
            .measured_us
            .map(|m| format!("{m}"))
            .unwrap_or_else(|| "null".to_string());
        let ratio = r
            .ratio()
            .map(|x| format!("{x:.4}"))
            .unwrap_or_else(|| "null".to_string());
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_us\": {}, \"measured_us\": {}, \
             \"ratio\": {}, \"tolerance\": {}, \"status\": \"{}\"}}{}\n",
            json_escape(&r.name),
            r.baseline_us,
            measured,
            ratio,
            r.tolerance,
            r.status,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

fn run() -> Result<bool, String> {
    let args = parse_args()?;
    let baseline_text = std::fs::read_to_string(&args.baseline_path)
        .map_err(|e| format!("cannot read {}: {e}", args.baseline_path))?;
    let baseline_json = baseline::parse(&baseline_text)
        .map_err(|e| format!("{} is not valid JSON: {e}", args.baseline_path))?;
    let baselines = baseline::gate_baselines(&baseline_json)?;

    let mut measured: Vec<Measurement> = Vec::new();
    for path in &args.outputs {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        measured.extend(baseline::parse_bench_output(&text));
    }
    println!(
        "bench_gate: {} baseline entries, {} measurements, tolerance ±{:.0}%",
        baselines.len(),
        measured.len(),
        args.tolerance * 100.0
    );

    let results = baseline::compare(&baselines, &measured, args.tolerance);
    for r in &results {
        let measured = r
            .measured_us
            .map(|m| format!("{m:>12.2} µs"))
            .unwrap_or_else(|| "           — ".to_string());
        let ratio = r
            .ratio()
            .map(|x| format!("{x:>5.2}x"))
            .unwrap_or_else(|| "    — ".to_string());
        println!(
            "  {:<55} baseline {:>12.2} µs   measured {measured}   {ratio}   ±{:.0}%   {}",
            r.name,
            r.baseline_us,
            r.tolerance * 100.0,
            r.status
        );
    }
    if let Some(path) = &args.report_path {
        write_report(path, &results, args.tolerance)
            .map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("bench_gate: report written to {path}");
    }
    let failed = baseline::gate_fails(&results);
    if failed {
        println!("bench_gate: FAILED — at least one benchmark regressed or was missing");
    } else {
        println!("bench_gate: ok");
    }
    Ok(failed)
}

fn main() -> ExitCode {
    match run() {
        Ok(false) => ExitCode::SUCCESS,
        Ok(true) => ExitCode::from(1),
        Err(message) => {
            eprintln!("bench_gate: {message}");
            eprintln!(
                "usage: bench_gate [--baseline BENCH_checker.json] [--tolerance 0.30] \
                 [--report OUT.json] BENCH_OUTPUT.txt..."
            );
            ExitCode::from(2)
        }
    }
}
