//! E3 — locality (Lemmas 7–8, Proposition 9) and its failure with unboundedly
//! many objects.
//!
//! The paper's counterexample uses registers `R1, R2, …`: process `p` writes
//! 1 to `R_i`, process `q` then reads 0 from `R_i`.  Each projection `H|R_i`
//! stabilizes after its own constant number of events, but the global
//! stabilization index must cover the last stale read, so it grows linearly
//! with the number of registers — with infinitely many registers no single
//! `t` exists.  The experiment sweeps the number of registers and tabulates
//! per-object versus composed global stabilization.

use crate::Table;
use evlin_checker::locality;
use evlin_history::{HistoryBuilder, ObjectUniverse, ProcessId};
use evlin_spec::{Register, Value};

/// Builds the truncated counterexample over `k` registers and its universe.
pub fn counterexample(k: usize) -> (ObjectUniverse, evlin_history::History) {
    let mut universe = ObjectUniverse::new();
    let registers: Vec<_> = (0..k)
        .map(|_| universe.add_object(Register::new(Value::from(0i64))))
        .collect();
    let mut b = HistoryBuilder::new();
    for &reg in &registers {
        b = b
            .complete(
                ProcessId(0),
                reg,
                Register::write(Value::from(1i64)),
                Value::Unit,
            )
            .complete(ProcessId(1), reg, Register::read(), Value::from(0i64));
    }
    (universe, b.build())
}

/// Runs experiment E3 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let max_k = if quick { 5 } else { 12 };
    let mut table = Table::new(
        "E3 — locality: per-object vs composed stabilization on the infinite-register counterexample",
        &[
            "registers",
            "history events",
            "max per-object t_o",
            "all projections weakly consistent",
            "composed global t",
            "global t / events",
        ],
    );
    for k in 1..=max_k {
        let (universe, history) = counterexample(k);
        let reports = locality::per_object_reports(&history, &universe);
        let max_per_object = reports
            .iter()
            .map(|r| r.min_stabilization.unwrap_or(usize::MAX))
            .max()
            .unwrap_or(0);
        let composed = locality::compose_stabilization(&reports).unwrap_or(usize::MAX);
        let all_wc = locality::all_projections_weakly_consistent(&history, &universe);
        table.push_row([
            k.to_string(),
            history.len().to_string(),
            max_per_object.to_string(),
            all_wc.to_string(),
            composed.to_string(),
            format!("{:.2}", composed as f64 / history.len() as f64),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_object_stabilization_is_constant_but_global_grows() {
        let tables = run(true);
        let rows = &tables[0].rows;
        assert!(rows.len() >= 3);
        // Per-object t_o is bounded by a constant (4 events per register)…
        for row in rows {
            let per_object: usize = row[2].parse().unwrap();
            assert!(per_object <= 4);
            assert_eq!(row[3], "true");
        }
        // …while the composed global index strictly grows with the number of
        // registers.
        let composed: Vec<usize> = rows.iter().map(|r| r[4].parse().unwrap()).collect();
        for w in composed.windows(2) {
            assert!(w[1] > w[0], "global stabilization must grow: {composed:?}");
        }
    }
}
