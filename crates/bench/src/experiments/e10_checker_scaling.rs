//! E10 — checker scalability (methodological experiment).
//!
//! The executable-theory claims of this repository are only as good as the
//! decision procedures backing them.  This experiment measures the generic
//! constrained-linearization search against history length and concurrency,
//! and the specialized fetch&increment checker against much larger histories,
//! and cross-checks that the two agree wherever both are applicable.

use crate::Table;
use evlin_checker::kernel::{self, SearchLimits};
use evlin_checker::{fi, linearizability, parallel, t_linearizability, Linearizability};
use evlin_history::generator::{concurrentize, random_sequential_legal, WorkloadSpec};
use evlin_history::ObjectUniverse;
use evlin_runtime::counter::{CasCounter, ShardedCounter};
use evlin_runtime::harness::{run_counter_workload, HarnessOptions};
use evlin_spec::{FetchIncrement, Register, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// Runs experiment E10 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let mut generic = Table::new(
        "E10 — generic linearizability checker on random linearizable histories",
        &[
            "operations",
            "processes",
            "histories",
            "all accepted",
            "mean check time (µs)",
            "peak arena KiB",
        ],
    );
    let sizes: Vec<usize> = if quick {
        vec![6, 10, 14]
    } else {
        vec![6, 10, 14, 18, 22]
    };
    let histories_per_size = if quick { 5 } else { 20 };
    for &ops in &sizes {
        let mut universe = ObjectUniverse::new();
        universe.add_object(Register::new(Value::from(0i64)));
        universe.add_object(FetchIncrement::new());
        let mut all_ok = true;
        let mut total = std::time::Duration::ZERO;
        let mut peak_arena = 0usize;
        for seed in 0..histories_per_size {
            let mut rng = StdRng::seed_from_u64(seed as u64);
            let seq = random_sequential_legal(
                &universe,
                &WorkloadSpec {
                    processes: 3,
                    operations: ops,
                },
                &mut rng,
            );
            let conc = concurrentize(&seq, 2, &mut rng);
            let start = Instant::now();
            let (result, stats) = evlin_checker::kernel::check_local_with_stats(
                &linearizability::Linearizability,
                &conc,
                &universe,
                evlin_checker::kernel::SearchLimits::default(),
            );
            total += start.elapsed();
            all_ok &= result.is_yes();
            peak_arena = peak_arena.max(stats.arena_bytes);
        }
        generic.push_row([
            ops.to_string(),
            "3".to_string(),
            histories_per_size.to_string(),
            all_ok.to_string(),
            format!(
                "{:.1}",
                total.as_micros() as f64 / histories_per_size as f64
            ),
            format!("{:.1}", peak_arena as f64 / 1024.0),
        ]);
    }

    let mut specialized = Table::new(
        "E10b — specialized fetch&increment checker on recorded multi-threaded histories",
        &[
            "counter",
            "operations",
            "check",
            "verdict / min t",
            "time (ms)",
        ],
    );
    let record_ops = if quick { 1_000 } else { 20_000 };
    {
        let counter = CasCounter::new();
        let run = run_counter_workload(
            &counter,
            HarnessOptions {
                threads: 4,
                ops_per_thread: record_ops,
                record_history: true,
            },
        );
        let history = run.history.expect("recording enabled");
        let start = Instant::now();
        let lin = fi::is_linearizable(&history, 0).unwrap();
        let elapsed = start.elapsed();
        specialized.push_row([
            "cas-loop".to_string(),
            run.total_ops.to_string(),
            "linearizability".to_string(),
            lin.to_string(),
            format!("{:.2}", elapsed.as_secs_f64() * 1e3),
        ]);
    }
    {
        let counter = ShardedCounter::new(4, 64);
        let run = run_counter_workload(
            &counter,
            HarnessOptions {
                threads: 4,
                ops_per_thread: record_ops,
                record_history: true,
            },
        );
        let history = run.history.expect("recording enabled");
        let start = Instant::now();
        let t = fi::min_stabilization(&history, 0).unwrap();
        let elapsed = start.elapsed();
        specialized.push_row([
            "sharded-eventual".to_string(),
            run.total_ops.to_string(),
            "min stabilization".to_string(),
            t.to_string(),
            format!("{:.2}", elapsed.as_secs_f64() * 1e3),
        ]);
    }

    // Agreement between the two checkers on small fetch&increment histories.
    let mut agreement = Table::new(
        "E10c — generic vs specialized checker agreement on small fetch&inc histories",
        &[
            "histories",
            "linearizability agreements",
            "stabilization agreements",
        ],
    );
    {
        let mut universe = ObjectUniverse::new();
        universe.add_object(FetchIncrement::new());
        let count = if quick { 20 } else { 100 };
        let mut lin_agree = 0usize;
        let mut stab_agree = 0usize;
        for seed in 0..count {
            let mut rng = StdRng::seed_from_u64(seed as u64);
            let seq = random_sequential_legal(
                &universe,
                &WorkloadSpec {
                    processes: 2,
                    operations: 6,
                },
                &mut rng,
            );
            let conc = concurrentize(&seq, 2, &mut rng);
            let a = linearizability::is_linearizable(&conc, &universe);
            let b = fi::is_linearizable(&conc, 0).unwrap();
            if a == b {
                lin_agree += 1;
            }
            let ta = t_linearizability::min_stabilization(&conc, &universe, None);
            let tb = fi::min_stabilization(&conc, 0).ok();
            if ta == tb {
                stab_agree += 1;
            }
        }
        agreement.push_row([
            count.to_string(),
            lin_agree.to_string(),
            stab_agree.to_string(),
        ]);
    }

    // Batched checking: one core vs all cores on the same batch.  Identical
    // verdicts are asserted; the speedup column is the point of the table.
    let mut batched = Table::new(
        "E10d — batched linearizability checking, sequential vs all cores",
        &[
            "batch size",
            "ops/history",
            "threads",
            "seq (ms)",
            "par (ms)",
            "speedup",
            "verdicts agree",
        ],
    );
    {
        let mut universe = ObjectUniverse::new();
        universe.add_object(Register::new(Value::from(0i64)));
        universe.add_object(FetchIncrement::new());
        let (batch_size, ops) = if quick { (16, 10) } else { (64, 14) };
        let batch: Vec<evlin_history::History> = (0..batch_size)
            .map(|seed| {
                let mut rng = StdRng::seed_from_u64(seed as u64);
                let seq = random_sequential_legal(
                    &universe,
                    &WorkloadSpec {
                        processes: 3,
                        operations: ops,
                    },
                    &mut rng,
                );
                concurrentize(&seq, 3, &mut rng)
            })
            .collect();
        let start = Instant::now();
        let sequential = parallel::check_histories(&batch, &universe);
        let seq_elapsed = start.elapsed();
        let start = Instant::now();
        let parallel_verdicts = parallel::check_histories_par(&batch, &universe);
        let par_elapsed = start.elapsed();
        batched.push_row([
            batch_size.to_string(),
            ops.to_string(),
            rayon::current_num_threads().to_string(),
            format!("{:.2}", seq_elapsed.as_secs_f64() * 1e3),
            format!("{:.2}", par_elapsed.as_secs_f64() * 1e3),
            format!(
                "{:.2}×",
                seq_elapsed.as_secs_f64() / par_elapsed.as_secs_f64().max(f64::EPSILON)
            ),
            (sequential == parallel_verdicts).to_string(),
        ]);
    }

    // Locality pre-pass: the same multi-object histories checked whole vs
    // decomposed per object.  Two families: "easy" random linearizable
    // histories (a greedy witness exists, so the pre-pass can only add
    // overhead) and "hard" histories whose every projection is refuted (the
    // whole-history search must exhaust the *product* of the per-object
    // subset spaces, the decomposed one only the sum — the algorithmic
    // payoff of the Herlihy–Wing locality theorem).
    let mut locality = Table::new(
        "E10e — kernel locality pre-pass vs whole-history search on multi-object histories",
        &[
            "family",
            "objects",
            "ops/history",
            "histories",
            "global (ms)",
            "local (ms)",
            "speedup",
            "verdicts agree",
        ],
    );
    {
        let limits = SearchLimits::default();
        let mut push_family = |name: &str,
                               objects: usize,
                               universe: &ObjectUniverse,
                               batch: &[evlin_history::History]| {
            let start = Instant::now();
            let global: Vec<bool> = batch
                .iter()
                .map(|h| kernel::check(&Linearizability, h, universe, limits).is_yes())
                .collect();
            let global_elapsed = start.elapsed();
            let start = Instant::now();
            let local: Vec<bool> = batch
                .iter()
                .map(|h| kernel::check_local(&Linearizability, h, universe, limits).is_yes())
                .collect();
            let local_elapsed = start.elapsed();
            locality.push_row([
                name.to_string(),
                objects.to_string(),
                batch.first().map(|h| h.len() / 2).unwrap_or(0).to_string(),
                batch.len().to_string(),
                format!("{:.2}", global_elapsed.as_secs_f64() * 1e3),
                format!("{:.2}", local_elapsed.as_secs_f64() * 1e3),
                format!(
                    "{:.2}x",
                    global_elapsed.as_secs_f64() / local_elapsed.as_secs_f64().max(f64::EPSILON)
                ),
                (global == local).to_string(),
            ]);
        };
        let object_counts: Vec<usize> = if quick { vec![2, 4] } else { vec![2, 4, 6] };
        let histories_per = if quick { 6 } else { 20 };
        for &objects in &object_counts {
            let universe = crate::histories::mixed_universe(objects);
            let batch: Vec<evlin_history::History> = (0..histories_per)
                .map(|seed| {
                    crate::histories::random_linearizable(&universe, 5 * objects, seed as u64)
                })
                .collect();
            push_family("easy (random linearizable)", objects, &universe, &batch);
        }
        let broken_counts: Vec<usize> = if quick { vec![2, 3] } else { vec![2, 3, 4] };
        for &objects in &broken_counts {
            let (universe, history) = crate::histories::broken_per_object(objects, 3);
            push_family(
                "hard (every object refuted)",
                objects,
                &universe,
                &[history],
            );
        }
    }

    // Reduced exploration feeding the batched checker: the engine's
    // sleep-set + symmetry strategies shrink the terminal-history batch the
    // checker has to grind through, with identical batch verdicts — the
    // exploration-side counterpart of the locality decomposition above.
    let mut reduced = Table::new(
        "E10f — reduction engine feeding the batched checker (cas fetch&inc, 2 processes)",
        &[
            "strategy",
            "states visited",
            "distinct terminal histories",
            "check time (ms)",
            "all linearizable",
        ],
    );
    {
        use evlin_algorithms::CasFetchInc;
        use evlin_sim::engine::{self, EngineOptions, ExploreOptions, Reduction};
        use evlin_sim::workload::Workload;

        let mut universe = ObjectUniverse::new();
        universe.add_object(FetchIncrement::new());
        let implementation = CasFetchInc::new(2);
        let ops = if quick { 2 } else { 3 };
        let workload = Workload::uniform(2, FetchIncrement::fetch_inc(), ops);
        let mut verdicts: Vec<bool> = Vec::new();
        for (label, reduction) in [
            ("none", Reduction::None),
            ("sleep-set", Reduction::SleepSet),
            ("sleep-set+symmetry", Reduction::SleepSetSymmetry),
        ] {
            let options = EngineOptions {
                limits: ExploreOptions {
                    max_depth: 6 * ops,
                    max_configs: 4_000_000,
                },
                reduction,
                ..EngineOptions::default()
            };
            let mut batch: Vec<evlin_history::History> = Vec::new();
            let mut seen = std::collections::BTreeSet::new();
            let max_depth = options.limits.max_depth;
            let stats = engine::explore(&implementation, &workload, &options, |c, d| {
                if c.enabled_processes().is_empty() || d >= max_depth {
                    let h = c.history().clone();
                    if seen.insert(format!("{h:?}")) {
                        batch.push(h);
                    }
                }
                evlin_sim::engine::Visit::Continue
            });
            // Truncated explorations are shape-sensitive and must never be
            // compared across strategies.
            assert!(!stats.truncated, "E10f exploration truncated ({label})");
            let start = Instant::now();
            let all_lin = parallel::check_histories_par(&batch, &universe)
                .into_iter()
                .all(|ok| ok);
            let elapsed = start.elapsed();
            verdicts.push(all_lin);
            reduced.push_row([
                label.to_string(),
                stats.visited.to_string(),
                batch.len().to_string(),
                format!("{:.2}", elapsed.as_secs_f64() * 1e3),
                all_lin.to_string(),
            ]);
        }
        assert!(
            verdicts.windows(2).all(|w| w[0] == w[1]),
            "reduction changed a batch verdict"
        );
    }

    vec![generic, specialized, agreement, batched, locality, reduced]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkers_accept_linearizable_inputs_and_agree() {
        let tables = run(true);
        for row in &tables[0].rows {
            assert_eq!(
                row[3], "true",
                "generated linearizable histories must be accepted"
            );
        }
        // The CAS counter's recorded history is linearizable.
        assert_eq!(tables[1].rows[0][3], "true");
        // Full agreement between the generic and specialized checkers.
        let row = &tables[2].rows[0];
        assert_eq!(row[1], row[0]);
        assert_eq!(row[2], row[0]);
        // Sequential and parallel batch verdicts agree.
        assert_eq!(tables[3].rows[0][6], "true");
        // Locality decomposition never changes a verdict.
        for row in &tables[4].rows {
            assert_eq!(row[7], "true", "locality verdicts must agree: {row:?}");
        }
        // The reduction engine shrinks the batch without changing verdicts.
        let reduced = &tables[5];
        assert_eq!(reduced.rows.len(), 3);
        for row in &reduced.rows {
            assert_eq!(row[4], "true", "cas fetch&inc stays linearizable: {row:?}");
        }
        let raw: usize = reduced.rows[0][1].parse().unwrap();
        let combined: usize = reduced.rows[2][1].parse().unwrap();
        assert!(combined < raw, "reduction must shrink the exploration");
    }
}
