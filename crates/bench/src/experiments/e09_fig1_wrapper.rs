//! E9 — Proposition 11 / Figure 1: registers buy back weak consistency.
//!
//! A fetch&increment implementation whose warm-up responses are
//! out-of-left-field garbage satisfies the liveness half of eventual
//! linearizability but not the safety half.  Wrapping it in the Figure 1
//! announce-and-verify construction restores weak consistency without
//! breaking the liveness half; wrapping an already linearizable
//! implementation leaves it linearizable.  The experiment also reports the
//! wrapper's overhead in simulator steps per operation.

use crate::Table;
use evlin_algorithms::fig1::Fig1Wrapper;
use evlin_algorithms::CasFetchInc;
use evlin_checker::{eventual, weak_consistency};
use evlin_history::{ObjectUniverse, ProcessId};
use evlin_sim::base::BaseObject;
use evlin_sim::prelude::*;
use evlin_sim::program::{Implementation, ProcessLogic};
use evlin_spec::{FetchIncrement, Invocation, Value};
use std::sync::Arc;

/// A fetch&increment whose first `garbage` operations (globally, by slot)
/// return the nonsense value 999 — `t`-linearizable for some `t` but not
/// weakly consistent.
#[derive(Debug)]
pub struct GarbagePrefixFetchInc {
    inner: CasFetchInc,
    garbage: i64,
}

impl GarbagePrefixFetchInc {
    /// Creates the implementation for `processes` processes with the given
    /// number of garbage responses.
    pub fn new(processes: usize, garbage: i64) -> Self {
        GarbagePrefixFetchInc {
            inner: CasFetchInc::new(processes),
            garbage,
        }
    }
}

#[derive(Debug)]
struct GarbageLogic {
    inner: Box<dyn ProcessLogic>,
    garbage: i64,
}

impl Implementation for GarbagePrefixFetchInc {
    fn name(&self) -> String {
        format!(
            "garbage-prefix fetch&increment ({} garbage ops)",
            self.garbage
        )
    }
    fn processes(&self) -> usize {
        self.inner.processes()
    }
    fn initial_base_objects(&self) -> Vec<Box<dyn BaseObject>> {
        self.inner.initial_base_objects()
    }
    fn new_process(&self, p: ProcessId) -> Box<dyn ProcessLogic> {
        Box::new(GarbageLogic {
            inner: self.inner.new_process(p),
            garbage: self.garbage,
        })
    }
}

impl ProcessLogic for GarbageLogic {
    fn begin(&mut self, invocation: Invocation) {
        self.inner.begin(invocation);
    }
    fn step(&mut self, previous_response: Option<Value>) -> evlin_sim::program::TaskStep {
        use evlin_sim::program::TaskStep;
        match self.inner.step(previous_response) {
            TaskStep::Complete(v) => {
                let slot = v.as_int().expect("integer response");
                if slot < self.garbage {
                    TaskStep::Complete(Value::from(999i64))
                } else {
                    TaskStep::Complete(v)
                }
            }
            access => access,
        }
    }
    fn clone_box(&self) -> Box<dyn ProcessLogic> {
        Box::new(GarbageLogic {
            inner: self.inner.clone(),
            garbage: self.garbage,
        })
    }
}

struct Summary {
    weakly_consistent_runs: usize,
    eventually_linearizable_runs: usize,
    linearizable_runs: usize,
    total_runs: usize,
    steps_per_op: f64,
}

fn evaluate(imp: &dyn Implementation, seeds: &[u64], ops: usize) -> Summary {
    let mut u = ObjectUniverse::new();
    u.add_object(FetchIncrement::new());
    let w = Workload::uniform(2, FetchIncrement::fetch_inc(), ops);
    let mut summary = Summary {
        weakly_consistent_runs: 0,
        eventually_linearizable_runs: 0,
        linearizable_runs: 0,
        total_runs: seeds.len(),
        steps_per_op: 0.0,
    };
    let mut total_steps = 0usize;
    for &seed in seeds {
        let mut s = RandomScheduler::seeded(seed);
        let out = evlin_sim::runner::run(imp, &w, &mut s, 1_000_000);
        assert!(
            out.completed_all,
            "non-blocking implementations must finish"
        );
        total_steps += out.steps;
        let report = eventual::analyze(&out.history, &u);
        if weak_consistency::is_weakly_consistent(&out.history, &u) {
            summary.weakly_consistent_runs += 1;
        }
        if report.is_eventually_linearizable() {
            summary.eventually_linearizable_runs += 1;
        }
        if report.is_linearizable() {
            summary.linearizable_runs += 1;
        }
    }
    summary.steps_per_op = total_steps as f64 / (seeds.len() * w.total_operations()) as f64;
    summary
}

/// Runs experiment E9 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let seeds: Vec<u64> = if quick {
        (0..4).collect()
    } else {
        (0..20).collect()
    };
    let ops = if quick { 2 } else { 3 };

    let mut table = Table::new(
        "E9 — Figure 1 wrapper: weak consistency restored, overhead in steps per operation",
        &[
            "implementation",
            "runs",
            "weakly consistent runs",
            "eventually linearizable runs",
            "linearizable runs",
            "steps per operation",
        ],
    );

    let raw = GarbagePrefixFetchInc::new(2, 2);
    let raw_summary = evaluate(&raw, &seeds, ops);
    table.push_row([
        "garbage-prefix (raw)".to_string(),
        raw_summary.total_runs.to_string(),
        raw_summary.weakly_consistent_runs.to_string(),
        raw_summary.eventually_linearizable_runs.to_string(),
        raw_summary.linearizable_runs.to_string(),
        format!("{:.1}", raw_summary.steps_per_op),
    ]);

    let wrapped = Fig1Wrapper::new(
        GarbagePrefixFetchInc::new(2, 2),
        Arc::new(FetchIncrement::new()),
        2,
    );
    let wrapped_summary = evaluate(&wrapped, &seeds, ops);
    table.push_row([
        "garbage-prefix (Figure-1 wrapped)".to_string(),
        wrapped_summary.total_runs.to_string(),
        wrapped_summary.weakly_consistent_runs.to_string(),
        wrapped_summary.eventually_linearizable_runs.to_string(),
        wrapped_summary.linearizable_runs.to_string(),
        format!("{:.1}", wrapped_summary.steps_per_op),
    ]);

    let plain = CasFetchInc::new(2);
    let plain_summary = evaluate(&plain, &seeds, ops);
    table.push_row([
        "cas loop (raw)".to_string(),
        plain_summary.total_runs.to_string(),
        plain_summary.weakly_consistent_runs.to_string(),
        plain_summary.eventually_linearizable_runs.to_string(),
        plain_summary.linearizable_runs.to_string(),
        format!("{:.1}", plain_summary.steps_per_op),
    ]);

    let wrapped_plain = Fig1Wrapper::new(CasFetchInc::new(2), Arc::new(FetchIncrement::new()), 2);
    let wrapped_plain_summary = evaluate(&wrapped_plain, &seeds, ops);
    table.push_row([
        "cas loop (Figure-1 wrapped)".to_string(),
        wrapped_plain_summary.total_runs.to_string(),
        wrapped_plain_summary.weakly_consistent_runs.to_string(),
        wrapped_plain_summary
            .eventually_linearizable_runs
            .to_string(),
        wrapped_plain_summary.linearizable_runs.to_string(),
        format!("{:.1}", wrapped_plain_summary.steps_per_op),
    ]);

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapper_restores_weak_consistency_and_preserves_linearizability() {
        let tables = run(true);
        let rows = &tables[0].rows;
        let runs: usize = rows[0][1].parse().unwrap();
        // Raw garbage implementation violates weak consistency in every run.
        assert_eq!(rows[0][2], "0");
        // Wrapped: weakly consistent (and hence eventually linearizable) in
        // every run.
        assert_eq!(rows[1][2], runs.to_string());
        assert_eq!(rows[1][3], runs.to_string());
        // The plain CAS loop is linearizable with and without the wrapper.
        assert_eq!(rows[2][4], runs.to_string());
        assert_eq!(rows[3][4], runs.to_string());
        // The wrapper costs extra steps per operation.
        let raw_steps: f64 = rows[0][5].parse().unwrap();
        let wrapped_steps: f64 = rows[1][5].parse().unwrap();
        assert!(wrapped_steps > raw_steps);
    }
}
