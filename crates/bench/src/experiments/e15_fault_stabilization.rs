//! E15 — worst-case stabilization under transient state faults.
//!
//! Eventual linearizability promises that every history *stabilizes*: after
//! forgiving some prefix of `t` events, the rest linearizes.  The fault layer
//! of `sim::fault` makes that promise testable under adversity — a
//! [`evlin_sim::fault::FaultStep`] corrupts a base object or a process's
//! program state to another reachable value, the transient faults of the
//! self-stabilization literature.  This experiment explores the local-copy
//! transformation (Theorem 12) and the Figure 1 announce-and-verify wrapper
//! (Proposition 11) with a fault budget `k ∈ {0, 1, 2}` under the combined
//! `SleepSetSymmetry` reduction, collects every distinct terminal history,
//! and batch-computes the minimum stabilization prefix of each via
//! `evlin_checker::min_stabilizations_par`.  The table reports the
//! worst-case stabilization bound as a function of `k`, plus how many
//! corrupted schedules produce histories that never stabilize at all.  On
//! these families the latter column stays at zero — within a finite run the
//! forgiveness prefix can always absorb the corrupted operations — but the
//! bound itself grows with `k`: transient state faults are paid for in
//! extra forgiven events, which is precisely the self-stabilization reading
//! of eventual linearizability.

use crate::Table;
use evlin_algorithms::fig1::Fig1Wrapper;
use evlin_algorithms::CasFetchInc;
use evlin_checker::min_stabilizations_par;
use evlin_history::{History, ObjectUniverse};
use evlin_sim::engine::{self, EngineOptions, ExploreOptions, Reduction, Visit};
use evlin_sim::program::{Implementation, LocalSpecImplementation};
use evlin_sim::workload::Workload;
use evlin_spec::{FetchIncrement, ObjectType};
use std::sync::Arc;

/// The fault budgets the acceptance criterion quantifies over.
pub const FAULT_BUDGETS: [usize; 3] = [0, 1, 2];

struct Family {
    name: String,
    implementation: Box<dyn Implementation>,
    workload: Workload,
    limits: ExploreOptions,
}

fn families(quick: bool) -> Vec<Family> {
    let fi: Arc<dyn ObjectType> = Arc::new(FetchIncrement::new());
    let mut out = Vec::new();
    // Local-copy fetch&increment (Theorem 12): one-step operations, so a
    // schedule is ops + fault steps and the corrupted object is the shared
    // spec object itself.
    let local_sizes: &[usize] = if quick { &[2] } else { &[2, 3] };
    for &n in local_sizes {
        out.push(Family {
            name: format!("local-copy fetch&inc ({n}p × 2 ops)"),
            implementation: Box::new(LocalSpecImplementation::new(fi.clone(), n)),
            workload: Workload::uniform(n, FetchIncrement::fetch_inc(), 2),
            limits: ExploreOptions {
                // Operation steps plus the largest fault budget.
                max_depth: 2 * n + *FAULT_BUDGETS.iter().max().unwrap(),
                max_configs: 4_000_000,
            },
        });
    }
    // Figure 1 wrapper around the compare&swap loop (Proposition 11): deep
    // multi-step operations over CAS + announce logs, so faults can hit the
    // inner implementation state, the announce logs, or the program
    // counters.
    let fig1_ops: &[usize] = if quick { &[1] } else { &[1, 2] };
    for &ops in fig1_ops {
        out.push(Family {
            name: format!("fig1(cas) fetch&inc (2p × {ops} ops)"),
            implementation: Box::new(Fig1Wrapper::new(
                CasFetchInc::new(2),
                Arc::new(FetchIncrement::new()),
                2,
            )),
            workload: Workload::uniform(2, FetchIncrement::fetch_inc(), ops),
            limits: ExploreOptions {
                max_depth: 64,
                max_configs: 40_000_000,
            },
        });
    }
    out
}

/// Above this many distinct terminal histories a run aborts the experiment:
/// with `k ≤ 2` on these families the counts stay far below it, and the cap
/// keeps a future family change from silently exploding the checker batch.
const COLLECT_CAP: usize = 500_000;

struct Run {
    stats: engine::ExploreStats,
    histories: Vec<History>,
}

fn run_family(family: &Family, fault_budget: usize) -> Run {
    let options = EngineOptions {
        limits: family.limits,
        reduction: Reduction::SleepSetSymmetry,
        dedup: true,
        fault_budget,
        ..EngineOptions::default()
    };
    let max_depth = family.limits.max_depth;
    let mut seen = std::collections::BTreeSet::new();
    let mut histories = Vec::new();
    let stats = engine::explore(
        family.implementation.as_ref(),
        &family.workload,
        &options,
        |config, depth| {
            if config.enabled_processes().is_empty() || depth >= max_depth {
                let h = config.history().clone();
                if seen.insert(format!("{h:?}")) {
                    histories.push(h);
                }
                assert!(
                    seen.len() <= COLLECT_CAP,
                    "{}: history overflow",
                    family.name
                );
            }
            Visit::Continue
        },
    );
    assert!(
        !stats.truncated,
        "{}: truncated at fault budget {fault_budget}",
        family.name
    );
    Run { stats, histories }
}

/// The stabilization summary of one (family, k) cell.
struct Stabilization {
    /// Histories with a finite minimum stabilization prefix.
    stabilizing: usize,
    /// Histories that are not `t`-linearizable for any `t` — corrupted runs
    /// the forgiveness machinery can never absorb.
    never: usize,
    /// Worst finite minimum stabilization prefix (`None` when no history
    /// stabilizes, which never happens on these families).
    worst: Option<usize>,
}

fn stabilize(histories: &[History], universe: &ObjectUniverse) -> Stabilization {
    let bounds = min_stabilizations_par(histories, universe, None);
    let mut out = Stabilization {
        stabilizing: 0,
        never: 0,
        worst: None,
    };
    for bound in bounds {
        match bound {
            Some(t) => {
                out.stabilizing += 1;
                out.worst = Some(out.worst.map_or(t, |w: usize| w.max(t)));
            }
            None => out.never += 1,
        }
    }
    out
}

/// Runs experiment E15 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E15 — worst-case stabilization prefix vs transient-fault budget (SleepSetSymmetry)",
        &[
            "family",
            "fault budget k",
            "states visited",
            "distinct terminal histories",
            "stabilizing",
            "never stabilizing",
            "worst-case stabilization t",
        ],
    );
    let mut universe = ObjectUniverse::new();
    universe.add_object(FetchIncrement::new());
    for family in families(quick) {
        let mut fault_free_worst = None;
        for k in FAULT_BUDGETS {
            let run = run_family(&family, k);
            let summary = stabilize(&run.histories, &universe);
            if k == 0 {
                // Fault-free, the algorithms are eventually linearizable:
                // every terminal history stabilizes.
                assert_eq!(
                    summary.never, 0,
                    "{}: a fault-free history failed to stabilize",
                    family.name
                );
                fault_free_worst = summary.worst;
            } else if let (Some(worst), Some(base)) = (summary.worst, fault_free_worst) {
                // Corruption can only make forgiveness more expensive.
                assert!(
                    worst >= base,
                    "{}: fault budget {k} shrank the worst-case bound",
                    family.name
                );
            }
            table.push_row([
                family.name.clone(),
                k.to_string(),
                run.stats.visited.to_string(),
                run.histories.len().to_string(),
                summary.stabilizing.to_string(),
                summary.never.to_string(),
                summary
                    .worst
                    .map_or_else(|| "—".to_string(), |t| t.to_string()),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_budget_widens_the_tree_and_the_stabilization_bound() {
        let tables = run(true);
        let table = &tables[0];
        assert_eq!(table.rows.len() % FAULT_BUDGETS.len(), 0);
        for chunk in table.rows.chunks(FAULT_BUDGETS.len()) {
            // `run` already asserts the k = 0 column stabilizes everywhere;
            // here check the budget is doing work: the tree and the set of
            // reachable terminal histories strictly widen with k.
            let visited: Vec<usize> = chunk.iter().map(|r| r[2].parse().unwrap()).collect();
            let distinct: Vec<usize> = chunk.iter().map(|r| r[3].parse().unwrap()).collect();
            assert!(
                visited[0] < visited[1] && visited[1] < visited[2],
                "{chunk:?}"
            );
            assert!(
                distinct[0] < distinct[1] && distinct[1] <= distinct[2],
                "{chunk:?}"
            );
        }
    }
}
