//! E4 — Theorem 12: the local-copy transformation.
//!
//! Applying the transformation to a linearizable implementation yields an
//! implementation with no shared objects at all.  For trivial types
//! (Definition 13) this costs nothing; for non-trivial types linearizability
//! is lost (which is why eventually linearizable base objects cannot be used
//! to build them).  The experiment explores all interleavings of small
//! workloads of the transformed implementations and tabulates which
//! consistency conditions survive.

use crate::Table;
use evlin_algorithms::{CasFetchInc, LocalCopy, Prop16Consensus};
use evlin_checker::{linearizability, parallel, weak_consistency};
use evlin_history::ObjectUniverse;
use evlin_sim::engine::{self, EngineOptions, Reduction, Visit};
use evlin_sim::explorer::{
    terminal_histories, terminal_histories_par, ExploreOptions, ParExploreOptions,
};
use evlin_sim::program::LocalSpecImplementation;
use evlin_sim::workload::Workload;
use evlin_spec::trivial::{BlindRegister, StickyGate};
use evlin_spec::{Consensus, FetchIncrement, ObjectType, Queue, Register, TestAndSet, Value};
use std::sync::Arc;

struct Case {
    name: &'static str,
    ty: Arc<dyn ObjectType>,
    workload: Workload,
    trivial: bool,
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "sticky-gate (trivial)",
            ty: Arc::new(StickyGate::new()),
            workload: Workload::uniform(2, StickyGate::knock(), 2),
            trivial: true,
        },
        Case {
            name: "blind-register (trivial)",
            ty: Arc::new(BlindRegister::new()),
            workload: Workload::uniform(2, BlindRegister::write(Value::from(1i64)), 2),
            trivial: true,
        },
        Case {
            name: "register",
            ty: Arc::new(Register::new(Value::from(0i64))),
            workload: Workload::new(vec![
                vec![Register::write(Value::from(1i64)), Register::read()],
                vec![Register::read(), Register::read()],
            ]),
            trivial: false,
        },
        Case {
            name: "fetch&increment",
            ty: Arc::new(FetchIncrement::new()),
            workload: Workload::uniform(2, FetchIncrement::fetch_inc(), 2),
            trivial: false,
        },
        Case {
            name: "test&set",
            ty: Arc::new(TestAndSet::new()),
            workload: Workload::uniform(2, TestAndSet::test_and_set(), 1),
            trivial: false,
        },
        Case {
            name: "consensus",
            ty: Arc::new(Consensus::new()),
            workload: Workload::one_shot(vec![
                Consensus::propose(Value::from(0i64)),
                Consensus::propose(Value::from(1i64)),
            ]),
            trivial: false,
        },
        Case {
            name: "queue",
            ty: Arc::new(Queue::new()),
            workload: Workload::new(vec![
                vec![Queue::enqueue(Value::from(1i64)), Queue::dequeue()],
                vec![Queue::enqueue(Value::from(2i64)), Queue::dequeue()],
            ]),
            trivial: false,
        },
    ]
}

/// Runs experiment E4 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let options = ExploreOptions {
        max_depth: if quick { 16 } else { 24 },
        max_configs: if quick { 50_000 } else { 400_000 },
    };

    let mut per_type = Table::new(
        "E4 — Theorem 12: communication-free (local-copy) implementations, all interleavings",
        &[
            "implemented type",
            "trivial (Def. 13)",
            "terminal histories",
            "all linearizable",
            "all weakly consistent",
            "states (raw)",
            "states (sleep+sym)",
        ],
    );
    for case in cases() {
        let mut universe = ObjectUniverse::new();
        universe.add_shared(case.ty.clone(), case.ty.initial_states()[0].clone());
        let implementation = LocalSpecImplementation::new(case.ty.clone(), 2);
        // Explore all interleavings on every core, then batch-check the
        // terminal histories in parallel too.
        let histories = terminal_histories_par(
            &implementation,
            &case.workload,
            ParExploreOptions {
                base: options,
                ..ParExploreOptions::default()
            },
        );
        let all_lin = parallel::check_histories_par(&histories, &universe)
            .into_iter()
            .all(|ok| ok);
        let all_wc = histories
            .iter()
            .all(|h| weak_consistency::is_weakly_consistent(h, &universe));
        // How much of that tree the reduction engine skips (symmetry applies
        // to the uniform workloads; the one-shot consensus proposals differ,
        // so that row degrades to plain state deduplication).
        let count_states = |reduction| {
            let stats = engine::explore(
                &implementation,
                &case.workload,
                &EngineOptions {
                    limits: options,
                    workers: Some(1),
                    reduction,
                    ..EngineOptions::default()
                },
                |_, _| Visit::Continue,
            );
            // A truncated count is not comparable across strategies; the E4
            // workloads are tiny, so treat hitting the budget as a bug.
            assert!(!stats.truncated, "E4 exploration truncated: {}", case.name);
            stats.visited
        };
        let raw_states = count_states(Reduction::None);
        let reduced_states = count_states(Reduction::SleepSetSymmetry);
        per_type.push_row([
            case.name.to_string(),
            case.trivial.to_string(),
            histories.len().to_string(),
            all_lin.to_string(),
            all_wc.to_string(),
            raw_states.to_string(),
            format!(
                "{reduced_states} ({:.1}×)",
                raw_states as f64 / reduced_states.max(1) as f64
            ),
        ]);
    }

    // Second table: the transformation applied to real (multi-step)
    // implementations rather than directly to the specification.
    let mut transformed = Table::new(
        "E4b — local-copy transformation of concrete implementations",
        &[
            "implementation",
            "terminal histories",
            "all linearizable",
            "all weakly consistent",
            "all operations complete (wait-free)",
        ],
    );
    {
        let t = LocalCopy::new(CasFetchInc::new(2));
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), if quick { 1 } else { 2 });
        let mut u = ObjectUniverse::new();
        u.add_object(FetchIncrement::new());
        let total = w.total_operations();
        let histories = terminal_histories(&t, &w, options);
        transformed.push_row([
            "LocalCopy(CasFetchInc)".to_string(),
            histories.len().to_string(),
            histories
                .iter()
                .all(|h| linearizability::is_linearizable(h, &u))
                .to_string(),
            histories
                .iter()
                .all(|h| weak_consistency::is_weakly_consistent(h, &u))
                .to_string(),
            histories
                .iter()
                .all(|h| h.complete_operations().len() == total)
                .to_string(),
        ]);
    }
    {
        let t = LocalCopy::new(Prop16Consensus::new(2));
        let w = Workload::one_shot(vec![
            Consensus::propose(Value::from(0i64)),
            Consensus::propose(Value::from(1i64)),
        ]);
        let mut u = ObjectUniverse::new();
        u.add_object(Consensus::new());
        let total = w.total_operations();
        let histories = terminal_histories(&t, &w, options);
        transformed.push_row([
            "LocalCopy(Prop16Consensus)".to_string(),
            histories.len().to_string(),
            histories
                .iter()
                .all(|h| linearizability::is_linearizable(h, &u))
                .to_string(),
            histories
                .iter()
                .all(|h| weak_consistency::is_weakly_consistent(h, &u))
                .to_string(),
            histories
                .iter()
                .all(|h| h.complete_operations().len() == total)
                .to_string(),
        ]);
    }

    vec![per_type, transformed]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_types_survive_and_non_trivial_do_not() {
        let tables = run(true);
        for row in &tables[0].rows {
            let trivial: bool = row[1].parse().unwrap();
            let all_lin: bool =
                row[2].parse::<usize>().unwrap() > 0 && row[3].parse::<bool>().unwrap();
            let all_wc: bool = row[4].parse().unwrap();
            assert!(all_wc, "local copies are always weakly consistent: {row:?}");
            assert_eq!(
                trivial, all_lin,
                "linearizability must survive exactly for trivial types: {row:?}"
            );
        }
        // Transformed concrete implementations stay wait-free and weakly
        // consistent, but lose linearizability.
        for row in &tables[1].rows {
            assert_eq!(row[2], "false");
            assert_eq!(row[3], "true");
            assert_eq!(row[4], "true");
        }
    }
}
