//! E1 — Proposition 16: wait-free eventually linearizable consensus from
//! (eventually linearizable) registers.
//!
//! For each process count and scheduler, run the Proposition 16 algorithm on
//! a one-shot consensus workload, check weak consistency, record the minimal
//! stabilization index and whether the run disagreed (which is allowed before
//! stabilization and is exactly what distinguishes the implementation from a
//! linearizable one).

use crate::Table;
use evlin_algorithms::Prop16Consensus;
use evlin_checker::{t_linearizability, weak_consistency};
use evlin_history::ObjectUniverse;
use evlin_sim::eventually::StabilizationPolicy;
use evlin_sim::prelude::*;
use evlin_spec::{Consensus, Value};
use std::collections::BTreeSet;

fn consensus_universe() -> ObjectUniverse {
    let mut u = ObjectUniverse::new();
    u.add_object(Consensus::new());
    u
}

fn proposals(n: usize) -> Workload {
    Workload::one_shot(
        (0..n)
            .map(|i| Consensus::propose(Value::from(i as i64)))
            .collect(),
    )
}

struct RunSummary {
    weakly_consistent: bool,
    min_t: Option<usize>,
    history_len: usize,
    disagreed: bool,
}

fn summarize(history: &evlin_history::History, universe: &ObjectUniverse) -> RunSummary {
    let decided: BTreeSet<Value> = history
        .complete_operations()
        .iter()
        .filter_map(|op| op.response.clone())
        .collect();
    RunSummary {
        weakly_consistent: weak_consistency::is_weakly_consistent(history, universe),
        min_t: t_linearizability::min_stabilization(history, universe, None),
        history_len: history.len(),
        disagreed: decided.len() > 1,
    }
}

/// Runs experiment E1 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let universe = consensus_universe();
    let process_counts: Vec<usize> = if quick {
        vec![2, 3]
    } else {
        vec![2, 3, 4, 5, 6]
    };
    let seeds: Vec<u64> = if quick {
        (0..5).collect()
    } else {
        (0..30).collect()
    };

    let mut per_scheduler = Table::new(
        "E1 — Prop 16 consensus from registers: eventual linearizability across schedulers",
        &[
            "processes",
            "scheduler",
            "runs",
            "all weakly consistent",
            "runs with disagreement",
            "max stabilization t",
            "max history len",
        ],
    );

    for &n in &process_counts {
        let imp = Prop16Consensus::new(n);
        let mut scheduler_runs: Vec<(&str, Vec<RunSummary>)> = Vec::new();

        // Round robin (deterministic): one run.
        {
            let mut s = RoundRobinScheduler::new();
            let out = evlin_sim::runner::run(&imp, &proposals(n), &mut s, 100_000);
            scheduler_runs.push(("round-robin", vec![summarize(&out.history, &universe)]));
        }
        // Solo bursts (adversarial).
        {
            let mut s = SoloBurstScheduler::new(2);
            let out = evlin_sim::runner::run(&imp, &proposals(n), &mut s, 100_000);
            scheduler_runs.push(("solo-burst(2)", vec![summarize(&out.history, &universe)]));
        }
        // Random schedules.
        {
            let mut summaries = Vec::new();
            for &seed in &seeds {
                let mut s = RandomScheduler::seeded(seed);
                let out = evlin_sim::runner::run(&imp, &proposals(n), &mut s, 100_000);
                summaries.push(summarize(&out.history, &universe));
            }
            scheduler_runs.push(("random", summaries));
        }

        for (name, summaries) in scheduler_runs {
            let all_wc = summaries.iter().all(|s| s.weakly_consistent);
            let disagreements = summaries.iter().filter(|s| s.disagreed).count();
            let max_t = summaries
                .iter()
                .map(|s| s.min_t.unwrap_or(usize::MAX))
                .max()
                .unwrap_or(0);
            let max_len = summaries.iter().map(|s| s.history_len).max().unwrap_or(0);
            per_scheduler.push_row([
                n.to_string(),
                name.to_string(),
                summaries.len().to_string(),
                all_wc.to_string(),
                disagreements.to_string(),
                max_t.to_string(),
                max_len.to_string(),
            ]);
        }
    }

    // Second table: the algorithm still works over *eventually linearizable*
    // registers (the stronger claim of Proposition 16).
    let mut over_ev = Table::new(
        "E1b — Prop 16 over eventually linearizable base registers",
        &[
            "processes",
            "register stabilization (accesses)",
            "runs",
            "all weakly consistent",
            "all eventually linearizable",
            "max stabilization t",
        ],
    );
    let stabilizations = if quick {
        vec![0usize, 4]
    } else {
        vec![0usize, 2, 4, 8, 16]
    };
    for &n in process_counts.iter().take(2) {
        for &k in &stabilizations {
            let imp = Prop16Consensus::with_eventually_linearizable_registers(
                n,
                StabilizationPolicy::AfterAccesses(k),
            );
            let mut all_wc = true;
            let mut all_ev = true;
            let mut max_t = 0usize;
            for &seed in &seeds {
                let mut s = RandomScheduler::seeded(seed);
                let out = evlin_sim::runner::run(&imp, &proposals(n), &mut s, 100_000);
                let summary = summarize(&out.history, &universe);
                all_wc &= summary.weakly_consistent;
                all_ev &= summary.weakly_consistent && summary.min_t.is_some();
                max_t = max_t.max(summary.min_t.unwrap_or(usize::MAX));
            }
            over_ev.push_row([
                n.to_string(),
                k.to_string(),
                seeds.len().to_string(),
                all_wc.to_string(),
                all_ev.to_string(),
                max_t.to_string(),
            ]);
        }
    }

    vec![per_scheduler, over_ev]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_produces_consistent_tables() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        assert!(!tables[0].is_empty());
        assert!(!tables[1].is_empty());
        // Every row of E1 must report "all weakly consistent = true": that is
        // the safety half of Proposition 16.
        for row in &tables[0].rows {
            assert_eq!(row[3], "true", "weak consistency must hold: {row:?}");
        }
        for row in &tables[1].rows {
            assert_eq!(row[3], "true");
            assert_eq!(row[4], "true");
        }
    }
}
