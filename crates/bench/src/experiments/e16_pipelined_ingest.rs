//! E16 — pipelined, sharded, frame-batched runtime→monitor dataflow.
//!
//! E11 established online monitoring but paid one lock round and one condvar
//! notification *per event* on its single SPSC channel, capping end-to-end
//! checked throughput at a fraction of what the monitor kernel sustains
//! (~389k checked ops/s vs ~2.6M kernel events/s at the time it was
//! recorded).  This experiment measures the dataflow that closes the gap:
//! every worker thread records into its own frame-batched
//! [`evlin_runtime::RecorderShard`] (per-producer bounded ring, one channel
//! round per *frame*), a k-way merge restores global sequence order, and the
//! monitor runs as two overlapping stages — quiescent-cut ingest on the
//! merge thread, kernel checking on its own thread.
//!
//! The table sweeps producer count × frame size against the single-channel
//! baseline measured in the same run.  Verdicts are bit-identical to the
//! inline monitor's by construction (`crates/runtime/tests/
//! pipeline_differential.rs` proves it against the offline kernel); only the
//! synchronization cost per event changes — which is the whole point.

use crate::Table;
use evlin_checker::monitor::{MonitorConfig, MonitorVerdict};
use evlin_runtime::counter::FetchAddCounter;
use evlin_runtime::harness::{
    run_counter_workload_monitored, run_counter_workload_pipelined, HarnessOptions, PipelineOptions,
};

fn verdict_label(verdict: &MonitorVerdict) -> &'static str {
    match verdict {
        MonitorVerdict::Ok => "linearizable",
        MonitorVerdict::Violation(_) => "violation",
        MonitorVerdict::Unknown => "unknown",
    }
}

fn monitor_config() -> MonitorConfig {
    MonitorConfig {
        min_segment_events: 256,
        segment_batch: 8,
        ..MonitorConfig::default()
    }
}

/// Runs experiment E16 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let total_ops = if quick { 4_000 } else { 200_000 };
    let frame_sizes: &[usize] = if quick { &[64, 512] } else { &[64, 512, 2048] };
    let producer_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4] };
    let mut table = Table::new(
        "E16 — pipelined sharded ingest: checked ops/s by producer count × \
         frame size, vs the single-channel monitored path (fetch-add \
         counter, same total operations per row)",
        &[
            "path",
            "producers",
            "frame",
            "ops",
            "verdict",
            "checked ops/s",
            "events/s",
            "merge frames",
            "partial frames",
            "vs single-channel",
        ],
    );

    // The 'before' path, measured back-to-back in the same run: one
    // mutex-serialized recorder, one per-event SPSC channel, one consumer.
    let baseline = run_counter_workload_monitored(
        &FetchAddCounter::new(),
        HarnessOptions {
            threads: 4,
            ops_per_thread: total_ops / 4,
            record_history: false,
        },
        monitor_config(),
        8192,
    );
    let base_rate = baseline.checked_ops_per_sec();
    table.push_row([
        "single-channel".to_string(),
        "4".to_string(),
        "—".to_string(),
        baseline.run.total_ops.to_string(),
        verdict_label(&baseline.report.verdict).to_string(),
        format!("{base_rate:.0}"),
        format!(
            "{:.0}",
            baseline.report.stats.events as f64
                / baseline.total_elapsed.as_secs_f64().max(f64::EPSILON)
        ),
        "—".to_string(),
        "—".to_string(),
        "1.00x".to_string(),
    ]);

    for &producers in producer_counts {
        for &frame_capacity in frame_sizes {
            let out = run_counter_workload_pipelined(
                &FetchAddCounter::new(),
                HarnessOptions {
                    threads: producers,
                    ops_per_thread: total_ops / producers,
                    record_history: false,
                },
                monitor_config(),
                PipelineOptions {
                    frame_capacity,
                    ring_frames: 8,
                },
            );
            table.push_row([
                "pipelined".to_string(),
                producers.to_string(),
                frame_capacity.to_string(),
                out.run.total_ops.to_string(),
                verdict_label(&out.report.verdict).to_string(),
                format!("{:.0}", out.checked_ops_per_sec()),
                format!("{:.0}", out.events_per_sec()),
                out.merge.frames.to_string(),
                out.sink.flushed_partial_frames.to_string(),
                format!(
                    "{:.2}x",
                    out.checked_ops_per_sec() / base_rate.max(f64::EPSILON)
                ),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_row_verifies_online_and_counts_add_up() {
        let tables = run(true);
        let rows = &tables[0].rows;
        // 1 baseline row + producers × frame sizes.
        assert_eq!(rows.len(), 1 + 2 * 2);
        for row in rows {
            assert_eq!(row[4], "linearizable", "{row:?}");
            assert_eq!(row[3], "4000", "{row:?}");
        }
        // Every pipelined row shipped at least one frame, and each shard
        // flushed a partial tail exactly when its stream does not divide
        // into whole frames.
        for row in &rows[1..] {
            assert_eq!(row[0], "pipelined");
            assert!(row[7].parse::<usize>().unwrap() > 0, "{row:?}");
            let producers: usize = row[1].parse().unwrap();
            let frame: usize = row[2].parse().unwrap();
            let events_per_shard = 2 * (4_000 / producers);
            let expected_partials = if events_per_shard.is_multiple_of(frame) {
                0
            } else {
                producers
            };
            assert_eq!(
                row[8].parse::<usize>().unwrap(),
                expected_partials,
                "{row:?}"
            );
        }
    }
}
