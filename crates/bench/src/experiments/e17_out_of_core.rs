//! E17 — out-of-core exploration: the spill-to-disk visited store and the
//! fingerprint-range partitioner.
//!
//! The engine's deduplication set is the memory ceiling of every exhaustive
//! result in this repository: each visited `(key, depth)` record is 8
//! resident bytes forever.  This experiment runs the 5-process local-copy
//! fetch&increment (the largest E12 symmetric family) under
//! `SleepSetSymmetry` with the spill-to-disk backend's resident budget set
//! *below* the visited-set size, and reports what bounded residency costs:
//! states and verdict-relevant counts must not move at all (the dedup
//! verdict is a set property; the `store_differential` suite fuzzes this),
//! while wall time pays for Bloom-filtered, fence-indexed membership probes
//! into compressed sorted runs.  A second table splits the same exploration
//! across 2 fingerprint-range partitions (`checkpoint::explore_partitioned`)
//! and shows the per-partition stats recomposing the single-run totals
//! exactly — the basis for distributing an exploration across processes.

use crate::Table;
use evlin_sim::checkpoint;
use evlin_sim::engine::{self, EngineOptions, ExploreOptions, ExploreStats, Reduction, Visit};
use evlin_sim::program::LocalSpecImplementation;
use evlin_sim::store::StoreConfig;
use evlin_sim::workload::Workload;
use evlin_spec::FetchIncrement;
use std::sync::Arc;
use std::time::Instant;

fn options(limits: ExploreOptions, store: StoreConfig) -> EngineOptions {
    EngineOptions {
        limits,
        workers: Some(1),
        reduction: Reduction::SleepSetSymmetry,
        dedup: true,
        store,
        ..EngineOptions::default()
    }
}

fn counts(stats: &ExploreStats) -> (usize, usize, usize, bool) {
    (
        stats.visited,
        stats.terminals,
        stats.pruned,
        stats.truncated,
    )
}

/// Runs experiment E17 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let n = if quick { 4 } else { 5 };
    let implementation = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), n);
    let workload = Workload::uniform(n, FetchIncrement::fetch_inc(), 2);
    let limits = ExploreOptions {
        max_depth: 2 * n,
        max_configs: 10_000_000,
    };
    let explore = |store: StoreConfig| {
        let start = Instant::now();
        let stats = engine::explore(
            &implementation,
            &workload,
            &options(limits, store),
            |_, _| Visit::Continue,
        );
        (stats, start.elapsed())
    };

    let (mem_stats, mem_wall) = explore(StoreConfig::Mem);

    let title = format!(
        "E17 — visited-store backends on the local-copy fetch&inc \
             ({n}p × 2 ops, SleepSetSymmetry, {} states)",
        mem_stats.visited
    );
    let mut backends = Table::new(
        &title,
        &[
            "backend",
            "visited",
            "pruned",
            "spill runs",
            "resident B",
            "spilled B",
            "filter B",
            "wall ms",
            "counts == mem",
        ],
    );
    let push = |table: &mut Table, label: String, stats: &ExploreStats, wall_ms: f64| {
        table.push_row([
            label,
            stats.visited.to_string(),
            stats.pruned.to_string(),
            stats.store_runs.to_string(),
            stats.store_bytes.resident.to_string(),
            stats.store_bytes.spilled.to_string(),
            stats.store_bytes.filter.to_string(),
            format!("{wall_ms:.2}"),
            (counts(stats) == counts(&mem_stats)).to_string(),
        ]);
    };
    push(
        &mut backends,
        "mem (unbounded)".to_string(),
        &mem_stats,
        mem_wall.as_secs_f64() * 1e3,
    );
    // Budgets below the visited-set size (8 bytes per state): every full
    // shard is flushed as a sorted run, so the post-insert resident total
    // stays under shards × budget while membership answers stay exact.
    for shard_budget in [2048usize, 512, 256] {
        let store = StoreConfig::Spill {
            shards_log2: 3,
            shard_budget,
        };
        let (stats, wall) = explore(store);
        assert_eq!(
            counts(&stats),
            counts(&mem_stats),
            "spill backend changed exploration counts"
        );
        assert!(
            stats.store_bytes.resident <= 8 * shard_budget,
            "resident {}B exceeds the 8×{shard_budget}B budget",
            stats.store_bytes.resident
        );
        push(
            &mut backends,
            format!("spill 8×{shard_budget}B"),
            &stats,
            wall.as_secs_f64() * 1e3,
        );
    }

    let mut partitioned = Table::new(
        "E17 — fingerprint-range partitioning (2 partitions, spill 8×512B \
         each): exact recomposition of the single-run totals",
        &[
            "slice",
            "visited",
            "terminals",
            "pruned",
            "spill runs",
            "wall ms",
            "matches single run",
        ],
    );
    let store = StoreConfig::Spill {
        shards_log2: 3,
        shard_budget: 512,
    };
    let (single_stats, single_wall) = explore(store);
    let start = Instant::now();
    let parts = checkpoint::explore_partitioned(
        &implementation,
        &workload,
        &options(limits, store),
        1,
        |_, _| Visit::Continue,
    )
    .expect("partitioned exploration");
    let parts_wall = start.elapsed();
    for (i, stats) in parts.per_partition.iter().enumerate() {
        partitioned.push_row([
            format!("partition {i}"),
            stats.visited.to_string(),
            stats.terminals.to_string(),
            stats.pruned.to_string(),
            stats.store_runs.to_string(),
            "—".to_string(),
            "—".to_string(),
        ]);
    }
    assert_eq!(
        counts(&parts.total),
        counts(&single_stats),
        "partitioned totals must recompose the single run"
    );
    partitioned.push_row([
        format!(
            "total ({} exported edges, {} rounds)",
            parts.exported, parts.rounds
        ),
        parts.total.visited.to_string(),
        parts.total.terminals.to_string(),
        parts.total.pruned.to_string(),
        parts.total.store_runs.to_string(),
        format!("{:.2}", parts_wall.as_secs_f64() * 1e3),
        (counts(&parts.total) == counts(&single_stats)).to_string(),
    ]);
    partitioned.push_row([
        "single run (reference)".to_string(),
        single_stats.visited.to_string(),
        single_stats.terminals.to_string(),
        single_stats.pruned.to_string(),
        single_stats.store_runs.to_string(),
        format!("{:.2}", single_wall.as_secs_f64() * 1e3),
        "—".to_string(),
    ]);

    vec![backends, partitioned]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_budgets_do_not_change_counts_and_partitions_recompose() {
        // The `run` body asserts count equality and budget compliance for
        // every row; reaching the tables is the test.
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        // Every spill row agreed with mem.
        for row in &tables[0].rows {
            assert_ne!(row[8], "false", "backend diverged: {row:?}");
        }
        // The recomposition row agreed with the single run.
        let total = &tables[1].rows[tables[1].rows.len() - 2];
        assert_eq!(total[6], "true", "recomposition failed: {total:?}");
    }
}
