//! E14 — service saturation: checked throughput of the client/replica
//! monitoring service as the replica pool grows.
//!
//! Four producer clients stream a many-object fetch&add workload through the
//! in-process service transport to 1/2/4/8 monitor replicas.  Linearizability
//! is object-local (Herlihy & Wing), so the shard router splits the
//! 1024-object stream by object and the per-shard verdicts recompose exactly
//! (the differential suite in `crates/service/tests/` proves equality with
//! the offline kernel).
//!
//! **Why throughput scales on one core.**  This machine has a single
//! hardware thread, so the win is algorithmic, not parallel.  Checking a
//! multi-object segment costs one projection pass per *object present in
//! the segment* — each pass scans the whole segment for that object's
//! events and sets up a per-projection check.  With `min_segment_events`
//! forcing segments that span every object, an unsharded monitor pays
//! `O` passes per segment (all 1024 objects), while a replica that only
//! ever sees its own `O/M` objects pays proportionally fewer passes over
//! proportionally smaller segments.  Per-object *check* work is invariant
//! under sharding (the same projections get decided either way), so
//! throughput scales with `M` until the unsharded floor — wire encode,
//! decode, routing, merge, and the per-projection counter checks —
//! dominates.  On a multi-core box the replicas additionally run in
//! parallel; the table below measures the sharding effect alone.
//!
//! The frame-faulted rows run every client→replica link behind the seeded
//! frame-level fault injector (loss, duplication, reordering at ~6% each).
//! Faults surface as frame-sequence gaps and shutdown audit mismatches at
//! the wire layer and as rejected events at ingest; the verdict then applies
//! to the surviving stream, which for a lossy fetch&add history is typically
//! a violation (a lost response punches a hole in the counter sequence) —
//! detecting exactly that is the service's fault-tolerance contract.  A
//! violation freezes the shard's decided-operation counter (further batches
//! are discarded unchecked), so faulted rows report checked ops/s at or
//! near zero by design; their events/s column still shows wire throughput.

use crate::Table;
use evlin_checker::monitor::{MonitorCondition, MonitorConfig, MonitorVerdict};
use evlin_history::{ObjectId, ObjectUniverse, ProcessId};
use evlin_runtime::FaultPlan;
use evlin_service::{MonitorService, ServiceConfig, ServiceReport};
use evlin_spec::{FetchIncrement, Value};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What one saturation run produced (driver shared with the
/// `service_saturation` criterion bench).
pub struct SaturationRun {
    /// The service report.
    pub report: ServiceReport,
    /// Wall time from first record to the joined service report.
    pub elapsed: Duration,
    /// Operations the clients recorded.
    pub total_ops: usize,
}

impl SaturationRun {
    /// Completed operations decided per wall-clock second.
    pub fn checked_ops_per_sec(&self) -> f64 {
        self.report.checked_ops() as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }

    /// Events checked per wall-clock second.
    pub fn events_per_sec(&self) -> f64 {
        self.report.events() as f64 / self.elapsed.as_secs_f64().max(f64::EPSILON)
    }
}

/// Streams `total_ops` fetch&add operations from `clients` producer threads
/// over `objects` counter objects into a service with `shards` requested
/// replicas, and waits for the full verdict.
///
/// Responses report a per-object atomic's true fetch-add values, so the
/// recorded history is linearizable by construction; under a fault plan the
/// *surviving* stream usually is not, which is the point of those rows.
pub fn run_service_saturation(
    clients: usize,
    objects: usize,
    total_ops: usize,
    shards: usize,
    fault: Option<FaultPlan>,
) -> SaturationRun {
    let mut universe = ObjectUniverse::new();
    for _ in 0..objects {
        universe.add_object(FetchIncrement::new());
    }
    let config = ServiceConfig {
        shards,
        monitor: MonitorConfig {
            condition: MonitorCondition::Linearizability,
            // Multi-object segments: this is what makes projection cost per
            // event proportional to the objects a replica is responsible for.
            min_segment_events: 4096,
            segment_batch: 8,
            ..MonitorConfig::default()
        },
        frame_capacity: 256,
        fault,
        ..ServiceConfig::default()
    };
    let ops_per_client = total_ops / clients;
    let start = Instant::now();
    let (handles, service) = MonitorService::in_process(&universe, clients, config);
    let seq_ground_truth: Arc<Vec<AtomicI64>> =
        Arc::new((0..objects).map(|_| AtomicI64::new(0)).collect());
    let producers: Vec<_> = handles
        .into_iter()
        .enumerate()
        .map(|(c, mut client)| {
            let counters = Arc::clone(&seq_ground_truth);
            std::thread::spawn(move || {
                let process = ProcessId(c);
                for i in 0..ops_per_client {
                    let object = ObjectId((c + i) % counters.len());
                    client.invoke(process, object, FetchIncrement::fetch_inc());
                    let old = counters[object.0].fetch_add(1, Ordering::SeqCst);
                    client.respond(process, object, Value::Int(old));
                }
                client.finish()
            })
        })
        .collect();
    let closed: Vec<_> = producers
        .into_iter()
        .map(|p| p.join().expect("producer thread"))
        .collect();
    let report = service.finish();
    let elapsed = start.elapsed();
    drop(closed); // verdict plane drained by drop; rounds are in the report
    SaturationRun {
        report,
        elapsed,
        total_ops: ops_per_client * clients,
    }
}

fn verdict_label(verdict: &MonitorVerdict) -> &'static str {
    match verdict {
        MonitorVerdict::Ok => "linearizable",
        MonitorVerdict::Violation(_) => "violation",
        MonitorVerdict::Unknown => "unknown",
    }
}

/// Runs experiment E14 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let total_ops = if quick { 4_000 } else { 120_000 };
    let objects = if quick { 16 } else { 1024 };
    let shard_counts: &[usize] = if quick { &[1, 2] } else { &[1, 2, 4, 8] };
    let clients = 4;
    let mut table = Table::new(
        "E14 — service saturation: checked ops/s by replica shard count \
         (4 clients, fetch&add counters over 4096-event segments, in-process \
         transport; single-core machine, so scaling is the per-shard \
         projection reduction, not parallelism)",
        &[
            "transport",
            "shards",
            "objects",
            "ops",
            "verdict",
            "checked ops/s",
            "events/s",
            "verdict rounds",
            "frame gaps",
            "rejected events",
            "vs 1 shard",
        ],
    );
    for faulty in [false, true] {
        let plan = faulty.then_some(FaultPlan {
            seed: 0xe14,
            lose: 64,
            duplicate: 64,
            reorder: 64,
        });
        let mut base_rate = None;
        for &shards in shard_counts {
            let run = run_service_saturation(clients, objects, total_ops, shards, plan);
            let rate = run.checked_ops_per_sec();
            let base = *base_rate.get_or_insert(rate);
            let gaps: u64 = run.report.connections.iter().map(|c| c.frame_gaps).sum();
            let rejected: u64 = run.report.shards.iter().map(|s| s.rejected_events).sum();
            table.push_row([
                if faulty { "frame-faulted" } else { "clean" }.to_string(),
                run.report.shards.len().to_string(),
                objects.to_string(),
                run.total_ops.to_string(),
                verdict_label(&run.report.verdict).to_string(),
                format!("{rate:.0}"),
                format!("{:.0}", run.events_per_sec()),
                run.report
                    .shards
                    .iter()
                    .map(|s| s.rounds)
                    .sum::<u64>()
                    .to_string(),
                gaps.to_string(),
                rejected.to_string(),
                format!("{:.2}x", rate / base.max(f64::EPSILON)),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_rows_verify_and_faulted_rows_account_for_losses() {
        let tables = run(true);
        let rows = &tables[0].rows;
        assert_eq!(rows.len(), 2 * 2); // 2 transports × 2 shard counts
        for row in rows {
            assert_eq!(row[3], "4000", "{row:?}");
        }
        for row in &rows[..2] {
            assert_eq!(row[0], "clean");
            assert_eq!(row[4], "linearizable", "{row:?}");
            assert_eq!(row[8], "0", "clean transport must show no gaps: {row:?}");
            assert_eq!(row[9], "0", "clean transport must reject nothing: {row:?}");
        }
        for row in &rows[2..] {
            assert_eq!(row[0], "frame-faulted");
        }
    }

    #[test]
    fn sharding_reduces_checking_work() {
        // Structural, not timed: with multi-object segments, per-shard
        // monitors touch fewer objects per projection pass.  Verify the
        // routing actually splits the stream evenly-ish.
        let run = run_service_saturation(2, 16, 2_000, 4, None);
        assert_eq!(run.report.shards.len(), 4);
        assert!(run.report.verdict.is_ok());
        assert_eq!(run.report.events(), 4_000);
        for shard in &run.report.shards {
            assert!(shard.report.stats.events > 0, "empty shard");
        }
    }
}
