//! E2 — Section 3.2: `t`-linearizability (for a fixed `t > 0`) is not a
//! safety property.
//!
//! The paper's counterexample is the fetch&increment history in which process
//! `p` performs one operation returning 0 and process `q` then performs
//! operations returning 0, 1, 2, …  Every finite prefix is 2-linearizable
//! (move `p`'s operation to the end), but the infinite history is not: the
//! limit of 2-linearizable histories fails to be 2-linearizable, so the set
//! of 2-linearizable histories is not limit-closed.  The experiment tabulates
//! growing prefixes: 2-linearizability holds at every finite length while the
//! cost of the witness (the displacement of `p`'s operation) grows without
//! bound, and 0/1-linearizability fail throughout.

use crate::Table;
use evlin_checker::{fi, safety, t_linearizability, weak_consistency};
use evlin_history::{HistoryBuilder, ObjectUniverse, ProcessId};
use evlin_spec::{FetchIncrement, Value};

/// Builds the Section 3.2 history with `q_ops` operations by process `q`.
pub fn section_3_2_history(q_ops: usize) -> evlin_history::History {
    let x = evlin_history::ObjectId(0);
    let mut b = HistoryBuilder::new().complete(
        ProcessId(0),
        x,
        FetchIncrement::fetch_inc(),
        Value::from(0i64),
    );
    for k in 0..q_ops {
        b = b.complete(
            ProcessId(1),
            x,
            FetchIncrement::fetch_inc(),
            Value::from(k as i64),
        );
    }
    b.build()
}

/// Runs experiment E2 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let mut u = ObjectUniverse::new();
    u.add_object(FetchIncrement::new());

    let max_q = if quick { 6 } else { 40 };
    let mut growth = Table::new(
        "E2 — Section 3.2 counterexample: prefixes of the paradoxical fetch&inc history",
        &[
            "events",
            "0-linearizable",
            "1-linearizable",
            "2-linearizable",
            "weakly consistent",
            "min stabilization t",
            "kernel nodes (t=2)",
        ],
    );
    for q_ops in (1..=max_q).step_by(if quick { 1 } else { 4 }) {
        let h = section_3_2_history(q_ops);
        // Search effort of the generic kernel at t = 2 (the verdict itself is
        // cross-checked against the specialized fetch&inc decision procedure).
        let (witness, stats) = t_linearizability::t_linearization_with_stats(&h, &u, 2);
        assert_eq!(
            witness.is_some(),
            fi::is_t_linearizable(&h, 0, 2).unwrap(),
            "kernel and specialized checker disagree at {} events",
            h.len()
        );
        growth.push_row([
            h.len().to_string(),
            fi::is_t_linearizable(&h, 0, 0).unwrap().to_string(),
            fi::is_t_linearizable(&h, 0, 1).unwrap().to_string(),
            fi::is_t_linearizable(&h, 0, 2).unwrap().to_string(),
            weak_consistency::is_weakly_consistent(&h, &u).to_string(),
            fi::min_stabilization(&h, 0).unwrap().to_string(),
            stats.nodes.to_string(),
        ]);
    }

    // Classification table: which conditions behave as safety properties on
    // this family of histories.
    let h = section_3_2_history(if quick { 6 } else { 20 });
    let mut classification = Table::new(
        "E2b — prefix closure of the consistency conditions on the counterexample",
        &[
            "property",
            "holds on full history",
            "prefix-closed on this history",
        ],
    );
    let wc_closure =
        safety::check_prefix_closure(&h, |p| weak_consistency::is_weakly_consistent(p, &u));
    classification.push_row([
        "weak consistency".to_string(),
        weak_consistency::is_weakly_consistent(&h, &u).to_string(),
        format!("{wc_closure:?}"),
    ]);
    let t2_closure =
        safety::check_prefix_closure(&h, |p| t_linearizability::is_t_linearizable(p, &u, 2));
    classification.push_row([
        "2-linearizability".to_string(),
        t_linearizability::is_t_linearizable(&h, &u, 2).to_string(),
        format!("{t2_closure:?}"),
    ]);
    let lin_closure =
        safety::check_prefix_closure(&h, |p| t_linearizability::is_t_linearizable(p, &u, 0));
    classification.push_row([
        "linearizability".to_string(),
        t_linearizability::is_t_linearizable(&h, &u, 0).to_string(),
        format!("{lin_closure:?}"),
    ]);

    vec![growth, classification]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_behave_as_the_paper_says() {
        let tables = run(true);
        assert_eq!(tables.len(), 2);
        for row in &tables[0].rows {
            assert_eq!(row[1], "false", "never 0-linearizable");
            assert_eq!(row[2], "false", "never 1-linearizable");
            assert_eq!(row[3], "true", "always 2-linearizable");
            assert_eq!(row[4], "true", "always weakly consistent");
            assert_eq!(row[5], "2", "stabilization index is exactly 2");
        }
    }

    #[test]
    fn history_builder_matches_the_paper() {
        let h = section_3_2_history(3);
        assert_eq!(h.len(), 8);
        let ops = h.complete_operations();
        assert_eq!(ops[0].response, Some(Value::from(0i64)));
        assert_eq!(ops[1].response, Some(Value::from(0i64)));
        assert_eq!(ops[3].response, Some(Value::from(2i64)));
    }
}
