//! E6 — Proposition 15 and Corollary 19: registers (and eventually
//! linearizable objects) cannot be combined into consensus-power objects.
//!
//! Two executable views of the impossibility:
//!
//! 1. **Valency analysis.**  A bivalence-preserving adversary is run against
//!    two-process consensus implementations.  For the compare&swap-based
//!    implementation the walk hits a critical configuration almost
//!    immediately (the decisive step is the CAS, matching the classical
//!    argument); for the register-only Proposition 16 algorithm the adversary
//!    either keeps the execution bivalent or the algorithm pays for
//!    termination with disagreement — it never combines agreement, validity
//!    and termination, which is what Proposition 15 forbids.
//!
//! 2. **Corollary 19.**  The register-only gossip fetch&increment keeps
//!    producing duplicate responses arbitrarily late, so its minimal
//!    stabilization index grows with the execution instead of settling — no
//!    eventually linearizable register-only fetch&increment exists.

use crate::Table;
use evlin_algorithms::{
    CasConsensusSim, CasFetchInc, GossipFetchInc, NoisyPrefixFetchInc, Prop16Consensus,
};
use evlin_checker::fi;
use evlin_sim::explorer::ExploreOptions;
use evlin_sim::prelude::*;
use evlin_sim::valency::{bivalence_walk, check_consensus};
use evlin_spec::{FetchIncrement, Value};

/// Runs experiment E6 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let proposals = [Value::from(0i64), Value::from(1i64)];
    let lookahead = if quick { 20 } else { 28 };
    let max_configs = if quick { 60_000 } else { 300_000 };
    let max_walk = if quick { 16 } else { 40 };

    let mut valency = Table::new(
        "E6 — bivalence-preserving adversary against 2-process consensus implementations",
        &[
            "implementation",
            "base objects",
            "agreement (exhaustive)",
            "walk outcome",
            "bivalent steps",
        ],
    );

    {
        let imp = CasConsensusSim::new(2);
        let check = check_consensus(&imp, &proposals, ExploreOptions::default());
        let walk = bivalence_walk(&imp, &proposals, lookahead, max_configs, max_walk);
        valency.push_row([
            "compare&swap consensus".to_string(),
            "compare&swap".to_string(),
            check.is_correct().to_string(),
            format!("{:?}", walk.ended),
            walk.bivalent_steps.to_string(),
        ]);
    }
    {
        let imp = Prop16Consensus::new(2);
        let check = check_consensus(&imp, &proposals, ExploreOptions::default());
        let walk = bivalence_walk(&imp, &proposals, lookahead, max_configs, max_walk);
        valency.push_row([
            "Prop16 consensus (registers only)".to_string(),
            "registers".to_string(),
            check.is_correct().to_string(),
            format!("{:?}", walk.ended),
            walk.bivalent_steps.to_string(),
        ]);
    }

    // Corollary 19: stabilization index growth of register-only vs CAS-based
    // fetch&increment implementations.
    let mut cor19 = Table::new(
        "E6b — Corollary 19: stabilization index as the execution grows (2 processes, round-robin)",
        &[
            "ops per process",
            "history events",
            "gossip (registers): min t",
            "gossip: t / events",
            "noisy-prefix (CAS, warm-up 4): min t",
            "cas loop: min t",
        ],
    );
    let sizes: Vec<usize> = if quick {
        vec![2, 4, 8]
    } else {
        vec![2, 4, 8, 16, 32, 64]
    };
    for &ops in &sizes {
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), ops);
        let run_one = |imp: &dyn evlin_sim::program::Implementation| {
            let mut s = RoundRobinScheduler::new();
            evlin_sim::runner::run(imp, &w, &mut s, 1_000_000).history
        };
        let gossip_history = run_one(&GossipFetchInc::new(2));
        let noisy_history = run_one(&NoisyPrefixFetchInc::new(2, 4));
        let cas_history = run_one(&CasFetchInc::new(2));
        let gossip_t = fi::min_stabilization(&gossip_history, 0).unwrap();
        cor19.push_row([
            ops.to_string(),
            gossip_history.len().to_string(),
            gossip_t.to_string(),
            format!("{:.2}", gossip_t as f64 / gossip_history.len() as f64),
            fi::min_stabilization(&noisy_history, 0)
                .unwrap()
                .to_string(),
            fi::min_stabilization(&cas_history, 0).unwrap().to_string(),
        ]);
    }

    vec![valency, cor19]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cas_consensus_reaches_a_critical_configuration_and_registers_do_not_solve_consensus() {
        let tables = run(true);
        let valency = &tables[0];
        let cas_row = &valency.rows[0];
        assert_eq!(cas_row[2], "true", "CAS consensus is correct");
        assert!(cas_row[3].contains("Critical"));
        let reg_row = &valency.rows[1];
        // The register-only algorithm cannot be a correct consensus object:
        // exhaustive checking finds an agreement violation.
        assert_eq!(reg_row[2], "false");
    }

    #[test]
    fn gossip_stabilization_chases_the_history_while_cas_stays_at_zero() {
        let tables = run(true);
        let cor19 = &tables[1];
        let gossip_ts: Vec<usize> = cor19.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        assert!(gossip_ts.windows(2).all(|w| w[1] >= w[0]));
        assert!(*gossip_ts.last().unwrap() > *gossip_ts.first().unwrap());
        for row in &cor19.rows {
            assert_eq!(row[5], "0", "the CAS loop is linearizable");
            let noisy_t: usize = row[4].parse().unwrap();
            let events: usize = row[1].parse().unwrap();
            // The noisy-prefix implementation stabilizes: its index is capped
            // by the warm-up, not by the history length.
            assert!(noisy_t <= 20 || noisy_t * 2 < events);
        }
    }
}
