//! E8 — the introduction's motivation: eventual consistency buys throughput
//! for reference counting under contention.
//!
//! Real threads hammer three counters — the linearizable compare&swap retry
//! loop, the linearizable hardware `fetch_add`, and the eventually consistent
//! sharded counter — across a sweep of thread counts.  For each configuration
//! the table reports throughput, whether any increment was lost (never), how
//! many responses were stale duplicates and the maximal observed staleness;
//! a second, smaller recorded run feeds the histories to the offline checkers
//! to connect the measurements back to the formal definitions.

use crate::Table;
use evlin_checker::fi;
use evlin_runtime::counter::{CasCounter, ConcurrentCounter, FetchAddCounter, ShardedCounter};
use evlin_runtime::harness::{run_counter_workload, HarnessOptions};

fn counters(threads: usize) -> Vec<Box<dyn ConcurrentCounter>> {
    vec![
        Box::new(CasCounter::new()),
        Box::new(FetchAddCounter::new()),
        Box::new(ShardedCounter::new(threads, 64)),
    ]
}

/// Runs experiment E8 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let thread_counts: Vec<usize> = if quick { vec![1, 2] } else { vec![1, 2, 4, 8] };
    let ops = if quick { 5_000 } else { 200_000 };

    let mut throughput = Table::new(
        "E8 — counter throughput under contention (real threads, recording off)",
        &[
            "threads",
            "counter",
            "ops",
            "throughput (Mops/s)",
            "increments lost",
            "duplicate responses",
            "max staleness",
        ],
    );
    for &threads in &thread_counts {
        for counter in counters(threads) {
            let run = run_counter_workload(
                counter.as_ref(),
                HarnessOptions {
                    threads,
                    ops_per_thread: ops,
                    record_history: false,
                },
            );
            let lost = run.total_ops as i64 - run.final_total;
            throughput.push_row([
                threads.to_string(),
                counter.name().to_string(),
                run.total_ops.to_string(),
                format!("{:.2}", run.throughput / 1.0e6),
                lost.to_string(),
                run.duplicate_responses.to_string(),
                run.max_staleness.to_string(),
            ]);
        }
    }

    // Recorded runs: connect the raw measurements back to the consistency
    // definitions with the offline fetch&increment checker.
    let record_threads = if quick { 2 } else { 4 };
    let record_ops = if quick { 300 } else { 3_000 };
    let mut recorded = Table::new(
        "E8b — recorded runs checked offline",
        &[
            "counter",
            "ops",
            "linearizable",
            "min stabilization t",
            "history events",
        ],
    );
    for counter in counters(record_threads) {
        let run = run_counter_workload(
            counter.as_ref(),
            HarnessOptions {
                threads: record_threads,
                ops_per_thread: record_ops,
                record_history: true,
            },
        );
        let history = run.history.expect("recording enabled");
        let linearizable = fi::is_linearizable(&history, 0).unwrap();
        let t = fi::min_stabilization(&history, 0).unwrap();
        recorded.push_row([
            counter.name().to_string(),
            run.total_ops.to_string(),
            linearizable.to_string(),
            t.to_string(),
            history.len().to_string(),
        ]);
    }

    vec![throughput, recorded]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_counter_ever_loses_increments() {
        let tables = run(true);
        for row in &tables[0].rows {
            assert_eq!(row[4], "0", "increments must never be lost: {row:?}");
        }
    }

    #[test]
    fn linearizable_counters_produce_linearizable_histories() {
        let tables = run(true);
        for row in &tables[1].rows {
            if row[0] == "cas-loop" || row[0] == "fetch-add" {
                assert_eq!(row[2], "true", "{row:?}");
                assert_eq!(row[3], "0", "{row:?}");
            }
        }
    }
}
