//! The experiments of EXPERIMENTS.md, one module per experiment.
//!
//! Every function returns [`crate::Table`]s; the `experiments` binary prints
//! them and EXPERIMENTS.md records a reference run.

pub mod e01_prop16_consensus;
pub mod e02_safety_counterexample;
pub mod e03_locality;
pub mod e04_local_copy;
pub mod e05_triviality;
pub mod e06_valency;
pub mod e07_stability;
pub mod e08_counter_contention;
pub mod e09_fig1_wrapper;
pub mod e10_checker_scaling;
pub mod e11_online_monitor;
pub mod e12_reduction;
pub mod e14_service_saturation;
pub mod e15_fault_stabilization;
pub mod e16_pipelined_ingest;
pub mod e17_out_of_core;

use crate::Table;

/// Runs one experiment by id (`"e1"` … `"e12"`, `"e14"` … `"e17"`), or all of
/// them for `"all"`.
/// `quick` reduces workload sizes so the suite finishes quickly (used by
/// tests).
pub fn run(id: &str, quick: bool) -> Option<Vec<Table>> {
    match id {
        "e1" => Some(e01_prop16_consensus::run(quick)),
        "e2" => Some(e02_safety_counterexample::run(quick)),
        "e3" => Some(e03_locality::run(quick)),
        "e4" => Some(e04_local_copy::run(quick)),
        "e5" => Some(e05_triviality::run(quick)),
        "e6" => Some(e06_valency::run(quick)),
        "e7" => Some(e07_stability::run(quick)),
        "e8" => Some(e08_counter_contention::run(quick)),
        "e9" => Some(e09_fig1_wrapper::run(quick)),
        "e10" => Some(e10_checker_scaling::run(quick)),
        "e11" => Some(e11_online_monitor::run(quick)),
        "e12" => Some(e12_reduction::run(quick)),
        "e14" => Some(e14_service_saturation::run(quick)),
        "e15" => Some(e15_fault_stabilization::run(quick)),
        "e16" => Some(e16_pipelined_ingest::run(quick)),
        "e17" => Some(e17_out_of_core::run(quick)),
        "all" => {
            let mut all = Vec::new();
            for id in IDS {
                all.extend(run(id, quick).expect("known id"));
            }
            Some(all)
        }
        _ => None,
    }
}

/// The known experiment identifiers, in order.
pub const IDS: [&str; 16] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e14", "e15", "e16",
    "e17",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_id_is_rejected() {
        assert!(run("e99", true).is_none());
        assert!(run("", true).is_none());
    }

    #[test]
    fn every_id_is_routed() {
        for id in IDS {
            // Only check routing here (not executing): each module has its own
            // test that actually runs it in quick mode.
            assert!(matches!(id.as_bytes()[0], b'e'));
        }
    }
}
