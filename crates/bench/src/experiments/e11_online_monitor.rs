//! E11 — online consistency monitoring of real-thread counters.
//!
//! E8 measured the counters and then checked their recorded histories
//! *offline*, which caps the experiment at whatever fits in one post-hoc
//! batch.  This experiment closes the loop the paper's motivation implies:
//! eventual linearizability is a property you observe *while* the contended
//! fetch&increment counter runs.  A streaming recorder feeds every event
//! through a bounded SPSC channel into `evlin_checker::monitor::Monitor`,
//! which partitions the stream at quiescent cuts, checks each closed segment
//! (fetch&increment segments take the near-linear `fi` fast path) and
//! garbage-collects verified prefixes — so a million-operation run is
//! checked with a resident event window orders of magnitude smaller than the
//! history, at a sustained checked-ops/sec rate reported in the table (and
//! tracked by the `monitor_throughput` bench + CI `bench-gate`).

use crate::Table;
use evlin_checker::monitor::{MonitorConfig, MonitorVerdict};
use evlin_runtime::counter::{CasCounter, ConcurrentCounter, FetchAddCounter, ShardedCounter};
use evlin_runtime::harness::{
    run_counter_workload_monitored, run_counter_workload_pipelined, HarnessOptions, PipelineOptions,
};

fn counters(threads: usize) -> Vec<Box<dyn ConcurrentCounter>> {
    vec![
        Box::new(CasCounter::new()),
        Box::new(FetchAddCounter::new()),
        Box::new(ShardedCounter::new(threads, 64)),
    ]
}

fn verdict_label(verdict: &MonitorVerdict) -> String {
    match verdict {
        MonitorVerdict::Ok => "linearizable".to_string(),
        MonitorVerdict::Violation(v) => format!(
            "violation @ events [{}, {})",
            v.segment_start,
            v.segment_start + v.segment_len
        ),
        MonitorVerdict::Unknown => "unknown".to_string(),
    }
}

/// Runs experiment E11 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let threads = if quick { 2 } else { 4 };
    let ops_per_thread = if quick { 2_000 } else { 250_000 };
    let mut table = Table::new(
        "E11 — online monitoring of real-thread fetch&increment counters \
         (streaming recorder → bounded channel → quiescent-cut monitor)",
        &[
            "counter",
            "ops",
            "events",
            "verdict",
            "checked ops/s",
            "peak window (events)",
            "window / history",
            "segments",
            "fast-path segments",
        ],
    );
    let config = MonitorConfig {
        // Amortize per-segment setup without growing the window much.
        min_segment_events: 256,
        segment_batch: 8,
        ..MonitorConfig::default()
    };
    for counter in counters(threads) {
        let out = run_counter_workload_monitored(
            counter.as_ref(),
            HarnessOptions {
                threads,
                ops_per_thread,
                record_history: true, // ignored: events stream to the monitor
            },
            config,
            8192,
        );
        let stats = &out.report.stats;
        table.push_row([
            counter.name().to_string(),
            out.run.total_ops.to_string(),
            stats.events.to_string(),
            verdict_label(&out.report.verdict),
            format!("{:.0}", out.checked_ops_per_sec()),
            stats.peak_window_events.to_string(),
            format!(
                "{:.4}",
                stats.peak_window_events as f64 / stats.events.max(1) as f64
            ),
            stats.segments.to_string(),
            stats.fast_path_segments.to_string(),
        ]);
    }
    // The pipelined dataflow of E16 on the same workloads: sharded
    // frame-batched recording, k-way merge, staged monitor.  Same verdicts
    // (bit-identical by the differential suite), several times the
    // checked-ops/s — the ≥5× end-to-end speedup the pipelined-ingest work
    // gates on lives in these rows (see BENCH_checker.json and E16).
    for counter in counters(threads) {
        let out = run_counter_workload_pipelined(
            counter.as_ref(),
            HarnessOptions {
                threads,
                ops_per_thread,
                record_history: false,
            },
            config,
            PipelineOptions::default(),
        );
        let stats = &out.report.stats;
        table.push_row([
            format!("{} [pipelined]", counter.name()),
            out.run.total_ops.to_string(),
            stats.events.to_string(),
            verdict_label(&out.report.verdict),
            format!("{:.0}", out.checked_ops_per_sec()),
            stats.peak_window_events.to_string(),
            format!(
                "{:.4}",
                stats.peak_window_events as f64 / stats.events.max(1) as f64
            ),
            stats.segments.to_string(),
            stats.fast_path_segments.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearizable_counters_verify_online_and_nothing_is_unknown() {
        let tables = run(true);
        let rows = &tables[0].rows;
        // Three counters on the single-channel path, three on the pipelined.
        assert_eq!(rows.len(), 6);
        for row in rows {
            assert_ne!(row[3], "unknown", "{row:?}");
            if row[0].starts_with("cas-loop") || row[0].starts_with("fetch-add") {
                assert_eq!(row[3], "linearizable", "{row:?}");
            }
        }
    }

    #[test]
    fn window_is_bounded_by_cut_spacing_not_history_length() {
        // Real-thread runs have workload-dependent quiescence, so the window
        // bound is asserted on a deterministic synthetic stream: rounds of 4
        // overlapping fetch&inc operations, one quiescent cut per round.
        use evlin_checker::monitor::{Monitor, MonitorConfig};
        use evlin_history::{HistoryBuilder, ObjectUniverse, ProcessId};
        use evlin_spec::{FetchIncrement, Value};
        let x = evlin_history::ObjectId(0);
        let mut b = HistoryBuilder::new();
        let mut value = 0i64;
        for _ in 0..1000 {
            for p in 0..4usize {
                b = b.invoke(ProcessId(p), x, FetchIncrement::fetch_inc());
            }
            for p in 0..4usize {
                b = b.respond(ProcessId(p), x, Value::from(value));
                value += 1;
            }
        }
        let mut universe = ObjectUniverse::new();
        universe.add_object(FetchIncrement::new());
        let mut monitor = Monitor::new(
            universe,
            MonitorConfig {
                min_segment_events: 64,
                segment_batch: 4,
                ..MonitorConfig::default()
            },
        );
        monitor.ingest_all(b.build()).expect("well-formed");
        let report = monitor.finish();
        assert!(report.verdict.is_ok(), "{report:?}");
        assert_eq!(report.stats.events, 8000);
        // Segments close every ~72 events and at most 4 queue before a
        // drain: the peak resident window is a small constant, not 8000.
        assert!(
            report.stats.peak_window_events <= 1024,
            "window must be bounded by cut spacing: {report:?}"
        );
    }
}
