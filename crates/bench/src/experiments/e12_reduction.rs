//! E12 — exploration reduction: sleep sets + process-symmetry
//! canonicalization vs the raw interleaving tree.
//!
//! Every exhaustive result in this repository (E4's Theorem 12 tables, the
//! Proposition 16/18 explorations, …) pays the combinatorial price of the
//! schedule tree.  This experiment measures what the `sim::engine` reduction
//! strategies buy on three families — the one-step local-copy
//! transformation (symmetry-heavy), the compare&swap fetch&increment
//! (symmetric with commuting reads) and the register-only gossip counter
//! (asymmetric but access-disjoint, sleep-set-heavy) — while asserting that
//! the verdicts (all/none of the terminal histories linearizable, all weakly
//! consistent) never change.  The hard family (4–5 symmetric processes) was
//! previously infeasible at full depth; with sleep sets + symmetry the
//! engine visits ≥ 5× fewer states (the acceptance bar; the measured factors
//! are far larger — see EXPERIMENTS.md for a reference run).

use crate::Table;
use evlin_algorithms::{CasFetchInc, GossipFetchInc};
use evlin_checker::{linearizability, weak_consistency};
use evlin_history::ObjectUniverse;
use evlin_sim::engine::{self, EngineOptions, ExploreOptions, Reduction, Visit};
use evlin_sim::program::{Implementation, LocalSpecImplementation};
use evlin_sim::workload::Workload;
use evlin_spec::{FetchIncrement, ObjectType};
use std::sync::Arc;

const STRATEGIES: [Reduction; 4] = [
    Reduction::None,
    Reduction::SleepSet,
    Reduction::Symmetry,
    Reduction::SleepSetSymmetry,
];

struct Family {
    name: String,
    implementation: Box<dyn Implementation>,
    workload: Workload,
    limits: ExploreOptions,
    /// Whether this row belongs to the "hard" ≥4-symmetric-process family
    /// the acceptance criterion quantifies over.
    hard: bool,
}

fn families(quick: bool) -> Vec<Family> {
    let fi: Arc<dyn ObjectType> = Arc::new(FetchIncrement::new());
    let mut out = Vec::new();
    // Local-copy fetch&increment: one-step operations, fully symmetric — the
    // n! orbit merging carries the reduction.
    let local_sizes: &[usize] = if quick { &[3, 4] } else { &[3, 4, 5] };
    for &n in local_sizes {
        out.push(Family {
            name: format!("local-copy fetch&inc ({n}p × 2 ops)"),
            implementation: Box::new(LocalSpecImplementation::new(fi.clone(), n)),
            workload: Workload::uniform(n, FetchIncrement::fetch_inc(), 2),
            limits: ExploreOptions {
                max_depth: 2 * n,
                max_configs: 4_000_000,
            },
            hard: n >= 4,
        });
    }
    // Compare&swap fetch&increment: symmetric, multi-step, one shared CAS
    // object whose read steps commute.  The 4-process full-depth row is the
    // previously-infeasible config this PR exists for: the raw tree has
    // ~29M states (its terminal histories are far past collecting), the
    // reduced engine visits ~16k.
    let cas_sizes: &[(usize, usize)] = if quick {
        &[(2, 2), (3, 1)]
    } else {
        &[(2, 2), (3, 1), (4, 1)]
    };
    for &(n, ops) in cas_sizes {
        out.push(Family {
            name: format!("cas fetch&inc ({n}p × {ops} ops)"),
            implementation: Box::new(CasFetchInc::new(n)),
            workload: Workload::uniform(n, FetchIncrement::fetch_inc(), ops),
            limits: ExploreOptions {
                max_depth: if n >= 4 { 14 } else { 16 },
                max_configs: 40_000_000,
            },
            hard: n >= 4,
        });
    }
    // Gossip fetch&increment: asymmetric (vetoed by its symmetry marker) but
    // register-per-process, so sleep sets prune the commuting scans.
    let gossip_sizes: &[usize] = if quick { &[2] } else { &[2, 3] };
    for &n in gossip_sizes {
        out.push(Family {
            name: format!("gossip fetch&inc ({n}p × 1 op)"),
            implementation: Box::new(GossipFetchInc::new(n)),
            workload: Workload::uniform(n, FetchIncrement::fetch_inc(), 1),
            limits: ExploreOptions {
                max_depth: 4 * n,
                max_configs: 4_000_000,
            },
            hard: false,
        });
    }
    out
}

/// Above this many *distinct* terminal histories, a run stops collecting
/// them (verdict columns become `—`): the raw engine on the hard families
/// produces tens of millions of terminals, which is exactly the infeasibility
/// the reduction removes.
const COLLECT_CAP: usize = 200_000;

struct Run {
    stats: engine::ExploreStats,
    /// Distinct terminal histories and their verdicts (all linearizable, all
    /// weakly consistent); `None` when the run overflowed [`COLLECT_CAP`].
    checked: Option<(usize, bool, bool)>,
}

fn run_family(family: &Family, reduction: Reduction, universe: &ObjectUniverse) -> Run {
    let options = EngineOptions {
        limits: family.limits,
        reduction,
        ..EngineOptions::default()
    };
    let max_depth = family.limits.max_depth;
    let mut seen = std::collections::BTreeSet::new();
    let mut terminal_histories = Vec::new();
    let mut overflowed = false;
    let stats = engine::explore(
        family.implementation.as_ref(),
        &family.workload,
        &options,
        |config, depth| {
            if !overflowed && (config.enabled_processes().is_empty() || depth >= max_depth) {
                let h = config.history().clone();
                if seen.insert(format!("{h:?}")) {
                    terminal_histories.push(h);
                }
                if seen.len() > COLLECT_CAP {
                    overflowed = true;
                    seen.clear();
                    terminal_histories.clear();
                }
            }
            Visit::Continue
        },
    );
    assert!(
        !stats.truncated,
        "{}: truncated at {reduction:?}",
        family.name
    );
    let checked = (!overflowed).then(|| {
        (
            terminal_histories.len(),
            terminal_histories
                .iter()
                .all(|h| linearizability::is_linearizable(h, universe)),
            terminal_histories
                .iter()
                .all(|h| weak_consistency::is_weakly_consistent(h, universe)),
        )
    });
    Run { stats, checked }
}

/// Runs experiment E12 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let mut table = Table::new(
        "E12 — exploration reduction: states visited by strategy (identical verdicts asserted)",
        &[
            "family",
            "strategy",
            "states visited",
            "pruned",
            "terminals",
            "distinct histories",
            "reduction ×",
            "dedup KiB",
            "all linearizable",
            "all weakly consistent",
        ],
    );
    let mut universe = ObjectUniverse::new();
    universe.add_object(FetchIncrement::new());
    for family in families(quick) {
        let baseline = run_family(&family, Reduction::None, &universe);
        // The verdict every collected strategy must agree with: the raw
        // engine's when collectable, otherwise the first reduced strategy's
        // (raw-vs-reduced agreement on collectable configs is additionally
        // fuzzed by crates/sim/tests/reduction_differential.rs).
        let mut reference_verdict = baseline.checked.map(|(_, lin, wc)| (lin, wc));
        for reduction in STRATEGIES {
            let run = if reduction == Reduction::None {
                Run {
                    stats: baseline.stats,
                    checked: baseline.checked,
                }
            } else {
                run_family(&family, reduction, &universe)
            };
            if let Some((_, lin, wc)) = run.checked {
                match reference_verdict {
                    None => reference_verdict = Some((lin, wc)),
                    Some(expected) => assert_eq!(
                        (lin, wc),
                        expected,
                        "{}: {reduction:?} changed a verdict",
                        family.name
                    ),
                }
            }
            let factor = baseline.stats.visited as f64 / run.stats.visited.max(1) as f64;
            if family.hard && reduction == Reduction::SleepSetSymmetry {
                assert!(
                    factor >= 5.0,
                    "{}: hard family must reduce ≥5× (got {factor:.1}×)",
                    family.name
                );
            }
            let (distinct, lin, wc) = match run.checked {
                Some((d, lin, wc)) => (d.to_string(), lin.to_string(), wc.to_string()),
                None => (format!("> {COLLECT_CAP}"), "—".to_string(), "—".to_string()),
            };
            table.push_row([
                family.name.clone(),
                reduction.label().to_string(),
                run.stats.visited.to_string(),
                run.stats.pruned.to_string(),
                run.stats.terminals.to_string(),
                distinct,
                format!("{factor:.1}×"),
                // Peak engine bookkeeping: the dedup table's key bytes (0
                // when the strategy runs without deduplication).
                format!("{:.1}", run.stats.bytes_allocated as f64 / 1024.0),
                lin,
                wc,
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_factors_meet_the_acceptance_bar() {
        // `run` itself asserts verdict equality and the ≥5× bar on the hard
        // family; here additionally check the table shape and that the
        // combined strategy never does worse than no reduction.
        let tables = run(true);
        let table = &tables[0];
        assert_eq!(table.rows.len() % STRATEGIES.len(), 0);
        for chunk in table.rows.chunks(STRATEGIES.len()) {
            let baseline: usize = chunk[0][2].parse().unwrap();
            let combined: usize = chunk[3][2].parse().unwrap();
            assert!(
                combined <= baseline,
                "combined strategy regressed: {chunk:?}"
            );
        }
    }
}
