//! E7 — Lemma 17 / Proposition 18: turning an eventually linearizable
//! fetch&increment into a linearizable one.
//!
//! The stable-configuration search and freeze of `evlin-sim::stability` is
//! applied to fetch&increment implementations whose executions stabilize
//! after a warm-up; the frozen implementation `A′` is then model-checked
//! (bounded exhaustive exploration + random long runs) to confirm it is
//! linearizable, and the offset `v0` is reported.  The register-only gossip
//! implementation, by contrast, never yields a certifiably stable
//! configuration — consistent with Corollary 19.

use crate::Table;
use evlin_algorithms::{CasFetchInc, GossipFetchInc, NoisyPrefixFetchInc};
use evlin_checker::{fi, parallel};
use evlin_sim::explorer::{terminal_histories, ExploreOptions};
use evlin_sim::prelude::*;
use evlin_sim::program::Implementation;
use evlin_sim::stability::{stable_to_linearizable, StabilityOptions};
use evlin_spec::FetchIncrement;

fn verify_frozen(implementation: &dyn Implementation, quick: bool) -> (bool, usize) {
    // Bounded exhaustive exploration of small workloads…
    let explore = ExploreOptions {
        max_depth: if quick { 20 } else { 28 },
        max_configs: if quick { 60_000 } else { 300_000 },
    };
    let w = Workload::uniform(2, FetchIncrement::fetch_inc(), 2);
    let histories = terminal_histories(implementation, &w, explore);
    let mut checked = histories.len();
    // Batched, multi-core verdict over all terminal interleavings.
    let mut all_linearizable = parallel::fi_all_t_linearizable_par(&histories, 0, 0);
    // …plus longer random runs.
    let long_ops = if quick { 10 } else { 50 };
    for seed in 0..if quick { 5 } else { 20 } {
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), long_ops);
        let mut s = RandomScheduler::seeded(seed);
        let out = evlin_sim::runner::run(implementation, &w, &mut s, 1_000_000);
        checked += 1;
        all_linearizable &= out.completed_all && fi::is_linearizable(&out.history, 0) == Ok(true);
    }
    (all_linearizable, checked)
}

/// Runs experiment E7 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let options = StabilityOptions {
        extension_ops_per_process: 2,
        extension_depth: if quick { 24 } else { 32 },
        max_configs: if quick { 80_000 } else { 400_000 },
        solo_step_budget: 10_000,
        // Sleep sets shrink the extension trees without touching verdicts —
        // the compare&swap protocol's read steps commute across processes.
        reduction: Reduction::SleepSet,
        fault_budget: 0,
        ..StabilityOptions::default()
    };

    let mut table = Table::new(
        "E7 — Proposition 18: stable-configuration search and freeze (2 processes)",
        &[
            "implementation",
            "stable configuration found",
            "stabilization index |αC|",
            "offset v0",
            "frozen impl linearizable (all checks)",
            "histories/runs checked",
        ],
    );

    let warmups: Vec<i64> = if quick { vec![0, 3] } else { vec![0, 2, 4, 8] };
    for &warmup in &warmups {
        let imp = NoisyPrefixFetchInc::new(2, warmup);
        match stable_to_linearizable(&imp, 2, (warmup.max(1)) as usize, 0, &options) {
            Some(freeze) => {
                let (ok, checked) = verify_frozen(&freeze.implementation, quick);
                table.push_row([
                    format!("noisy-prefix (warm-up {warmup})"),
                    "true".to_string(),
                    freeze.stabilization_index.to_string(),
                    freeze.offset.to_string(),
                    ok.to_string(),
                    checked.to_string(),
                ]);
            }
            None => table.push_row([
                format!("noisy-prefix (warm-up {warmup})"),
                "false".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "0".to_string(),
            ]),
        }
    }
    {
        let imp = CasFetchInc::new(2);
        match stable_to_linearizable(&imp, 2, 1, 0, &options) {
            Some(freeze) => {
                let (ok, checked) = verify_frozen(&freeze.implementation, quick);
                table.push_row([
                    "cas loop (already linearizable)".to_string(),
                    "true".to_string(),
                    freeze.stabilization_index.to_string(),
                    freeze.offset.to_string(),
                    ok.to_string(),
                    checked.to_string(),
                ]);
            }
            None => table.push_row([
                "cas loop (already linearizable)".to_string(),
                "false".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                "0".to_string(),
            ]),
        }
    }
    {
        // Corollary 19 contrast: no stable configuration exists for the
        // register-only gossip implementation.
        let imp = GossipFetchInc::new(2);
        let found = stable_to_linearizable(&imp, 2, 2, 0, &options).is_some();
        table.push_row([
            "gossip (registers only)".to_string(),
            found.to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "0".to_string(),
        ]);
    }

    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freezing_works_for_stabilizing_implementations_only() {
        let tables = run(true);
        let rows = &tables[0].rows;
        // Noisy-prefix and CAS rows: stable configuration found and the
        // frozen implementation verified linearizable.
        for row in rows.iter().take(rows.len() - 1) {
            assert_eq!(row[1], "true", "stable configuration expected: {row:?}");
            assert_eq!(
                row[4], "true",
                "frozen implementation must be linearizable: {row:?}"
            );
        }
        // The gossip implementation never certifies a stable configuration.
        let last = rows.last().unwrap();
        assert_eq!(last[1], "false");
    }
}
