//! E5 — Definition 13 / Proposition 14: which deterministic types are
//! trivial, i.e. implementable without any inter-process communication.
//!
//! The triviality analysis of `evlin-spec` is run over a catalogue of types;
//! for each type the verdict is cross-checked against the operational
//! criterion of Proposition 14: the communication-free local-copy
//! implementation is linearizable on all interleavings of a small workload
//! exactly when the type is trivial.

use crate::Table;
use evlin_checker::parallel;
use evlin_history::ObjectUniverse;
use evlin_sim::explorer::{terminal_histories, ExploreOptions};
use evlin_sim::program::LocalSpecImplementation;
use evlin_sim::workload::Workload;
use evlin_spec::trivial::{analyze, BlindRegister, StickyGate, Triviality};
use evlin_spec::{
    Consensus, Counter, FetchIncrement, MaxRegister, ObjectType, Queue, Register, TestAndSet, Value,
};
use std::sync::Arc;

fn catalogue() -> Vec<(&'static str, Arc<dyn ObjectType>)> {
    vec![
        ("sticky-gate", Arc::new(StickyGate::new())),
        ("blind-register", Arc::new(BlindRegister::new())),
        ("register", Arc::new(Register::new(Value::from(0i64)))),
        ("max-register", Arc::new(MaxRegister::new())),
        ("counter", Arc::new(Counter::new())),
        ("fetch&increment", Arc::new(FetchIncrement::new())),
        ("test&set", Arc::new(TestAndSet::new())),
        ("consensus", Arc::new(Consensus::new())),
        ("queue", Arc::new(Queue::new())),
    ]
}

fn operational_check(ty: &Arc<dyn ObjectType>, options: ExploreOptions) -> bool {
    // All interleavings of 2 processes each performing 2 sampled operations.
    let invs: Vec<_> = ty.sample_invocations().into_iter().take(4).collect();
    if invs.is_empty() {
        return true;
    }
    // Each process performs the sampled operations, rotated by its own index,
    // so different processes exercise the operations from differently evolved
    // local states — enough to expose any state-dependence of the responses.
    let rotate = |by: usize| -> Vec<_> {
        let mut v = invs.clone();
        let shift = by % v.len();
        v.rotate_left(shift);
        v
    };
    let workload = Workload::new(vec![rotate(0), rotate(1)]);
    let implementation = LocalSpecImplementation::new(ty.clone(), 2);
    let mut universe = ObjectUniverse::new();
    universe.add_shared(ty.clone(), ty.initial_states()[0].clone());
    // Batched kernel checking across all cores: one verdict per terminal
    // interleaving, identical to the sequential per-history loop.
    let histories = terminal_histories(&implementation, &workload, options);
    parallel::check_histories_par(&histories, &universe)
        .into_iter()
        .all(|ok| ok)
}

/// Runs experiment E5 and returns its tables.
pub fn run(quick: bool) -> Vec<Table> {
    let state_limit = if quick { 64 } else { 256 };
    let options = ExploreOptions {
        max_depth: 16,
        max_configs: if quick { 50_000 } else { 200_000 },
    };
    let mut table = Table::new(
        "E5 — Definition 13 triviality analysis vs operational Proposition 14 check",
        &[
            "type",
            "deterministic",
            "trivial (Def. 13)",
            "witness / counterexample operation",
            "local-copy impl linearizable (operational)",
        ],
    );
    for (name, ty) in catalogue() {
        let verdict = analyze(ty.as_ref(), state_limit);
        let (trivial, witness) = match &verdict {
            Triviality::Trivial { responses } => (
                true,
                responses
                    .iter()
                    .next()
                    .map(|(op, r)| format!("{op} ↦ {r}"))
                    .unwrap_or_else(|| "(no operations)".into()),
            ),
            Triviality::NonTrivial {
                operation,
                response_a,
                response_b,
                ..
            } => (
                false,
                format!("{operation} returns {response_a} or {response_b}"),
            ),
            Triviality::NotDeterministic => (false, "not deterministic".into()),
        };
        let operational = operational_check(&ty, options);
        table.push_row([
            name.to_string(),
            ty.is_deterministic().to_string(),
            trivial.to_string(),
            witness,
            operational.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn definition_13_agrees_with_the_operational_criterion() {
        let tables = run(true);
        for row in &tables[0].rows {
            assert_eq!(row[1], "true", "all catalogue types are deterministic");
            assert_eq!(
                row[2], row[4],
                "Proposition 14: trivial iff the communication-free implementation is linearizable: {row:?}"
            );
        }
        // Sanity: the catalogue contains both trivial and non-trivial types.
        assert!(tables[0].rows.iter().any(|r| r[2] == "true"));
        assert!(tables[0].rows.iter().any(|r| r[2] == "false"));
    }
}
