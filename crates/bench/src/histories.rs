//! Shared history families for the checker-scaling experiment (E10) and the
//! `checker_scaling` bench.

use evlin_history::generator::{concurrentize, random_sequential_legal, WorkloadSpec};
use evlin_history::{History, HistoryBuilder, ObjectUniverse, ProcessId};
use evlin_spec::{FetchIncrement, MaxRegister, Queue, Register, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A universe with `objects` shared objects, alternating registers and
/// fetch&increment counters.
pub fn mixed_universe(objects: usize) -> ObjectUniverse {
    let mut universe = ObjectUniverse::new();
    for k in 0..objects {
        if k % 2 == 0 {
            universe.add_object(Register::new(Value::from(0i64)));
        } else {
            universe.add_object(FetchIncrement::new());
        }
    }
    universe
}

/// A random linearizable-by-construction history spreading `ops` operations
/// over every object of `universe` — the *easy* multi-object family: a
/// witness exists and greedy search finds it quickly, so this family
/// measures the locality pre-pass's overhead, not its payoff.
pub fn random_linearizable(universe: &ObjectUniverse, ops: usize, seed: u64) -> History {
    let mut rng = StdRng::seed_from_u64(seed);
    let seq = random_sequential_legal(
        universe,
        &WorkloadSpec {
            processes: 3,
            operations: ops,
        },
        &mut rng,
    );
    concurrentize(&seq, 3, &mut rng)
}

/// A universe with one FIFO queue and one max-register — the non-counter
/// family that keeps the kernel hot path gated on objects with structured
/// (list-valued) states and non-interchangeable operations, where neither
/// the fetch&increment fast path nor a trivial response pattern applies.
pub fn queue_universe() -> ObjectUniverse {
    let mut universe = ObjectUniverse::new();
    universe.add_object(Queue::new());
    universe.add_object(MaxRegister::new());
    universe
}

/// A random linearizable-by-construction queue/max-register history with
/// `ops` operations (the `checker/queue_linearizability` bench family and
/// its gate baselines).
pub fn random_queue_linearizable(universe: &ObjectUniverse, ops: usize, seed: u64) -> History {
    random_linearizable(universe, ops, seed)
}

/// The *hard* multi-object family: every object carries `writes` concurrent
/// writes of distinct values plus one overlapping read of a value nobody
/// wrote.  Each projection is unsatisfiable, but a whole-history search can
/// only conclude that after exhausting the *product* of the per-object
/// subset spaces, while the locality pre-pass exhausts the per-object
/// subspaces independently — the sum.  This is the worst case the
/// Herlihy–Wing locality decomposition is for: refutation-heavy,
/// multi-object checking (exactly what exhaustive exploration of buggy
/// implementations produces).
pub fn broken_per_object(objects: usize, writes: usize) -> (ObjectUniverse, History) {
    let mut universe = ObjectUniverse::new();
    let regs: Vec<_> = (0..objects)
        .map(|_| universe.add_object(Register::new(Value::from(0i64))))
        .collect();
    // Every operation overlaps every other (all invocations, then all
    // responses), so no precedence edges constrain the search.
    let mut b = HistoryBuilder::new();
    let mut process = 0usize;
    let mut responders: Vec<(usize, evlin_history::ObjectId, Value)> = Vec::new();
    for &r in &regs {
        b = b.invoke(ProcessId(process), r, Register::read());
        responders.push((process, r, Value::from((writes + 1) as i64)));
        process += 1;
        for v in 1..=writes {
            b = b.invoke(
                ProcessId(process),
                r,
                Register::write(Value::from(v as i64)),
            );
            responders.push((process, r, Value::Unit));
            process += 1;
        }
    }
    for (p, r, response) in responders {
        b = b.respond(ProcessId(p), r, response);
    }
    (universe, b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use evlin_checker::{is_linearizable, linearization_witness};

    #[test]
    fn easy_family_is_linearizable() {
        let u = mixed_universe(4);
        for seed in 0..3 {
            let h = random_linearizable(&u, 12, seed);
            assert!(is_linearizable(&h, &u));
            assert!(linearization_witness(&h, &u).is_some());
        }
    }

    #[test]
    fn queue_family_is_linearizable() {
        let u = queue_universe();
        for seed in 0..3 {
            let h = random_queue_linearizable(&u, 12, seed);
            assert!(!h.is_empty());
            assert!(is_linearizable(&h, &u));
        }
    }

    #[test]
    fn hard_family_is_unsatisfiable_per_object() {
        let (u, h) = broken_per_object(3, 3);
        assert_eq!(h.objects().len(), 3);
        assert!(!is_linearizable(&h, &u));
        // Every projection alone is already non-linearizable.
        for o in h.objects() {
            assert!(!is_linearizable(&h.project_object(o), &u));
        }
    }
}
