//! E1 bench: running the Proposition 16 consensus algorithm and computing the
//! stabilization index of its histories.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evlin_algorithms::Prop16Consensus;
use evlin_checker::t_linearizability;
use evlin_history::ObjectUniverse;
use evlin_sim::prelude::*;
use evlin_spec::{Consensus, Value};

fn proposals(n: usize) -> Workload {
    Workload::one_shot(
        (0..n)
            .map(|i| Consensus::propose(Value::from(i as i64)))
            .collect(),
    )
}

fn bench_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop16/run");
    for &n in &[2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let imp = Prop16Consensus::new(n);
            let w = proposals(n);
            b.iter(|| {
                let mut s = RoundRobinScheduler::new();
                let out = run(&imp, &w, &mut s, 1_000_000);
                assert!(out.completed_all);
                out.history.len()
            });
        });
    }
    group.finish();
}

fn bench_stabilization(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop16/min_stabilization");
    for &n in &[2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let imp = Prop16Consensus::new(n);
            let w = proposals(n);
            let mut s = SoloBurstScheduler::new(2);
            let out = run(&imp, &w, &mut s, 1_000_000);
            let mut u = ObjectUniverse::new();
            u.add_object(Consensus::new());
            b.iter(|| t_linearizability::min_stabilization(&out.history, &u, None));
        });
    }
    group.finish();
}

criterion_group!(consensus_stabilization, bench_run, bench_stabilization);
criterion_main!(consensus_stabilization);
