//! E14 bench: checked throughput of the sharded monitoring service.
//!
//! Reuses the E14 driver (`e14_service_saturation::run_service_saturation`):
//! four producer clients stream a 1024-object fetch&add workload over the
//! in-process transport into a replica pool of 1 or 4 shards.  Elements =
//! completed operations, so the printed rate is checked-ops/s — directly
//! comparable with `monitor/live` and `monitor/pipelined`.  The 1→4 gap is
//! the per-shard projection reduction (each replica projects only its own
//! objects out of every multi-object segment); see the module docs of
//! `e14_service_saturation` for why this holds even on one core.
//!
//! The CI `bench-gate` job compares both means against the baselines in
//! BENCH_checker.json (threaded-bench tolerance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evlin_bench::experiments::e14_service_saturation::run_service_saturation;

fn bench_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/saturation");
    let clients = 4usize;
    let objects = 1024usize;
    let total_ops = 40_000usize;
    for &shards in &[1usize, 4] {
        group.throughput(Throughput::Elements(total_ops as u64));
        group.sample_size(10);
        group.bench_with_input(
            BenchmarkId::new(format!("s{shards}"), total_ops),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let run = run_service_saturation(clients, objects, total_ops, shards, None);
                    assert!(run.report.verdict.is_ok());
                    assert_eq!(run.report.checked_ops(), total_ops as u64);
                    run.report
                });
            },
        );
    }
    group.finish();
}

criterion_group!(service_saturation, bench_saturation);
criterion_main!(service_saturation);
