//! E12 bench: exhaustive-exploration scaling under the reduction engine.
//!
//! Measures the `sim::engine` strategies (none / sleep-set /
//! sleep-set+symmetry) on the two symmetric families of experiment E12, by
//! process count:
//!
//! * the one-step local-copy fetch&increment (symmetry carries the
//!   reduction — the raw tree grows with the multinomial of the schedule,
//!   the reduced one with the partition count);
//! * the compare&swap fetch&increment (multi-step, one shared object,
//!   commuting read/failed-cas steps).
//!
//! The `explore/…` means recorded in BENCH_checker.json's `gate` object are
//! enforced by CI's bench-gate job: a regression here means the engine (or a
//! strategy) got slower.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evlin_algorithms::CasFetchInc;
use evlin_sim::engine::{self, EngineOptions, ExploreOptions, Reduction, Visit};
use evlin_sim::program::{Implementation, LocalSpecImplementation};
use evlin_sim::workload::Workload;
use evlin_spec::FetchIncrement;
use std::sync::Arc;

fn explore_once(
    implementation: &dyn Implementation,
    workload: &Workload,
    limits: ExploreOptions,
    reduction: Reduction,
) -> usize {
    let stats = engine::explore(
        implementation,
        workload,
        &EngineOptions {
            limits,
            workers: Some(1),
            reduction,
            ..EngineOptions::default()
        },
        |_, _| Visit::Continue,
    );
    assert!(!stats.truncated);
    stats.visited
}

const STRATEGIES: [(&str, Reduction); 3] = [
    ("none", Reduction::None),
    ("sleep", Reduction::SleepSet),
    ("sleepsym", Reduction::SleepSetSymmetry),
];

/// Local-copy fetch&increment, 2 ops per process, by process count.
fn bench_local_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore/local");
    for &n in &[3usize, 4] {
        let implementation = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), n);
        let workload = Workload::uniform(n, FetchIncrement::fetch_inc(), 2);
        let limits = ExploreOptions {
            max_depth: 2 * n,
            max_configs: 4_000_000,
        };
        for (label, reduction) in STRATEGIES {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| explore_once(&implementation, &workload, limits, reduction));
            });
        }
    }
    group.finish();
}

/// Compare&swap fetch&increment, one op per process, by process count.
fn bench_cas(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore/cas");
    group.sample_size(10);
    for &n in &[2usize, 3] {
        let implementation = CasFetchInc::new(n);
        let workload = Workload::uniform(n, FetchIncrement::fetch_inc(), 1);
        let limits = ExploreOptions {
            max_depth: 4 + 4 * n,
            max_configs: 4_000_000,
        };
        for (label, reduction) in STRATEGIES {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| explore_once(&implementation, &workload, limits, reduction));
            });
        }
    }
    group.finish();
}

criterion_group!(exploration_scaling, bench_local_copy, bench_cas);
criterion_main!(exploration_scaling);
