//! E12 bench: exhaustive-exploration scaling under the reduction engine.
//!
//! Measures the `sim::engine` strategies (none / sleep-set /
//! sleep-set+symmetry) on the two symmetric families of experiment E12, by
//! process count:
//!
//! * the one-step local-copy fetch&increment (symmetry carries the
//!   reduction — the raw tree grows with the multinomial of the schedule,
//!   the reduced one with the partition count);
//! * the compare&swap fetch&increment (multi-step, one shared object,
//!   commuting read/failed-cas steps);
//! * the fault-bounded tree (`explore/faults/k{0,1,2}`): the local-copy
//!   family under `SleepSetSymmetry` with a transient-fault budget.  The
//!   `k0` entry is gated at ±5% (per-entry tolerance in BENCH_checker.json):
//!   a zero budget must keep the fault machinery out of the hot path.
//!
//! The `explore/…` means recorded in BENCH_checker.json's `gate` object are
//! enforced by CI's bench-gate job: a regression here means the engine (or a
//! strategy) got slower.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evlin_algorithms::CasFetchInc;
use evlin_sim::checkpoint;
use evlin_sim::engine::{self, EngineOptions, ExploreOptions, Reduction, Visit};
use evlin_sim::program::{Implementation, LocalSpecImplementation};
use evlin_sim::store::StoreConfig;
use evlin_sim::workload::Workload;
use evlin_spec::FetchIncrement;
use std::sync::Arc;

fn explore_once(
    implementation: &dyn Implementation,
    workload: &Workload,
    limits: ExploreOptions,
    reduction: Reduction,
) -> usize {
    explore_faulty(implementation, workload, limits, reduction, 0)
}

fn explore_faulty(
    implementation: &dyn Implementation,
    workload: &Workload,
    limits: ExploreOptions,
    reduction: Reduction,
    fault_budget: usize,
) -> usize {
    let stats = engine::explore(
        implementation,
        workload,
        &EngineOptions {
            limits,
            workers: Some(1),
            reduction,
            fault_budget,
            ..EngineOptions::default()
        },
        |_, _| Visit::Continue,
    );
    assert!(!stats.truncated);
    stats.visited
}

const STRATEGIES: [(&str, Reduction); 3] = [
    ("none", Reduction::None),
    ("sleep", Reduction::SleepSet),
    ("sleepsym", Reduction::SleepSetSymmetry),
];

/// Local-copy fetch&increment, 2 ops per process, by process count.
fn bench_local_copy(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore/local");
    for &n in &[3usize, 4] {
        let implementation = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), n);
        let workload = Workload::uniform(n, FetchIncrement::fetch_inc(), 2);
        let limits = ExploreOptions {
            max_depth: 2 * n,
            max_configs: 4_000_000,
        };
        for (label, reduction) in STRATEGIES {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| explore_once(&implementation, &workload, limits, reduction));
            });
        }
    }
    group.finish();
}

/// Compare&swap fetch&increment, one op per process, by process count.
fn bench_cas(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore/cas");
    group.sample_size(10);
    for &n in &[2usize, 3] {
        let implementation = CasFetchInc::new(n);
        let workload = Workload::uniform(n, FetchIncrement::fetch_inc(), 1);
        let limits = ExploreOptions {
            max_depth: 4 + 4 * n,
            max_configs: 4_000_000,
        };
        for (label, reduction) in STRATEGIES {
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| explore_once(&implementation, &workload, limits, reduction));
            });
        }
    }
    group.finish();
}

/// Local-copy fetch&increment, 3 processes × 2 ops, by transient-fault
/// budget under the combined strategy (the E15 configuration).  `k0` is the
/// ≤5%-overhead gate: with a zero budget the engine must not pay for the
/// fault layer at all.
fn bench_faults(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore/faults");
    let n = 3usize;
    let implementation = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), n);
    let workload = Workload::uniform(n, FetchIncrement::fetch_inc(), 2);
    for k in [0usize, 1, 2] {
        let limits = ExploreOptions {
            max_depth: 2 * n + k,
            max_configs: 4_000_000,
        };
        group.bench_with_input(
            BenchmarkId::new(format!("k{k}"), n),
            &k,
            |b, &fault_budget| {
                b.iter(|| {
                    explore_faulty(
                        &implementation,
                        &workload,
                        limits,
                        Reduction::SleepSetSymmetry,
                        fault_budget,
                    )
                });
            },
        );
    }
    group.finish();
}

/// Visited-store backends on the 4-process local-copy SleepSetSymmetry
/// walk (the `explore/local/sleepsym/4` configuration with deduplication
/// explicit).  `mem` is the ≤5%-overhead gate for routing the hot path
/// through the `VisitedStore` trait; `spill` prices the out-of-core
/// backend (every iteration builds a fresh temp-dir store, flushes runs
/// and probes them, then deletes the directory on drop); `partitioned`
/// prices the fingerprint-range partitioner (2 partitions, in-memory
/// stores, cross-partition edges exported and replayed).
fn bench_store(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore/store");
    let n = 4usize;
    let implementation = LocalSpecImplementation::new(Arc::new(FetchIncrement::new()), n);
    let workload = Workload::uniform(n, FetchIncrement::fetch_inc(), 2);
    let limits = ExploreOptions {
        max_depth: 2 * n,
        max_configs: 4_000_000,
    };
    let options = |store: StoreConfig| EngineOptions {
        limits,
        workers: Some(1),
        reduction: Reduction::SleepSetSymmetry,
        dedup: true,
        store,
        ..EngineOptions::default()
    };
    for (label, store) in [
        ("mem", StoreConfig::Mem),
        (
            "spill",
            StoreConfig::Spill {
                shards_log2: 3,
                shard_budget: 512,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
            b.iter(|| {
                let stats = engine::explore(&implementation, &workload, &options(store), |_, _| {
                    Visit::Continue
                });
                assert!(!stats.truncated);
                stats.visited
            });
        });
    }
    group.bench_with_input(BenchmarkId::new("partitioned", n), &n, |b, _| {
        b.iter(|| {
            let run = checkpoint::explore_partitioned(
                &implementation,
                &workload,
                &options(StoreConfig::Mem),
                1,
                |_, _| Visit::Continue,
            )
            .expect("partitioned exploration");
            run.total.visited
        });
    });
    group.finish();
}

criterion_group!(
    exploration_scaling,
    bench_local_copy,
    bench_cas,
    bench_faults,
    bench_store
);
criterion_main!(exploration_scaling);
