//! E7 bench: the cost of the Proposition 18 stable-configuration search and
//! freeze, as a function of the warm-up length of the eventually linearizable
//! fetch&increment implementation.
//!
//! The stability check batches terminal extension histories and verdicts
//! them through `evlin_checker::parallel::fi_all_t_linearizable_par`, so this
//! bench also tracks the batched-checking path end to end (numbers are
//! recorded in `BENCH_checker.json`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evlin_algorithms::NoisyPrefixFetchInc;
use evlin_sim::stability::{stable_to_linearizable, StabilityOptions};

fn bench_stability(c: &mut Criterion) {
    let mut group = c.benchmark_group("prop18/stable_to_linearizable");
    group.sample_size(10);
    for &warmup in &[0i64, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(warmup),
            &warmup,
            |b, &warmup| {
                let imp = NoisyPrefixFetchInc::new(2, warmup);
                let options = StabilityOptions {
                    extension_ops_per_process: 2,
                    extension_depth: 24,
                    max_configs: 100_000,
                    solo_step_budget: 10_000,
                    ..StabilityOptions::default()
                };
                b.iter(|| {
                    let freeze =
                        stable_to_linearizable(&imp, 2, warmup.max(1) as usize, 0, &options)
                            .expect("a stable configuration exists");
                    freeze.offset
                });
            },
        );
    }
    group.finish();
}

criterion_group!(stability_search, bench_stability);
criterion_main!(stability_search);
