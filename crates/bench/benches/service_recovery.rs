//! Recovery-path bench: what durability costs, and what recovery costs.
//!
//! Two entries, both sized to one session's worth of the E14 saturation
//! workload shape (64-event frames):
//!
//! * `service/recovery/journal` — the write path: append + fsync 32
//!   accepted `EVENTS` frames to a fresh `EVJL` journal, exactly what a
//!   replica connection pays before each durability ack.  The CI gate pins
//!   this at ≤10% of the `service/saturation/s4` pipeline mean (52 ms for
//!   40 k ops), so journaling stays a tax rather than quietly becoming
//!   the bottleneck.
//! * `service/recovery/resume` — the read path: [`Journal::recover`] over
//!   a 128-frame journal, re-validating every record (structure,
//!   wire codec, chained fingerprint) the way both session resumption and
//!   replica restart do.
//!
//! The CI `bench-gate` job compares both means against BENCH_checker.json.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evlin_history::{Event, ObjectId, ProcessId};
use evlin_service::wire::{encode_frame, event_batch_fingerprint, WireFrame};
use evlin_service::Journal;
use evlin_spec::{FetchIncrement, Value};
use std::path::PathBuf;

/// Frames per journal-append iteration: sized so the fsync-dominated write
/// path stays ≤10% of the `service/saturation/s4` pipeline mean — the gate
/// that keeps durability a tax, not the bottleneck.
const JOURNAL_FRAMES: u64 = 32;
/// Frames per recovery iteration (validation scales linearly; a longer
/// journal makes the per-record cost visible above the file-open noise).
const RESUME_FRAMES: u64 = 128;
const EVENTS_PER_FRAME: usize = 64;

/// One encoded `EVENTS` frame plus its batch fingerprint, the shape a
/// replica journals: alternating invoke/respond fetch&inc events.
fn frame(client: u32, frame_seq: u64) -> (Vec<u8>, u64) {
    let base = frame_seq * EVENTS_PER_FRAME as u64;
    let events: Vec<(u64, Event)> = (0..EVENTS_PER_FRAME as u64)
        .map(|i| {
            let object = ObjectId((i % 16) as usize);
            let event = if i % 2 == 0 {
                Event::invoke(ProcessId(0), object, FetchIncrement::fetch_inc())
            } else {
                Event::respond(ProcessId(0), object, Value::Int(i as i64))
            };
            (base + i, event)
        })
        .collect();
    let fingerprint = event_batch_fingerprint(client, &events);
    let encoded = encode_frame(&WireFrame::Events {
        client,
        frame_seq,
        events,
        fingerprint,
    });
    (encoded, fingerprint)
}

fn bench_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("evjl-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("service/recovery");
    let dir = bench_dir();
    let frames: Vec<(Vec<u8>, u64)> = (0..RESUME_FRAMES).map(|seq| frame(7, seq)).collect();

    // Write path: every iteration journals one session's stream, fsyncing
    // per frame — the durability cost the acks are built on.
    group.throughput(Throughput::Elements(
        JOURNAL_FRAMES * EVENTS_PER_FRAME as u64,
    ));
    group.sample_size(10);
    let append_path = dir.join("append.evjl");
    group.bench_with_input(
        BenchmarkId::new("journal", JOURNAL_FRAMES),
        &frames,
        |b, frames| {
            b.iter(|| {
                let _ = std::fs::remove_file(&append_path);
                let mut journal = Journal::create(&append_path, 7, 1).expect("create");
                for (payload, fingerprint) in &frames[..JOURNAL_FRAMES as usize] {
                    journal
                        .append_events(payload, EVENTS_PER_FRAME as u64, *fingerprint)
                        .expect("append");
                }
                journal.cursor()
            });
        },
    );

    // Read path: recover the same journal — full validation of every
    // record, as on session resume and replica restart.
    let resume_path = dir.join("resume.evjl");
    {
        let _ = std::fs::remove_file(&resume_path);
        let mut journal = Journal::create(&resume_path, 7, 1).expect("create");
        for (payload, fingerprint) in &frames {
            journal
                .append_events(payload, EVENTS_PER_FRAME as u64, *fingerprint)
                .expect("append");
        }
    }
    group.throughput(Throughput::Elements(
        RESUME_FRAMES * EVENTS_PER_FRAME as u64,
    ));
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("resume", RESUME_FRAMES), &(), |b, ()| {
        b.iter(|| {
            let (journal, recovered) = Journal::recover(&resume_path).expect("recover");
            assert_eq!(recovered.cursor.frames, RESUME_FRAMES);
            assert_eq!(recovered.torn_bytes, 0);
            drop(journal);
            recovered.cursor
        });
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(service_recovery, bench_recovery);
criterion_main!(service_recovery);
