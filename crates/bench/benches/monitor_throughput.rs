//! E11/E16 bench: sustained throughput of the online consistency monitor.
//!
//! Four complementary measurements:
//!
//! * `ingest` — the monitor alone, fed a pre-generated well-formed
//!   fetch&increment stream (no worker threads, no channel): the pure cost
//!   of quiescent-cut segmentation + per-segment checking, in events/s;
//! * `live` — the single-channel pipeline of experiment E11 (real threads →
//!   streaming recorder → bounded SPSC channel → monitor thread), in
//!   checked-ops/s;
//! * `pipelined/p{N}` — the sharded, frame-batched, pipelined dataflow of
//!   E16 (N recorder shards → k-way merge + quiescent-cut ingest → check
//!   stage), in checked-ops/s, with the producer count as the axis;
//! * `pipelined/merge` — the transport + merge alone (shards → `recv_sorted`
//!   drain, no monitor), in events/s: the ceiling the transport imposes.
//!
//! The CI `bench-gate` job compares the `ingest`, `live` and `pipelined`
//! means against the baselines committed in BENCH_checker.json.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evlin_checker::monitor::{Monitor, MonitorConfig};
use evlin_history::{Event, HistoryBuilder, ObjectUniverse, ProcessId};
use evlin_runtime::counter::FetchAddCounter;
use evlin_runtime::harness::{
    run_counter_workload_monitored, run_counter_workload_pipelined, HarnessOptions, PipelineOptions,
};
use evlin_runtime::sharded_recorder;
use evlin_spec::{FetchIncrement, Value};

fn fi_universe() -> ObjectUniverse {
    let mut universe = ObjectUniverse::new();
    universe.add_object(FetchIncrement::new());
    universe
}

/// A well-formed fetch&increment stream of `ops` operations by `processes`
/// overlapping processes: rounds of concurrent invocations followed by their
/// responses, so quiescent cuts occur once per round.
fn overlapping_stream(ops: usize, processes: usize) -> Vec<Event> {
    let x = evlin_history::ObjectId(0);
    let mut b = HistoryBuilder::new();
    let mut value = 0i64;
    let mut done = 0usize;
    while done < ops {
        let round = processes.min(ops - done);
        for p in 0..round {
            b = b.invoke(ProcessId(p), x, FetchIncrement::fetch_inc());
        }
        for p in 0..round {
            b = b.respond(ProcessId(p), x, Value::from(value));
            value += 1;
        }
        done += round;
    }
    b.build().into_iter().collect()
}

fn monitor_config() -> MonitorConfig {
    MonitorConfig {
        min_segment_events: 256,
        segment_batch: 8,
        ..MonitorConfig::default()
    }
}

fn bench_ingest(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor/ingest");
    for &ops in &[100_000usize, 1_000_000] {
        let events = overlapping_stream(ops, 4);
        group.throughput(Throughput::Elements(events.len() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ops), &events, |b, events| {
            b.iter(|| {
                let mut monitor = Monitor::new(fi_universe(), monitor_config());
                monitor
                    .ingest_all(events.iter().cloned())
                    .expect("well-formed stream");
                let report = monitor.finish();
                assert!(report.verdict.is_ok());
                assert!(report.stats.peak_window_events < events.len() / 2);
                report
            });
        });
    }
    group.finish();
}

fn bench_live(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor/live");
    let threads = 4usize;
    let ops_per_thread = 50_000usize;
    let total = threads * ops_per_thread;
    group.throughput(Throughput::Elements(total as u64));
    group.bench_with_input(
        BenchmarkId::from_parameter(total),
        &ops_per_thread,
        |b, &ops_per_thread| {
            b.iter(|| {
                let counter = FetchAddCounter::new();
                let out = run_counter_workload_monitored(
                    &counter,
                    HarnessOptions {
                        threads,
                        ops_per_thread,
                        record_history: true,
                    },
                    monitor_config(),
                    8192,
                );
                assert!(out.report.verdict.is_ok());
                out
            });
        },
    );
    group.finish();
}

fn bench_pipelined(c: &mut Criterion) {
    let mut group = c.benchmark_group("monitor/pipelined");
    let total = 200_000usize;
    for &producers in &[1usize, 2, 4] {
        // Elements = completed operations, so the printed rate is
        // checked-ops/s — directly comparable with `monitor/live`.
        group.throughput(Throughput::Elements(total as u64));
        group.bench_with_input(
            BenchmarkId::new(format!("p{producers}"), total),
            &producers,
            |b, &producers| {
                b.iter(|| {
                    let counter = FetchAddCounter::new();
                    let out = run_counter_workload_pipelined(
                        &counter,
                        HarnessOptions {
                            threads: producers,
                            ops_per_thread: total / producers,
                            record_history: false,
                        },
                        monitor_config(),
                        PipelineOptions::default(),
                    );
                    assert!(out.report.verdict.is_ok());
                    assert_eq!(out.report.stats.checked_ops, total);
                    out
                });
            },
        );
    }
    // Transport ceiling: shards → k-way merge, no monitor downstream.
    // Elements = events (2 per op), so the printed rate is events/s.
    let producers = 4usize;
    let events = 2 * total;
    group.throughput(Throughput::Elements(events as u64));
    group.bench_with_input(
        BenchmarkId::new("merge", events),
        &producers,
        |b, &producers| {
            let x = evlin_history::ObjectId(0);
            b.iter(|| {
                let (shards, mut merge) = sharded_recorder(producers, 512, 8, None);
                std::thread::scope(|s| {
                    for (t, mut shard) in shards.into_iter().enumerate() {
                        s.spawn(move || {
                            for k in 0..(total / producers) as i64 {
                                shard.invoke(ProcessId(t), x, FetchIncrement::fetch_inc());
                                shard.respond(ProcessId(t), x, Value::from(k));
                            }
                        });
                    }
                    let mut out = Vec::new();
                    let mut seen = 0usize;
                    loop {
                        out.clear();
                        let n = merge.recv_sorted(&mut out, 4096);
                        if n == 0 {
                            break;
                        }
                        seen += n;
                    }
                    assert_eq!(seen, events);
                });
                merge.stats()
            });
        },
    );
    group.finish();
}

criterion_group!(
    monitor_throughput,
    bench_ingest,
    bench_live,
    bench_pipelined
);
criterion_main!(monitor_throughput);
