//! E9 bench: the cost of the Figure 1 announce-and-verify wrapper
//! (Proposition 11), measured as simulator runs of the wrapped vs raw
//! fetch&increment implementation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use evlin_algorithms::{CasFetchInc, Fig1Wrapper};
use evlin_sim::prelude::*;
use evlin_spec::FetchIncrement;
use std::sync::Arc;

fn bench_raw_vs_wrapped(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_overhead");
    for &ops in &[2usize, 4, 8] {
        let w = Workload::uniform(2, FetchIncrement::fetch_inc(), ops);
        group.bench_with_input(BenchmarkId::new("raw", ops), &w, |b, w| {
            let imp = CasFetchInc::new(2);
            b.iter(|| {
                let mut s = RoundRobinScheduler::new();
                let out = run(&imp, w, &mut s, 1_000_000);
                assert!(out.completed_all);
                out.steps
            });
        });
        group.bench_with_input(BenchmarkId::new("wrapped", ops), &w, |b, w| {
            let imp = Fig1Wrapper::new(CasFetchInc::new(2), Arc::new(FetchIncrement::new()), 2);
            b.iter(|| {
                let mut s = RoundRobinScheduler::new();
                let out = run(&imp, w, &mut s, 1_000_000);
                assert!(out.completed_all);
                out.steps
            });
        });
    }
    group.finish();
}

criterion_group!(fig1_overhead, bench_raw_vs_wrapped);
criterion_main!(fig1_overhead);
