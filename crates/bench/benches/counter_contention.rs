//! E8 bench: counter throughput under contention (paper's introduction).
//!
//! Compares the linearizable compare&swap loop, the hardware `fetch_add` and
//! the eventually consistent sharded counter across thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evlin_runtime::counter::{CasCounter, ConcurrentCounter, FetchAddCounter, ShardedCounter};
use evlin_runtime::harness::{run_counter_workload, HarnessOptions};

const OPS_PER_THREAD: usize = 20_000;

fn bench_counter(
    c: &mut Criterion,
    name: &str,
    make: impl Fn(usize) -> Box<dyn ConcurrentCounter>,
) {
    let mut group = c.benchmark_group(format!("counter_contention/{name}"));
    for &threads in &[1usize, 2, 4] {
        group.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let counter = make(threads);
                    let run = run_counter_workload(
                        counter.as_ref(),
                        HarnessOptions {
                            threads,
                            ops_per_thread: OPS_PER_THREAD,
                            record_history: false,
                        },
                    );
                    assert_eq!(run.final_total as usize, threads * OPS_PER_THREAD);
                });
            },
        );
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_counter(c, "cas-loop", |_| Box::new(CasCounter::new()));
    bench_counter(c, "fetch-add", |_| Box::new(FetchAddCounter::new()));
    bench_counter(c, "sharded-eventual", |threads| {
        Box::new(ShardedCounter::new(threads, 64))
    });
}

criterion_group!(counter_contention, benches);
criterion_main!(counter_contention);
