//! E10 bench: checker scalability.
//!
//! * generic kernel (constrained-linearization search) vs history length;
//! * specialized fetch&increment checker vs history length (much larger);
//! * batched sequential vs parallel checking;
//! * the kernel's locality pre-pass vs the whole-history search on
//!   multi-object histories (the algorithmic payoff of the Herlihy–Wing
//!   locality theorem — per-object subproblems are exponentially smaller).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use evlin_bench::histories;
use evlin_checker::kernel::{self, SearchLimits};
use evlin_checker::{fi, linearizability, parallel, Linearizability};
use evlin_history::generator::{concurrentize, random_sequential_legal, WorkloadSpec};
use evlin_history::{History, HistoryBuilder, ObjectUniverse, ProcessId};
use evlin_spec::{FetchIncrement, Register, Value};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_generic(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker/generic_linearizability");
    for &ops in &[8usize, 12, 16, 20] {
        let mut universe = ObjectUniverse::new();
        universe.add_object(Register::new(Value::from(0i64)));
        universe.add_object(FetchIncrement::new());
        let mut rng = StdRng::seed_from_u64(ops as u64);
        let seq = random_sequential_legal(
            &universe,
            &WorkloadSpec {
                processes: 3,
                operations: ops,
            },
            &mut rng,
        );
        let conc = concurrentize(&seq, 3, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(ops), &conc, |b, h| {
            b.iter(|| assert!(linearizability::is_linearizable(h, &universe)));
        });
    }
    group.finish();
}

fn bench_specialized(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker/fi_linearizability");
    for &ops in &[1_000usize, 10_000, 100_000] {
        // Build a linearizable fetch&increment history directly.
        let x = evlin_history::ObjectId(0);
        let mut b = HistoryBuilder::new();
        for k in 0..ops {
            b = b.complete(
                ProcessId(k % 4),
                x,
                FetchIncrement::fetch_inc(),
                Value::from(k as i64),
            );
        }
        let history = b.build();
        group.throughput(Throughput::Elements(ops as u64));
        group.bench_with_input(BenchmarkId::from_parameter(ops), &history, |b, h| {
            b.iter(|| assert_eq!(fi::is_linearizable(h, 0), Ok(true)));
        });
    }
    group.finish();
}

/// Generic kernel on the queue/max-register family: structured (list-valued)
/// object states and non-interchangeable operations, so the hot path is
/// gated on a non-counter object type — neither the fetch&increment fast
/// path nor interchangeability-class merging can carry the search.
fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker/queue_linearizability");
    let universe = histories::queue_universe();
    for &ops in &[8usize, 12, 16, 20] {
        let conc = histories::random_queue_linearizable(&universe, ops, ops as u64);
        group.bench_with_input(BenchmarkId::from_parameter(ops), &conc, |b, h| {
            b.iter(|| assert!(linearizability::is_linearizable(h, &universe)));
        });
    }
    group.finish();
}

/// Sequential vs parallel batched checking of many independent histories:
/// the speedup of `batch_par` over `batch_seq` at equal batch size is the
/// multi-core scaling headroom (≈ the core count on a quiet machine; the
/// worker count honours `RAYON_NUM_THREADS`).
fn bench_batch(c: &mut Criterion) {
    let mut universe = ObjectUniverse::new();
    universe.add_object(Register::new(Value::from(0i64)));
    universe.add_object(FetchIncrement::new());
    let batch: Vec<History> = (0..64)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let seq = random_sequential_legal(
                &universe,
                &WorkloadSpec {
                    processes: 3,
                    operations: 14,
                },
                &mut rng,
            );
            concurrentize(&seq, 3, &mut rng)
        })
        .collect();
    let mut group = c.benchmark_group("checker/batch");
    group.throughput(Throughput::Elements(batch.len() as u64));
    group.bench_with_input(BenchmarkId::new("seq", batch.len()), &batch, |b, hs| {
        b.iter(|| {
            let verdicts = parallel::check_histories(hs, &universe);
            assert!(verdicts.iter().all(|&ok| ok));
        });
    });
    group.bench_with_input(BenchmarkId::new("par", batch.len()), &batch, |b, hs| {
        b.iter(|| {
            let verdicts = parallel::check_histories_par(hs, &universe);
            assert!(verdicts.iter().all(|&ok| ok));
        });
    });
    group.finish();
}

/// Whole-history kernel search vs the locality pre-pass on the same
/// multi-object histories: `local` splits each history into per-object
/// subproblems (checked in parallel and recomposed), `global` feeds the
/// kernel the undecomposed problem.  The `easy` family (random linearizable)
/// bounds the pre-pass overhead; the `hard` family (every projection
/// refuted) shows the product-vs-sum blowup the decomposition removes.
fn bench_locality(c: &mut Criterion) {
    let mut group = c.benchmark_group("checker/locality");
    let limits = SearchLimits::default();
    for &objects in &[2usize, 4] {
        let universe = histories::mixed_universe(objects);
        let conc = histories::random_linearizable(&universe, 5 * objects, objects as u64);
        group.bench_with_input(BenchmarkId::new("easy-global", objects), &conc, |b, h| {
            b.iter(|| assert!(kernel::check(&Linearizability, h, &universe, limits).is_yes()));
        });
        group.bench_with_input(BenchmarkId::new("easy-local", objects), &conc, |b, h| {
            b.iter(
                || assert!(kernel::check_local(&Linearizability, h, &universe, limits).is_yes()),
            );
        });
    }
    for &objects in &[2usize, 3, 4] {
        let (universe, conc) = histories::broken_per_object(objects, 3);
        group.bench_with_input(BenchmarkId::new("hard-global", objects), &conc, |b, h| {
            b.iter(|| assert!(!kernel::check(&Linearizability, h, &universe, limits).is_yes()));
        });
        group.bench_with_input(BenchmarkId::new("hard-local", objects), &conc, |b, h| {
            b.iter(|| {
                assert!(!kernel::check_local(&Linearizability, h, &universe, limits).is_yes())
            });
        });
    }
    group.finish();
}

criterion_group!(
    checker_scaling,
    bench_generic,
    bench_queue,
    bench_specialized,
    bench_batch,
    bench_locality
);
criterion_main!(checker_scaling);
